//! Integration tests spanning every crate: client → protocol → server →
//! database → DCM → update protocol → consumers.

use moira::client::{MoiraConn, ServerThread};
use moira::common::errors::MrError;
use moira::core::server::standard_server;
use moira::core::state::Caller;
use moira::sim::cron::run_cron;
use moira::sim::{Deployment, PopulationSpec};

fn server_with_admin() -> (ServerThread, moira::client::RpcClient) {
    let (server, state, _) = standard_server(moira::common::VClock::new());
    {
        let mut s = state.write();
        let uid = moira::core::queries::testutil::add_test_user(&mut s, "ops", 1);
        s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
            .unwrap();
    }
    let thread = ServerThread::spawn(server);
    let mut client = thread.connect();
    client.auth("ops", "itest").unwrap();
    (thread, client)
}

#[test]
fn admin_change_reaches_every_consumer() {
    let mut athena = Deployment::build(&PopulationSpec::small());
    athena.run_dcm_once();
    athena.advance(60);

    // One administrative session makes several kinds of changes.
    {
        let mut s = athena.state.write();
        let root = Caller::root("itest");
        let run = |s: &mut _, q: &str, args: &[&str]| {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            athena.registry.execute(s, &root, q, &args).unwrap()
        };
        run(
            &mut s,
            "add_user",
            &[
                "newhire", "9100", "/bin/csh", "Hire", "New", "", "1", "xid", "STAFF",
            ],
        );
        run(
            &mut s,
            "set_pobox",
            &["newhire", "POP", "ATHENA-PO-1.MIT.EDU"],
        );
        run(
            &mut s,
            "add_list",
            &[
                "newhire",
                "1",
                "0",
                "0",
                "0",
                "1",
                "UNIQUE_GID",
                "USER",
                "newhire",
                "",
            ],
        );
        run(
            &mut s,
            "add_member_to_list",
            &["newhire", "USER", "newhire"],
        );
        let nfs_server = athena.population.nfs_servers[0].clone();
        run(
            &mut s,
            "add_filesys",
            &[
                "newhire",
                "NFS",
                &nfs_server,
                "/u1/lockers/newhire",
                "/mit/newhire",
                "w",
                "",
                "newhire",
                "newhire",
                "1",
                "HOMEDIR",
            ],
        );
        run(&mut s, "add_nfs_quota", &["newhire", "newhire", "300"]);
    }

    // One simulated day of cron is enough for every interval.
    let run = run_cron(&mut athena, 25 * 3600, 3600);
    assert!(run.successful_updates() > 0);

    // Hesiod.
    let hesiod = athena.hesiod_one();
    let hesiod = hesiod.lock();
    assert!(hesiod.resolve("newhire", "passwd").unwrap()[0].starts_with("newhire:*:9100"));
    assert_eq!(
        hesiod.resolve("newhire", "pobox").unwrap()[0],
        "POP ATHENA-PO-1.MIT.EDU newhire"
    );
    assert!(hesiod.resolve("newhire", "filsys").unwrap()[0].starts_with("NFS /u1/lockers/newhire"));
    drop(hesiod);

    // Mail hub.
    let hub = athena.mail_one();
    let dests = hub.lock().resolve("newhire");
    assert!(matches!(
        dests[0],
        moira::svc::mail::Destination::PoBox { ref office, .. } if office == "ATHENA-PO-1"
    ));

    // NFS: credentials + locker + quota on the right server.
    let home = &athena.population.nfs_servers[0];
    let nfs = athena.nfs[home].lock();
    let cred = nfs.credential("newhire").expect("credentials distributed");
    assert_eq!(cred.uid, 9100);
    assert!(nfs
        .locker("/u1/lockers/newhire")
        .is_some_and(|l| l.init_files));
    assert_eq!(nfs.quota(9100), Some(300));
}

#[test]
fn rpc_error_codes_cross_the_wire() {
    let (_thread, mut client) = server_with_admin();
    assert_eq!(
        client.query_collect("no_such_query", &[]).unwrap_err(),
        MrError::NoHandle
    );
    assert_eq!(
        client
            .query_collect("get_user_by_login", &["ghost"])
            .unwrap_err(),
        MrError::NoMatch
    );
    assert_eq!(
        client
            .query_collect("add_machine", &["X", "TOASTER"])
            .unwrap_err(),
        MrError::Type
    );
    assert_eq!(
        client.query_collect("get_machine", &[]).unwrap_err(),
        MrError::Args
    );
    // Unauthenticated second connection: permission errors.
    let (thread, _) = server_with_admin();
    let mut anon = thread.connect();
    assert_eq!(
        anon.query_collect("add_machine", &["X", "VAX"])
            .unwrap_err(),
        MrError::Perm
    );
}

#[test]
fn journal_replays_onto_restored_backup() {
    // The §5.2.2 recovery story: nightly backup + journal = no lost
    // transactions.
    let (server, state, registry) = standard_server(moira::common::VClock::new());
    {
        let mut s = state.write();
        let uid = moira::core::queries::testutil::add_test_user(&mut s, "ops", 1);
        s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
            .unwrap();
    }
    drop(server);
    let root = Caller::root("itest");

    // Day 1: work happens, then the nightly backup runs.
    {
        let mut s = state.write();
        registry
            .execute(
                &mut s,
                &root,
                "add_machine",
                &["DAY1.MIT.EDU".into(), "VAX".into()],
            )
            .unwrap();
    }
    let backup = moira::db::backup::mrbackup(&state.read().db);
    let backup_time = state.read().now();

    // Day 2: more work, journaled but not yet backed up.
    {
        let mut s = state.write();
        s.db.clock().advance(3600);
        registry
            .execute(
                &mut s,
                &root,
                "add_machine",
                &["DAY2.MIT.EDU".into(), "VAX".into()],
            )
            .unwrap();
        registry
            .execute(
                &mut s,
                &root,
                "add_cluster",
                &["late-cluster".into(), "".into(), "".into()],
            )
            .unwrap();
    }
    let journal_text = state.read().journal.to_text();

    // Disaster: the database is lost. Restore the backup…
    let mut recovered = moira::core::state::MoiraState::new(moira::common::VClock::new());
    // (restore into empty relations requires clearing the seeded ones)
    let mut empty_db = moira::db::Database::new(recovered.db.clock().clone());
    moira::core::schema::create_all_tables(&mut empty_db);
    recovered.db = empty_db;
    moira::db::backup::mrrestore(&mut recovered.db, &backup).unwrap();
    // …and replay the journal entries after the backup time.
    let journal = moira::db::journal::Journal::from_text(&journal_text).unwrap();
    for entry in journal.since(backup_time) {
        registry
            .execute(
                &mut recovered,
                &Caller::new(&entry.who, &entry.with),
                &entry.query,
                &entry.args,
            )
            .unwrap();
    }

    // Everything from both days is present.
    for name in ["DAY1.MIT.EDU", "DAY2.MIT.EDU"] {
        assert!(
            recovered
                .db
                .table("machine")
                .select_one(&moira::db::Pred::Eq("name", name.into()))
                .is_some(),
            "{name}"
        );
    }
    assert!(recovered
        .db
        .table("cluster")
        .select_one(&moira::db::Pred::Eq("name", "late-cluster".into()))
        .is_some());
}

#[test]
fn access_precheck_agrees_with_execution_across_catalog() {
    // The Access major request must agree with Query for a sample of the
    // catalog, for both an admin and a plain user.
    let (server, state, registry) = standard_server(moira::common::VClock::new());
    {
        let mut s = state.write();
        let uid = moira::core::queries::testutil::add_test_user(&mut s, "ops", 1);
        s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
            .unwrap();
        moira::core::queries::testutil::add_test_user(&mut s, "plain", 2);
    }
    drop(server);
    let cases: &[(&str, Vec<&str>)] = &[
        ("add_machine", vec!["PRE.MIT.EDU", "VAX"]),
        ("add_cluster", vec!["c", "", ""]),
        ("get_machine", vec!["*"]),
        ("update_user_shell", vec!["plain", "/bin/sh"]),
        ("delete_user", vec!["nobody"]),
    ];
    for who in ["ops", "plain"] {
        let caller = Caller::new(who, "itest");
        for (query, args) in cases {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            let mut s = state.write();
            let pre = registry.check_access(&s, &caller, query, &args);
            let exec = registry.execute(&mut s, &caller, query, &args);
            match pre {
                Ok(()) => {
                    // Allowed queries may still fail on data (NoMatch etc.)
                    // but never on permissions.
                    assert_ne!(exec.as_ref().err(), Some(&MrError::Perm), "{who} {query}");
                }
                Err(e) => {
                    assert_eq!(exec.unwrap_err(), e, "{who} {query}");
                }
            }
        }
    }
}

#[test]
fn concurrent_admin_sessions_are_serialized_safely() {
    let (server, state, _) = standard_server(moira::common::VClock::new());
    {
        let mut s = state.write();
        let uid = moira::core::queries::testutil::add_test_user(&mut s, "ops", 1);
        s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
            .unwrap();
    }
    let thread = ServerThread::spawn(server);
    let mut handles = Vec::new();
    for t in 0..4 {
        let mut client = thread.connect();
        handles.push(std::thread::spawn(move || {
            client.auth("ops", "stress").unwrap();
            for i in 0..25 {
                client
                    .query("add_machine", &[&format!("T{t}-M{i}"), "RT"], &mut |_| {})
                    .unwrap();
            }
            let rows = client
                .query_collect("get_machine", &[&format!("T{t}-*")])
                .unwrap();
            assert_eq!(rows.len(), 25);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let total = state.read().db.table("machine").len();
    assert_eq!(total, 100);
}

#[test]
fn tcp_client_full_round_trip() {
    let (mut server, state, _) = standard_server(moira::common::VClock::new());
    {
        let mut s = state.write();
        let uid = moira::core::queries::testutil::add_test_user(&mut s, "ops", 1);
        s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
            .unwrap();
    }
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();
    let _thread = ServerThread::spawn(server);
    let mut client = moira::client::RpcClient::connect_tcp(&addr.to_string()).expect("tcp connect");
    client.noop().unwrap();
    client.auth("ops", "tcp-itest").unwrap();
    client
        .query("add_machine", &["OVERTCP.MIT.EDU", "VAX"], &mut |_| {})
        .unwrap();
    let rows = client
        .query_collect("get_machine", &["OVERTCP.MIT.EDU"])
        .unwrap();
    assert_eq!(rows[0][1], "VAX");
    // A second concurrent TCP client sees the same data.
    let mut second =
        moira::client::RpcClient::connect_tcp(&addr.to_string()).expect("tcp connect 2");
    second.auth("ops", "tcp-itest-2").unwrap();
    let rows = second.query_collect("get_machine", &["OVERTCP*"]).unwrap();
    assert_eq!(rows.len(), 1);
    client.disconnect().unwrap();
    second.disconnect().unwrap();
}

#[test]
fn server_statistics_over_tcp_report_real_latencies() {
    let (mut server, state, _) = standard_server(moira::common::VClock::new());
    {
        let mut s = state.write();
        let uid = moira::core::queries::testutil::add_test_user(&mut s, "ops", 1);
        s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
            .unwrap();
        // Enough machines that the planner prefers the name-index range
        // over a scan for the wildcard lookups below (on a near-empty
        // table a scan is legitimately just as cheap).
        for i in 0..32 {
            moira::core::queries::testutil::add_test_machine(&mut s, &format!("FILLER{i}.MIT.EDU"));
        }
    }
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();
    let _thread = ServerThread::spawn(server);
    let mut client = moira::client::RpcClient::connect_tcp(&addr.to_string()).expect("tcp connect");
    client.auth("ops", "stats-itest").unwrap();

    // Generate traffic on both tiers before asking for the numbers.
    client
        .query("add_machine", &["STATS.MIT.EDU", "VAX"], &mut |_| {})
        .unwrap();
    for _ in 0..4 {
        let rows = client.query_collect("get_machine", &["STATS*"]).unwrap();
        assert_eq!(rows.len(), 1);
    }

    let rows = client.query_collect("get_server_statistics", &[]).unwrap();
    let stat = |name: &str| -> u64 {
        rows.iter()
            .find(|row| row[0] == name)
            .unwrap_or_else(|| panic!("statistic {name} missing"))[1]
            .parse()
            .unwrap_or_else(|_| panic!("statistic {name} not numeric"))
    };
    assert!(stat("server.reads_dispatched") >= 4);
    assert!(stat("server.writes_dispatched") >= 2, "auth + add_machine");
    let p50 = stat("server.latency.read.p50_ns");
    let p99 = stat("server.latency.read.p99_ns");
    assert!(p50 > 0, "real TCP round-trips take real time");
    assert!(p99 >= p50, "quantiles are ordered");
    assert!(stat("server.latency.write.count") >= 2);
    // Connection-tier instruments ride the same wire: this very TCP
    // session is accepted and open, nothing has been torn down or
    // backpressured, and every dispatched request carries a
    // readiness-to-dispatch sample.
    assert!(stat("server.connections.accepted") >= 1);
    assert!(stat("server.connections.open") >= 1, "this session is open");
    assert_eq!(stat("server.connections.closed"), 0);
    assert_eq!(stat("server.backpressure.engaged"), 0, "client drains");
    assert!(
        stat("server.latency.readiness_to_dispatch.count") >= 6,
        "each dispatched request samples readiness-to-dispatch"
    );
    assert!(
        stat("server.latency.readiness_to_dispatch.p99_ns")
            >= stat("server.latency.readiness_to_dispatch.p50_ns"),
        "quantiles are ordered"
    );
    // The query planner's instruments ride the same snapshot. Each of the
    // four `get_machine STATS*` calls carries a trailing wildcard, so the
    // planner serves it as an IndexRange over the folded machine-name
    // index; the exact-name lookups on the way (authentication resolving
    // the login, add_machine's duplicate check) are index points. Every
    // planned select also records how many rows it actually examined.
    assert!(stat("db.plan.range") >= 4, "STATS* is a prefix range");
    assert!(stat("db.plan.point") >= 1, "exact lookups are index points");
    assert!(
        stat("db.select.rows_examined.count") >= 5,
        "planned selects sample rows-examined"
    );
    client.disconnect().unwrap();
}

/// A server booted from durable media — including one rebooted after a
/// crash — surfaces its WAL telemetry through the same
/// `get_server_statistics` query clients already use.
#[test]
fn wal_statistics_surface_over_tcp_after_durable_boot() {
    use moira::db::storage::{GroupCommitConfig, SimMedia};

    let cfg = GroupCommitConfig {
        flush_interval_secs: 0,
        flush_bytes: 1, // fsync-per-commit: every ack is durable
        snapshot_every: 0,
    };
    let media = SimMedia::new();
    let registry = std::sync::Arc::new(moira::core::Registry::standard());

    // First life: durable boot, committed TCP traffic, then kill -9.
    {
        let (mut st, report) = moira::core::recovery::boot_durable(
            moira::common::VClock::new(),
            &registry,
            Box::new(media.clone()),
            cfg,
        )
        .expect("first durable boot");
        assert!(!report.recovered);
        moira::core::seed::seed_capacls(&mut st, &registry);
        let uid = moira::core::queries::testutil::add_test_user(&mut st, "ops", 1);
        st.db
            .append("members", vec![2.into(), "USER".into(), uid.into()])
            .unwrap();
        // The seeding above went straight to the database; seal it into the
        // snapshot so only client traffic rides the WAL.
        st.storage.snapshot(&st.db, &st.journal).expect("seal seed");

        let mut server =
            moira::core::MoiraServer::new(moira::core::state::shared(st), registry.clone(), None);
        let addr = server.listen_tcp("127.0.0.1:0").unwrap();
        let _thread = ServerThread::spawn(server);
        let mut client =
            moira::client::RpcClient::connect_tcp(&addr.to_string()).expect("tcp connect");
        client.auth("ops", "wal-itest").unwrap();
        client
            .query("add_machine", &["DURABLE-TCP.MIT.EDU", "VAX"], &mut |_| {})
            .unwrap();
        client.disconnect().unwrap();
    }
    media.power_cycle();

    // Second life: recover from the WAL, serve stats over TCP.
    let (st, report) = moira::core::recovery::boot_durable(
        moira::common::VClock::new(),
        &registry,
        Box::new(media),
        cfg,
    )
    .expect("recovery boot");
    assert!(report.recovered);
    assert!(report.replayed > 0, "the TCP write came back: {report:?}");
    let mut server = moira::core::MoiraServer::new(moira::core::state::shared(st), registry, None);
    let addr = server.listen_tcp("127.0.0.1:0").unwrap();
    let _thread = ServerThread::spawn(server);
    let mut client =
        moira::client::RpcClient::connect_tcp(&addr.to_string()).expect("tcp reconnect");
    client.auth("ops", "wal-itest-2").unwrap();
    let rows = client
        .query_collect("get_machine", &["DURABLE-TCP.MIT.EDU"])
        .unwrap();
    assert_eq!(rows[0][1], "VAX", "pre-crash commit survived");
    client
        .query("add_machine", &["AFTERBOOT.MIT.EDU", "VAX"], &mut |_| {})
        .unwrap();

    let rows = client.query_collect("get_server_statistics", &[]).unwrap();
    let stat = |name: &str| -> u64 {
        rows.iter()
            .find(|row| row[0] == name)
            .unwrap_or_else(|| panic!("statistic {name} missing"))[1]
            .parse()
            .unwrap_or_else(|_| panic!("statistic {name} not numeric"))
    };
    assert!(stat("db.wal.appends") > 0, "post-boot commits hit the WAL");
    assert!(stat("db.wal.fsyncs") > 0, "fsync-per-commit policy fsynced");
    assert!(
        stat("db.wal.recovered_frames") > 0,
        "recovery telemetry survives into the serving registry"
    );
    assert_eq!(stat("db.wal.torn_tail_truncations"), 0, "clean tail");
    client.disconnect().unwrap();
}

#[test]
fn kerberos_end_to_end_through_rpc() {
    use moira::krb::realm::Kdc;
    use moira::krb::ticket::{make_authenticator, Verifier};

    let clock = moira::common::VClock::new();
    let kdc = Kdc::new(clock.clone());
    kdc.register("babette", "pw").unwrap();
    let skey = kdc.register_service("moira").unwrap();

    let registry = std::sync::Arc::new(moira::core::Registry::standard());
    let mut st = moira::core::MoiraState::new(clock.clone());
    moira::core::seed::seed_capacls(&mut st, &registry);
    moira::core::queries::testutil::add_test_user(&mut st, "babette", 42);
    let state = moira::core::state::shared(st);
    let server = moira::core::MoiraServer::new(
        state.clone(),
        registry,
        Some(Verifier::new("moira", skey, clock.clone())),
    );
    let thread = ServerThread::spawn(server);

    let mut client = thread.connect();
    let (ticket, session) = kdc.initial_ticket("babette", "pw", "moira").unwrap();
    let auth = make_authenticator(session, "babette", clock.now(), 1);
    client.auth_krb(&ticket, &auth, "chsh").unwrap();
    client
        .query("update_user_shell", &["babette", "/bin/sh"], &mut |_| {})
        .unwrap();
    // A replayed authenticator is rejected on a new connection.
    let mut replayer = thread.connect();
    assert_eq!(
        replayer.auth_krb(&ticket, &auth, "chsh").unwrap_err(),
        MrError::Replay
    );
}
