//! The paper's own worked examples and scenarios, verbatim, as tests.

use moira::client::apps::{MailMaint, UserMaint};
use moira::client::{DirectClient, MoiraConn};
use moira::common::errors::MrError;
use moira::core::state::Caller;
use moira::core::userreg::{make_authenticator, RegReply, RegRequest};
use moira::sim::{Deployment, PopulationSpec};

/// §3, first example: "One example is for the user accounts administrator
/// to run an application on her workstation which will change the disk
/// quota assigned to a user. She doesn't need to log in to any other
/// machine to do this, and the change will automatically take place on the
/// proper server a short time later."
#[test]
fn quota_change_example() {
    let mut athena = Deployment::build(&PopulationSpec::small());
    athena.run_dcm_once();
    athena.advance(60);
    let user = athena.population.active_logins[3].clone();

    // The administrator runs the application on *her workstation* — i.e. a
    // client connection, not a login to the NFS server.
    let mut conn =
        DirectClient::connect_as_root(athena.state.clone(), athena.registry.clone(), "usermaint");
    UserMaint::set_quota(&mut conn, &user, &user, 450).unwrap();

    // "a short time later" — the next NFS interval.
    athena.advance(13 * 3600);
    athena.run_dcm_once();
    let uid: i64 = {
        let s = athena.state.read();
        let row =
            s.db.table("users")
                .select_one(&moira::db::Pred::Eq("login", user.clone().into()))
                .unwrap();
        s.db.cell("users", row, "uid").as_int()
    };
    // Exactly the proper server has the new quota.
    let holders = athena
        .nfs
        .values()
        .filter(|srv| srv.lock().quota(uid) == Some(450))
        .count();
    assert_eq!(holders, 1);
}

/// §3, second example: "Another example is for a user to run an application
/// to add themselves to a public mailing list. … Sometime later, the
/// mailing lists file on the central mail hub will be updated to show this
/// change."
#[test]
fn mailing_list_self_service_example() {
    let mut athena = Deployment::build(&PopulationSpec::small());
    athena.run_dcm_once();
    athena.advance(60);
    let user = athena.population.active_logins[5].clone();
    let list = athena.population.public_lists[0].clone();

    let mut me = DirectClient::connect(
        athena.state.clone(),
        athena.registry.clone(),
        &user,
        "mailmaint",
    );
    MailMaint::subscribe(&mut me, &user, &list).unwrap();

    // Before propagation the hub's aliases file is stale…
    let hub = athena.mail_one();
    let already =
        hub.lock().resolve(&list).iter().any(
            |d| matches!(d, moira::svc::mail::Destination::PoBox { user: u, .. } if *u == user),
        );
    assert!(!already, "change must not be visible before the DCM runs");

    // …"sometime later" (the 24-hour aliases interval) it shows the change.
    athena.advance(25 * 3600);
    athena.run_dcm_once();
    let now_there =
        hub.lock().resolve(&list).iter().any(
            |d| matches!(d, moira::svc::mail::Destination::PoBox { user: u, .. } if *u == user),
        );
    assert!(now_there);
}

/// §5.2.1's input-checking example: "If, instead of typing e40-po (a valid
/// post office server), the user typed in e40-p0 (a nonexistant machine),
/// all the user's mail would be 'returned to sender' as undelivereable" —
/// so the server rejects it.
#[test]
fn input_checking_example() {
    let athena = Deployment::build(&PopulationSpec::small());
    let user = athena.population.active_logins[0].clone();
    let mut conn =
        DirectClient::connect_as_root(athena.state.clone(), athena.registry.clone(), "chpobox");
    let err = conn
        .query("set_pobox", &[&user, "POP", "e40-p0"], &mut |_| {})
        .unwrap_err();
    assert_eq!(err, MrError::Machine, "the typo is caught by validation");
}

/// §5.8.2 NFS: "the user will not benefit from this allocation for a
/// maximum of six hours … When the … time is reached the DCM will create
/// the above two files and send them to the appropriate target servers."
#[test]
fn registration_lag_scenario() {
    let mut spec = PopulationSpec::small();
    spec.unregistered_users = 1;
    let mut athena = Deployment::build(&spec);
    athena.run_dcm_once();
    athena.advance(60);

    let (first, last, id) = athena.population.unregistered[0].clone();
    let grab = athena.regserver.handle(&RegRequest::GrabLogin {
        first: first.clone(),
        last: last.clone(),
        authenticator: make_authenticator(&id, &first, &last, Some("lagtest")),
    });
    assert!(matches!(grab, RegReply::Ok(_)));
    {
        // Accounts staff activates the account so extraction picks it up.
        let mut s = athena.state.write();
        athena
            .registry
            .execute(
                &mut s,
                &Caller::root("staff"),
                "update_user_status",
                &["lagtest".into(), "1".into()],
            )
            .unwrap();
    }

    // Immediately: no locker exists anywhere.
    let locker = "/u1/lockers/lagtest".to_owned();
    assert!(athena
        .nfs
        .values()
        .all(|n| n.lock().locker(&locker).is_none()));

    // After the NFS interval the DCM ships the dirs file and the install
    // script creates the locker with init files.
    athena.advance(13 * 3600);
    athena.run_dcm_once();
    let created = athena
        .nfs
        .values()
        .filter(|n| n.lock().locker(&locker).is_some_and(|l| l.init_files))
        .count();
    assert_eq!(created, 1);
}

/// §5.8.2 Hesiod: "Moira will propagate hesiod files to the target disk and
/// the run a shell script which will kill the running server and then
/// restart it, causing the newly updated files to be read into memory."
#[test]
fn hesiod_restart_semantics() {
    let mut athena = Deployment::build(&PopulationSpec::small());
    athena.run_dcm_once();
    let hes = athena.hesiod_one();
    assert_eq!(hes.lock().restarts, 1, "first install restarted the server");
    let names_before = hes.lock().name_count();
    assert!(names_before > 0);

    // A change, then the next interval: the server restarts and the new
    // memory image contains the change.
    athena.advance(60);
    {
        let mut s = athena.state.write();
        athena
            .registry
            .execute(
                &mut s,
                &Caller::root("t"),
                "add_machine",
                &["RESTARTME".into(), "RT".into()],
            )
            .unwrap();
        let login = athena.population.active_logins[0].clone();
        athena
            .registry
            .execute(
                &mut s,
                &Caller::root("t"),
                "update_user_shell",
                &[login, "/bin/zsh".into()],
            )
            .unwrap();
    }
    athena.advance(7 * 3600);
    athena.run_dcm_once();
    let hes = hes.lock();
    assert_eq!(hes.restarts, 2);
    let login = athena.population.active_logins[0].clone();
    assert!(hes.resolve(&login, "passwd").unwrap()[0].ends_with(":/bin/zsh"));
}

/// §4: "Moira must be tamper-proof. It should be safe from denial-of-service
/// attacks and malicious network attacks (such as replay of transactions,
/// or arbitrary 'deathgrams')."
#[test]
fn tamper_resistance_scenario() {
    use moira::client::ServerThread;
    use moira::core::server::standard_server;
    use moira::protocol::transport::{pair, Channel};

    let (mut server, _state, _) = standard_server(moira::common::VClock::new());
    let (mut attacker, server_end) = pair();
    server.attach(Box::new(server_end), "attacker", 666);
    let thread = ServerThread::spawn(server);

    // Arbitrary garbage frames ("deathgrams") must not kill the server.
    for garbage in [
        bytes::Bytes::from_static(b""),
        bytes::Bytes::from_static(b"\x00"),
        bytes::Bytes::from_static(b"\xff\xff\xff\xff\xff\xff\xff\xff\xff"),
        bytes::Bytes::from(vec![0x41u8; 4096]),
    ] {
        attacker.send(garbage).unwrap();
    }
    // The server is still alive and serving a legitimate client.
    let mut legit = thread.connect();
    legit.noop().expect("server survived the deathgrams");
}
