#![warn(missing_docs)]

//! Umbrella crate re-exporting the Moira reproduction workspace.
pub use moira_client as client;
pub use moira_common as common;
pub use moira_core as core;
pub use moira_db as db;
pub use moira_dcm as dcm;
pub use moira_krb as krb;
pub use moira_protocol as protocol;
pub use moira_sim as sim;
pub use moira_svc as svc;
