//! Offline shim for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io; the workspace
//! only uses `crossbeam::channel::{unbounded, Sender, Receiver,
//! TryRecvError}`, which maps directly onto `std::sync::mpsc`.

/// Multi-producer channels (the subset of `crossbeam-channel` in use).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders have been dropped.
        Disconnected,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            // Like real crossbeam: no `T: Debug` bound, payload elided.
            f.write_str("SendError(..)")
        }
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Dequeues a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Dequeues a message, blocking until one arrives; `Err` when all
        /// senders are gone.
        pub fn recv(&self) -> Result<T, TryRecvError> {
            self.inner.recv().map_err(|_| TryRecvError::Disconnected)
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.try_recv(), Ok(7));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_after_receiver_dropped_fails() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
