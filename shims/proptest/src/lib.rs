//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of proptest it uses: the [`proptest!`]
//! test macro, `prop_assert*` macros, [`strategy::Strategy`] with
//! `prop_map`, [`strategy::Just`], `prop_oneof!`, [`arbitrary::any`],
//! integer-range and tuple strategies, `collection::vec`,
//! `sample::Index`, and regex-string strategies covering the pattern
//! subset found in this repo's tests (character classes with ranges and
//! escapes, `.`, and `{n}`/`{m,n}`/`?`/`*`/`+` quantifiers).
//!
//! Generation is deterministic: each test derives its RNG seed from the
//! test's module path and name, so failures reproduce exactly. Shrinking
//! is not implemented — a failing case reports the assertion message
//! from the raw generated input.

pub mod test_runner {
    use std::fmt;

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// Failure raised by `prop_assert*` inside a test case body.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
        /// The input was rejected (unused by this shim's macros, kept for
        /// API familiarity).
        Reject(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Deterministic generator state (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; returns 0 when `n == 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    /// Drives the generated cases for one `proptest!` test function.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        /// Creates a runner whose seed is derived from `name` (stable
        /// across runs — failures reproduce).
        pub fn new(config: ProptestConfig, name: &str) -> TestRunner {
            // FNV-1a over the fully qualified test name.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRunner {
                config,
                rng: TestRng::new(seed),
            }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The generator shared by all strategies in this test.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for producing values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree or shrinking — a
    /// strategy is just a deterministic sampler over the test RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy producing a single cloned value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Wraps the alternatives; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.options.len() as u64) as usize;
            self.options[pick].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types that can be generated unconditionally by [`any`].
    pub trait Arbitrary {
        /// Samples one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy for any value of `T` (see [`any`]); `Copy` so it can be
    /// bound to a local and reused across `prop_oneof!` arms.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<T> Copy for Any<T> {}

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the strategy generating arbitrary values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            (0x20 + rng.below(0x5f) as u8) as char
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s of `element` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform over `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRng;

    /// An index into a collection of as-yet-unknown size; resolved with
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Resolves to a concrete index in `[0, len)`.
        ///
        /// # Panics
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64() as usize)
        }
    }
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// One regex atom with its repetition bounds.
    #[derive(Debug, Clone)]
    enum Atom {
        /// A character class (already expanded to its member set).
        Class(Vec<char>),
        /// `.` — any printable character.
        AnyChar,
        /// A literal character.
        Lit(char),
    }

    #[derive(Debug, Clone)]
    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    /// A compiled pattern: a sequence of repeated atoms.
    #[derive(Debug, Clone)]
    pub struct Pattern {
        pieces: Vec<Piece>,
    }

    /// Compiles the supported regex subset; panics (with the pattern) on
    /// anything outside it, so unsupported tests fail loudly rather than
    /// generating wrong data.
    pub fn compile(pattern: &str) -> Pattern {
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        let mut pieces = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1, pattern);
                    i = next;
                    Atom::Class(set)
                }
                '.' => {
                    i += 1;
                    Atom::AnyChar
                }
                '\\' => {
                    assert!(i + 1 < chars.len(), "dangling escape in /{pattern}/");
                    i += 2;
                    Atom::Lit(chars[i - 1])
                }
                '(' | ')' | '|' | '*' | '+' | '?' | '{' | '}' => {
                    panic!("unsupported regex construct {:?} in /{pattern}/", chars[i])
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            let (min, max, next) = parse_quantifier(&chars, i, pattern);
            i = next;
            pieces.push(Piece { atom, min, max });
        }
        Pattern { pieces }
    }

    fn parse_class(chars: &[char], mut i: usize, pattern: &str) -> (Vec<char>, usize) {
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                assert!(i + 1 < chars.len(), "dangling escape in /{pattern}/");
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            // A `-` forms a range only when flanked by class members.
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let hi = chars[i + 2];
                assert!(c <= hi, "inverted range {c}-{hi} in /{pattern}/");
                for v in c..=hi {
                    set.push(v);
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        assert!(
            i < chars.len() && chars[i] == ']',
            "unterminated class in /{pattern}/"
        );
        assert!(!set.is_empty(), "empty class in /{pattern}/");
        (set, i + 1)
    }

    fn parse_quantifier(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
        match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in /{pattern}/"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.parse().unwrap_or_else(|_| bad_quant(pattern));
                        let hi = if hi.is_empty() {
                            lo + 8
                        } else {
                            hi.parse().unwrap_or_else(|_| bad_quant(pattern))
                        };
                        (lo, hi)
                    }
                    None => {
                        let n = body.parse().unwrap_or_else(|_| bad_quant(pattern));
                        (n, n)
                    }
                };
                assert!(min <= max, "inverted quantifier in /{pattern}/");
                (min, max, close + 1)
            }
            Some('?') => (0, 1, i + 1),
            Some('*') => (0, 8, i + 1),
            Some('+') => (1, 8, i + 1),
            _ => (1, 1, i),
        }
    }

    fn bad_quant(pattern: &str) -> usize {
        panic!("malformed quantifier in /{pattern}/")
    }

    impl Pattern {
        fn gen_char(atom: &Atom, rng: &mut TestRng) -> char {
            match atom {
                Atom::Class(set) => set[rng.below(set.len() as u64) as usize],
                Atom::Lit(c) => *c,
                Atom::AnyChar => {
                    // Mostly printable ASCII with an occasional non-ASCII
                    // character, mirroring real proptest's `.` (which never
                    // yields a newline).
                    if rng.below(16) == 0 {
                        const EXOTIC: [char; 6] = ['é', 'ß', 'λ', 'Ж', '中', '\u{1F600}'];
                        EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                    } else {
                        (0x20 + rng.below(0x5f) as u8) as char
                    }
                }
            }
        }

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(Self::gen_char(&piece.atom, rng));
                }
            }
            out
        }
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            compile(self).generate(rng)
        }
    }
}

/// `prop::` namespace as brought in by the prelude (`prop::collection::vec`,
/// `prop::sample::Index`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..runner.cases() {
                    let ($($arg,)+) = {
                        let rng = runner.rng();
                        ($($crate::strategy::Strategy::generate(&$strat, rng),)+)
                    };
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(e) => {
                            panic!(
                                "proptest case {}/{} failed: {}",
                                case + 1,
                                runner.cases(),
                                e
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!` for equality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        let msg = format!($($fmt)+);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            msg
        );
    }};
}

/// `prop_assert!` for inequality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        let msg = format!($($fmt)+);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`: {}",
            left,
            msg
        );
    }};
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        use crate::strategy::Strategy as _;
        let mut rng = crate::test_runner::TestRng::new(42);
        for _ in 0..200 {
            let out = "[a-z0-9._-]{1,16}".generate(&mut rng);
            assert!((1..=16).contains(&out.chars().count()), "bad len: {out:?}");
            assert!(
                out.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "._-".contains(c)),
                "bad char in {out:?}"
            );
        }
    }

    #[test]
    fn escaped_backslash_class() {
        let mut rng = crate::test_runner::TestRng::new(7);
        use crate::strategy::Strategy as _;
        for _ in 0..100 {
            let s = "[a-z:\\\\]{1,8}".generate(&mut rng);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == ':' || c == '\\'));
        }
    }

    #[test]
    fn exact_count_quantifier() {
        let mut rng = crate::test_runner::TestRng::new(9);
        use crate::strategy::Strategy as _;
        for _ in 0..50 {
            assert_eq!("[a-zA-Z0-9./]{2}".generate(&mut rng).chars().count(), 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            small in 0u8..3,
            byte in 1u8..=255,
            pair in (0u32..10, any::<bool>()),
            items in prop::collection::vec(any::<u8>(), 0..5),
            pick in any::<prop::sample::Index>(),
        ) {
            prop_assert!(small < 3);
            prop_assert_ne!(byte, 0);
            prop_assert!(pair.0 < 10);
            prop_assert!(items.len() < 5);
            prop_assert_eq!(pick.index(1), 0);
        }
    }

    #[test]
    fn oneof_and_map_cover_all_arms() {
        use crate::strategy::Strategy as _;
        let strat = prop_oneof![Just(0u8), (1u8..3).prop_map(|v| v), Just(9u8),];
        let mut rng = crate::test_runner::TestRng::new(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(strat.generate(&mut rng));
        }
        assert!(seen.contains(&0) && seen.contains(&9) && (seen.contains(&1) || seen.contains(&2)));
    }
}
