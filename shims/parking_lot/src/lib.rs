//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the minimal API surface it actually uses: `Mutex` and
//! `RwLock` with panic-free (poison-ignoring) guards. Backed by `std::sync`.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    guard: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poisoning is ignored —
    /// parking_lot semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { guard }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// A reader-writer lock whose guards never report poisoning.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { guard }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { guard }
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { guard: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard {
                guard: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { guard: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard {
                guard: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn rwlock_try_variants() {
        let l = RwLock::new(1);
        {
            let _r = l.read();
            assert!(l.try_read().is_some(), "readers share");
            assert!(l.try_write().is_none(), "writer excluded by reader");
        }
        {
            let _w = l.write();
            assert!(l.try_read().is_none(), "reader excluded by writer");
            assert!(l.try_write().is_none(), "second writer excluded");
        }
        assert!(l.try_write().is_some());
    }
}
