//! Offline shim for the `polling` crate: OS readiness polling behind one
//! portable API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset the connection tier uses: a [`Poller`] with
//! `add`/`modify`/`delete` interest registration, a blocking-with-timeout
//! [`Poller::wait`] collecting ready [`Event`]s, and a thread-safe
//! [`Poller::notify`] waker. Everything is **level-triggered**: a fd stays
//! ready until the condition is drained, which is what a
//! classify-then-dispatch server loop wants.
//!
//! Backends (all through direct `extern "C"` declarations against the
//! platform libc that std already links — the offline-deps rule holds):
//!
//! - **epoll** on Linux (the default there),
//! - **kqueue** on macOS and the BSDs,
//! - **poll(2)** everywhere else on Unix, and on Linux when
//!   `MOIRA_POLL_BACKEND=poll` is set (so CI exercises the fallback on the
//!   same host that runs the epoll path).
//!
//! The waker is a non-blocking `UnixStream` pair registered under a
//! reserved key; `notify` writes one byte, `wait` drains and swallows it.

#![warn(missing_docs)]

#[cfg(unix)]
pub use unix_impl::Poller;

#[cfg(not(unix))]
pub use stub_impl::Poller;

/// Raw file descriptor type (mirrors `std::os::unix::io::RawFd`).
#[cfg(unix)]
pub type RawFd = std::os::unix::io::RawFd;

/// Raw file descriptor type (no meaning off Unix; present so the
/// connection tier compiles).
#[cfg(not(unix))]
pub type RawFd = i32;

/// Interest in, or readiness of, one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen key identifying the source in [`Poller::wait`] results.
    pub key: usize,
    /// Interested in / ready for reading.
    pub readable: bool,
    /// Interested in / ready for writing.
    pub writable: bool,
}

impl Event {
    /// Read interest only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Write interest only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Both read and write interest.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// Registered but interested in nothing (parked source).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Reusable buffer of ready events filled by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
}

impl Events {
    /// An empty buffer.
    pub fn new() -> Events {
        Events { inner: Vec::new() }
    }

    /// Ready events from the last wait.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.inner.iter()
    }

    /// Number of ready events.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Clears the buffer (wait does this implicitly).
    pub fn clear(&mut self) {
        self.inner.clear();
    }

    fn push(&mut self, ev: Event) {
        self.inner.push(ev);
    }
}

#[cfg(unix)]
mod sys {
    //! The `extern "C"` surface, shared constants, and the two portable
    //! backends. Everything here is Unix-only.

    use std::os::raw::{c_int, c_ulong};

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }

    #[cfg(target_os = "linux")]
    pub mod epoll {
        use std::os::raw::c_int;

        pub const EPOLL_CLOEXEC: c_int = 0o2000000;
        pub const EPOLL_CTL_ADD: c_int = 1;
        pub const EPOLL_CTL_DEL: c_int = 2;
        pub const EPOLL_CTL_MOD: c_int = 3;
        pub const EPOLLIN: u32 = 0x001;
        pub const EPOLLOUT: u32 = 0x004;
        pub const EPOLLERR: u32 = 0x008;
        pub const EPOLLHUP: u32 = 0x010;

        #[repr(C)]
        #[cfg_attr(target_arch = "x86_64", repr(packed))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        extern "C" {
            pub fn epoll_create1(flags: c_int) -> c_int;
            pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
            pub fn epoll_wait(
                epfd: c_int,
                events: *mut EpollEvent,
                maxevents: c_int,
                timeout: c_int,
            ) -> c_int;
        }
    }

    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd"
    ))]
    pub mod kqueue {
        use std::os::raw::{c_int, c_long, c_void};

        pub const EVFILT_READ: i16 = -1;
        pub const EVFILT_WRITE: i16 = -2;
        pub const EV_ADD: u16 = 0x0001;
        pub const EV_DELETE: u16 = 0x0002;

        #[repr(C)]
        pub struct Timespec {
            pub tv_sec: c_long,
            pub tv_nsec: c_long,
        }

        #[repr(C)]
        pub struct KEvent {
            pub ident: usize,
            pub filter: i16,
            pub flags: u16,
            pub fflags: u32,
            pub data: isize,
            pub udata: *mut c_void,
        }

        extern "C" {
            pub fn kqueue() -> c_int;
            pub fn kevent(
                kq: c_int,
                changelist: *const KEvent,
                nchanges: c_int,
                eventlist: *mut KEvent,
                nevents: c_int,
                timeout: *const Timespec,
            ) -> c_int;
        }
    }
}

#[cfg(unix)]
mod unix_impl {
    use std::collections::HashMap;
    use std::io::{self, Read, Write};
    use std::os::unix::io::{AsRawFd, RawFd};
    use std::os::unix::net::UnixStream;
    use std::sync::Mutex;
    use std::time::Duration;

    use crate::sys;
    use crate::{Event, Events};

    /// Key reserved for the internal notify pipe; never surfaced.
    const NOTIFY_KEY: usize = usize::MAX;

    /// How many raw OS events one wait call collects at most.
    const WAIT_BATCH: usize = 1024;

    enum Backend {
        #[cfg(target_os = "linux")]
        Epoll { epfd: RawFd },
        #[cfg(any(
            target_os = "macos",
            target_os = "freebsd",
            target_os = "netbsd",
            target_os = "openbsd"
        ))]
        Kqueue { kq: RawFd },
        /// Portable fallback: interest kept in-process, `poll(2)` per wait.
        Poll {
            interest: Mutex<HashMap<RawFd, Event>>,
        },
    }

    /// A readiness poller over one OS selector instance.
    ///
    /// Thread-safety: `add`/`modify`/`delete`/`notify` may be called from
    /// any thread; `wait` is intended for the single reactor thread.
    pub struct Poller {
        backend: Backend,
        /// Waker pipe: `notify` writes to `.1`, `wait` drains `.0`.
        wake_rx: Mutex<UnixStream>,
        wake_tx: Mutex<UnixStream>,
    }

    fn millis(timeout: Option<Duration>) -> i32 {
        match timeout {
            None => -1,
            // Round up so a 100µs request does not busy-spin at 0ms.
            Some(d) => {
                d.as_millis().min(i32::MAX as u128) as i32
                    + i32::from(d.subsec_nanos() % 1_000_000 != 0)
            }
        }
    }

    impl Poller {
        /// Opens a poller on the platform's best backend.
        ///
        /// On Linux, `MOIRA_POLL_BACKEND=poll` selects the portable
        /// `poll(2)` fallback so the same host can exercise both paths.
        pub fn new() -> io::Result<Poller> {
            let (wake_rx, wake_tx) = UnixStream::pair()?;
            wake_rx.set_nonblocking(true)?;
            wake_tx.set_nonblocking(true)?;
            let backend = Self::open_backend()?;
            let poller = Poller {
                backend,
                wake_rx: Mutex::new(wake_rx),
                wake_tx: Mutex::new(wake_tx),
            };
            let rx_fd = poller.wake_rx.lock().expect("wake pipe").as_raw_fd();
            poller.add(rx_fd, Event::readable(NOTIFY_KEY))?;
            Ok(poller)
        }

        #[cfg(target_os = "linux")]
        fn open_backend() -> io::Result<Backend> {
            if std::env::var("MOIRA_POLL_BACKEND").as_deref() == Ok("poll") {
                return Ok(Backend::Poll {
                    interest: Mutex::new(HashMap::new()),
                });
            }
            let epfd = unsafe { sys::epoll::epoll_create1(sys::epoll::EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Backend::Epoll { epfd })
        }

        #[cfg(any(
            target_os = "macos",
            target_os = "freebsd",
            target_os = "netbsd",
            target_os = "openbsd"
        ))]
        fn open_backend() -> io::Result<Backend> {
            let kq = unsafe { sys::kqueue::kqueue() };
            if kq < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Backend::Kqueue { kq })
        }

        #[cfg(not(any(
            target_os = "linux",
            target_os = "macos",
            target_os = "freebsd",
            target_os = "netbsd",
            target_os = "openbsd"
        )))]
        fn open_backend() -> io::Result<Backend> {
            Ok(Backend::Poll {
                interest: Mutex::new(HashMap::new()),
            })
        }

        /// Registers `fd` with the given interest.
        pub fn add(&self, fd: RawFd, ev: Event) -> io::Result<()> {
            self.ctl(fd, ev, true)
        }

        /// Replaces the interest of an already-registered `fd`.
        pub fn modify(&self, fd: RawFd, ev: Event) -> io::Result<()> {
            self.ctl(fd, ev, false)
        }

        /// Deregisters `fd`.
        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            match &self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll { epfd } => {
                    use sys::epoll::*;
                    let mut raw = EpollEvent { events: 0, data: 0 };
                    if unsafe { epoll_ctl(*epfd, EPOLL_CTL_DEL, fd, &mut raw) } < 0 {
                        return Err(io::Error::last_os_error());
                    }
                    Ok(())
                }
                #[cfg(any(
                    target_os = "macos",
                    target_os = "freebsd",
                    target_os = "netbsd",
                    target_os = "openbsd"
                ))]
                Backend::Kqueue { kq } => {
                    // Best effort: a filter that was never added reports
                    // ENOENT, which deregistration can ignore.
                    let _ = kq_change(*kq, fd, sys::kqueue::EVFILT_READ, sys::kqueue::EV_DELETE, 0);
                    let _ = kq_change(
                        *kq,
                        fd,
                        sys::kqueue::EVFILT_WRITE,
                        sys::kqueue::EV_DELETE,
                        0,
                    );
                    Ok(())
                }
                Backend::Poll { interest } => {
                    interest.lock().expect("interest map").remove(&fd);
                    Ok(())
                }
            }
        }

        fn ctl(&self, fd: RawFd, ev: Event, adding: bool) -> io::Result<()> {
            match &self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll { epfd } => {
                    use sys::epoll::*;
                    let mut bits = 0u32;
                    if ev.readable {
                        bits |= EPOLLIN;
                    }
                    if ev.writable {
                        bits |= EPOLLOUT;
                    }
                    let mut raw = EpollEvent {
                        events: bits,
                        data: ev.key as u64,
                    };
                    let op = if adding { EPOLL_CTL_ADD } else { EPOLL_CTL_MOD };
                    if unsafe { epoll_ctl(*epfd, op, fd, &mut raw) } < 0 {
                        return Err(io::Error::last_os_error());
                    }
                    Ok(())
                }
                #[cfg(any(
                    target_os = "macos",
                    target_os = "freebsd",
                    target_os = "netbsd",
                    target_os = "openbsd"
                ))]
                Backend::Kqueue { kq } => {
                    use sys::kqueue::*;
                    let _ = adding;
                    // kqueue has per-filter registration; express interest
                    // as add/delete of each filter.
                    for (filter, on) in [(EVFILT_READ, ev.readable), (EVFILT_WRITE, ev.writable)] {
                        if on {
                            kq_change(*kq, fd, filter, EV_ADD, ev.key)?;
                        } else {
                            let _ = kq_change(*kq, fd, filter, EV_DELETE, ev.key);
                        }
                    }
                    Ok(())
                }
                Backend::Poll { interest } => {
                    interest.lock().expect("interest map").insert(fd, ev);
                    Ok(())
                }
            }
        }

        /// Blocks until at least one registered source is ready, the
        /// timeout elapses, or [`Poller::notify`] is called. Fills `events`
        /// (cleared first) and returns how many events it holds. A
        /// signal-interrupted wait returns 0 like a timeout.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            events.clear();
            let mut woken = false;
            match &self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll { epfd } => {
                    use sys::epoll::*;
                    let mut raw = [EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
                    let n = unsafe {
                        epoll_wait(*epfd, raw.as_mut_ptr(), WAIT_BATCH as i32, millis(timeout))
                    };
                    if n < 0 {
                        let e = io::Error::last_os_error();
                        if e.kind() == io::ErrorKind::Interrupted {
                            return Ok(0);
                        }
                        return Err(e);
                    }
                    for r in raw.iter().take(n as usize) {
                        let bits = r.events;
                        let key = r.data as usize;
                        if key == NOTIFY_KEY {
                            woken = true;
                            continue;
                        }
                        events.push(Event {
                            key,
                            // Errors and hangups surface as readable so the
                            // owner reads, sees EOF/err, and cleans up.
                            readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                            writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                        });
                    }
                }
                #[cfg(any(
                    target_os = "macos",
                    target_os = "freebsd",
                    target_os = "netbsd",
                    target_os = "openbsd"
                ))]
                Backend::Kqueue { kq } => {
                    use sys::kqueue::*;
                    let ts;
                    let ts_ptr = match timeout {
                        None => std::ptr::null(),
                        Some(d) => {
                            ts = Timespec {
                                tv_sec: d.as_secs() as _,
                                tv_nsec: d.subsec_nanos() as _,
                            };
                            &ts as *const Timespec
                        }
                    };
                    let mut raw: Vec<KEvent> = Vec::with_capacity(WAIT_BATCH);
                    let n = unsafe {
                        kevent(
                            *kq,
                            std::ptr::null(),
                            0,
                            raw.as_mut_ptr(),
                            WAIT_BATCH as i32,
                            ts_ptr,
                        )
                    };
                    if n < 0 {
                        let e = io::Error::last_os_error();
                        if e.kind() == io::ErrorKind::Interrupted {
                            return Ok(0);
                        }
                        return Err(e);
                    }
                    unsafe { raw.set_len(n as usize) };
                    for r in &raw {
                        let key = r.udata as usize;
                        if key == NOTIFY_KEY {
                            woken = true;
                            continue;
                        }
                        events.push(Event {
                            key,
                            readable: r.filter == EVFILT_READ,
                            writable: r.filter == EVFILT_WRITE,
                        });
                    }
                }
                Backend::Poll { interest } => {
                    let fds: Vec<(RawFd, Event)> = {
                        let map = interest.lock().expect("interest map");
                        map.iter().map(|(fd, ev)| (*fd, *ev)).collect()
                    };
                    let mut pollfds: Vec<sys::PollFd> = fds
                        .iter()
                        .map(|(fd, ev)| sys::PollFd {
                            fd: *fd,
                            events: (if ev.readable { sys::POLLIN } else { 0 })
                                | (if ev.writable { sys::POLLOUT } else { 0 }),
                            revents: 0,
                        })
                        .collect();
                    let n = unsafe {
                        sys::poll(pollfds.as_mut_ptr(), pollfds.len() as _, millis(timeout))
                    };
                    if n < 0 {
                        let e = io::Error::last_os_error();
                        if e.kind() == io::ErrorKind::Interrupted {
                            return Ok(0);
                        }
                        return Err(e);
                    }
                    for (pfd, (_, ev)) in pollfds.iter().zip(&fds) {
                        if pfd.revents == 0 {
                            continue;
                        }
                        if ev.key == NOTIFY_KEY {
                            woken = true;
                            continue;
                        }
                        let err = pfd.revents & (sys::POLLERR | sys::POLLHUP) != 0;
                        events.push(Event {
                            key: ev.key,
                            readable: pfd.revents & sys::POLLIN != 0 || err,
                            writable: pfd.revents & sys::POLLOUT != 0 || err,
                        });
                    }
                }
            }
            if woken {
                let mut buf = [0u8; 64];
                let mut rx = self.wake_rx.lock().expect("wake pipe");
                while matches!(rx.read(&mut buf), Ok(n) if n > 0) {}
            }
            Ok(events.len())
        }

        /// Wakes a concurrent [`Poller::wait`] from any thread. Coalesces:
        /// many notifies before the next wait cost one wake-up.
        pub fn notify(&self) -> io::Result<()> {
            let mut tx = self.wake_tx.lock().expect("wake pipe");
            match tx.write(&[1]) {
                Ok(_) => Ok(()),
                // A full pipe already guarantees the next wait wakes.
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
                Err(e) => Err(e),
            }
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            match &self.backend {
                #[cfg(target_os = "linux")]
                Backend::Epoll { epfd } => unsafe {
                    sys::close(*epfd);
                },
                #[cfg(any(
                    target_os = "macos",
                    target_os = "freebsd",
                    target_os = "netbsd",
                    target_os = "openbsd"
                ))]
                Backend::Kqueue { kq } => unsafe {
                    sys::close(*kq);
                },
                Backend::Poll { .. } => {}
            }
        }
    }

    #[cfg(any(
        target_os = "macos",
        target_os = "freebsd",
        target_os = "netbsd",
        target_os = "openbsd"
    ))]
    fn kq_change(kq: RawFd, fd: RawFd, filter: i16, flags: u16, key: usize) -> io::Result<()> {
        use sys::kqueue::*;
        let change = KEvent {
            ident: fd as usize,
            filter,
            flags,
            fflags: 0,
            data: 0,
            udata: key as *mut std::os::raw::c_void,
        };
        let n = unsafe { kevent(kq, &change, 1, std::ptr::null_mut(), 0, std::ptr::null()) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }
}

#[cfg(not(unix))]
mod stub_impl {
    //! Non-Unix stub: the connection tier compiles but a reactor cannot be
    //! opened; callers fall back to scan-everything polling.

    use std::io;
    use std::time::Duration;

    use crate::{Event, Events, RawFd};

    /// Readiness poller stub; [`Poller::new`] always fails off Unix.
    pub struct Poller;

    impl Poller {
        /// Always `Unsupported` off Unix.
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no readiness backend on this platform",
            ))
        }

        /// Unreachable (no instance can exist).
        pub fn add(&self, _fd: RawFd, _ev: Event) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        /// Unreachable (no instance can exist).
        pub fn modify(&self, _fd: RawFd, _ev: Event) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        /// Unreachable (no instance can exist).
        pub fn delete(&self, _fd: RawFd) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        /// Unreachable (no instance can exist).
        pub fn wait(&self, _events: &mut Events, _timeout: Option<Duration>) -> io::Result<usize> {
            unreachable!("stub poller cannot be constructed")
        }

        /// Unreachable (no instance can exist).
        pub fn notify(&self) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::{Duration, Instant};

    fn pair_nonblocking() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readiness_round_trip() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = pair_nonblocking();
        poller.add(b.as_raw_fd(), Event::readable(7)).unwrap();
        let mut events = Events::new();

        // Nothing ready: a zero timeout returns promptly with no events.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0);

        a.write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.readable);

        // Level-triggered: still ready until drained.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 1);
        let mut buf = [0u8; 8];
        assert_eq!(b.read(&mut buf).unwrap(), 1);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn write_interest_and_modify() {
        let poller = Poller::new().unwrap();
        let (a, _b) = pair_nonblocking();
        // A fresh socket is writable immediately.
        poller.add(a.as_raw_fd(), Event::writable(3)).unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().writable);
        // Parking the source silences it.
        poller.modify(a.as_raw_fd(), Event::none(3)).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0);
        poller.delete(a.as_raw_fd()).unwrap();
    }

    #[test]
    fn peer_close_reports_readable() {
        let poller = Poller::new().unwrap();
        let (a, b) = pair_nonblocking();
        poller.add(b.as_raw_fd(), Event::readable(9)).unwrap();
        drop(a);
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(
            events.iter().next().unwrap().readable,
            "EOF must surface as readable so the owner can clean up"
        );
    }

    #[test]
    fn notify_wakes_a_blocked_wait() {
        use std::sync::Arc;
        let poller = Arc::new(Poller::new().unwrap());
        let waker = poller.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.notify().unwrap();
        });
        let mut events = Events::new();
        let t0 = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(n, 0, "the notify event itself is swallowed");
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "wait returned on notify, not timeout"
        );
        t.join().unwrap();
    }

    #[test]
    fn timeout_elapses() {
        let poller = Poller::new().unwrap();
        let mut events = Events::new();
        let t0 = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(t0.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn sub_millisecond_timeouts_round_up() {
        // A 100µs timeout must not become a 0ms busy-spin.
        let poller = Poller::new().unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_micros(100)))
            .unwrap();
        assert_eq!(n, 0);
    }
}
