//! Offline shim for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal timing harness with criterion's API shape:
//! [`Criterion::bench_function`] / [`Criterion::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the `criterion_group!` /
//! `criterion_main!` macros. It runs a short calibration pass, then a
//! fixed measurement window, and prints mean time per iteration. No
//! statistics, plots, or baseline comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Rough target for each benchmark's measurement window.
const MEASURE_WINDOW: Duration = Duration::from_millis(300);

/// Minimum iterations per benchmark regardless of how slow one pass is.
const MIN_ITERS: u64 = 10;

/// Re-export matching criterion's `criterion::black_box`.
pub use std::hint::black_box;

/// A benchmark identifier of the form `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Timing driver handed to the closure of each benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the configured number of iterations, recording
    /// total wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark registry/driver (the shim has no configuration).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a benchmark with no per-run input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, &mut |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b| f(b, input));
        self
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate: time a handful of iterations to size the real run.
        let mut bencher = Bencher {
            iters: MIN_ITERS,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters as f64;
        let iters = if per_iter > 0.0 {
            ((MEASURE_WINDOW.as_secs_f64() / per_iter) as u64).clamp(MIN_ITERS, 10_000_000)
        } else {
            10_000_000
        };

        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let mean_ns = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        println!("{id:<40} {:>12}  ({iters} iters)", format_ns(mean_ns));
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: `criterion_group!(benches, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(2u64 + 2)));
        c.bench_with_input(BenchmarkId::new("with_input", 42), &42u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }

    #[test]
    fn id_formats_name_slash_param() {
        assert_eq!(BenchmarkId::new("gen", 100).id, "gen/100");
    }
}
