//! Offline shim for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset it uses: cheaply-cloneable immutable
//! [`Bytes`] (a reference-counted slice view), a growable [`BytesMut`]
//! builder, and the [`Buf`]/[`BufMut`] cursor traits with the big-endian
//! integer accessors the wire protocol relies on.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static slice (copied here; the shim keeps one representation).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Copies a slice into a new `Bytes`.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the view out into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Returns a sub-view of `range` (indices relative to this view).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past
    /// them.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: self.data.clone(),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        let end = data.len();
        Bytes {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl From<&[u8]> for BytesMut {
    fn from(data: &[u8]) -> BytesMut {
        BytesMut {
            data: data.to_vec(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source; integer accessors are big-endian, as on
/// the wire.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `n` bytes.
    ///
    /// # Panics
    /// Panics if `n > self.remaining()`.
    fn advance(&mut self, n: usize);

    /// True while bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics on an exhausted buffer (callers check `remaining` first).
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Panics
    /// Panics if fewer than two bytes remain.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Panics
    /// Panics if fewer than four bytes remain.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `i32`.
    ///
    /// # Panics
    /// Panics if fewer than four bytes remain.
    fn get_i32(&mut self) -> i32 {
        let v = i32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }
}

/// Write cursor appending to a byte sink; integer writers are big-endian.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i32`.
    fn put_i32(&mut self, v: i32) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_ints() {
        let mut buf = BytesMut::new();
        buf.put_u16(0xBEEF);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_i32(-9);
        buf.put_slice(b"xyz");
        let mut b = buf.freeze();
        assert_eq!(b.remaining(), 2 + 1 + 4 + 4 + 3);
        assert_eq!(b.get_u16(), 0xBEEF);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32(), 0xDEAD_BEEF);
        assert_eq!(b.get_i32(), -9);
        assert_eq!(b.split_to(2), Bytes::from_static(b"xy"));
        assert_eq!(&b[..], b"z");
        assert!(b.has_remaining());
        b.advance(1);
        assert!(!b.has_remaining());
    }

    #[test]
    fn slice_and_clone_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s, [2u8, 3, 4]);
        assert_eq!(b.slice(..2), Bytes::from(vec![1u8, 2]));
        let c = b.clone();
        assert_eq!(c, b);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_oob_panics() {
        Bytes::from(vec![1u8]).slice(..5);
    }
}
