//! Offline shim for the `serde_json` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset it uses: the [`Value`] tree, the [`json!`]
//! constructor macro (object/array literals with expression values),
//! [`to_string_pretty`], and [`from_str`] (a recursive-descent parser into
//! [`Value`], so result files can be read back and merged). No serde
//! derive integration — `from_str` always yields the dynamic tree.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integer or double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Double-precision float.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A JSON document tree. Objects keep keys sorted (`BTreeMap`), matching
/// serde_json's default map representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::PosInt(v as u64))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v < 0 {
                    Value::Number(Number::NegInt(v as i64))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<K: Into<String>, V: Into<Value>> From<BTreeMap<K, V>> for Value {
    fn from(map: BTreeMap<K, V>) -> Value {
        Value::Object(map.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }
}

impl<K: Into<String>, V: Into<Value>> From<std::collections::HashMap<K, V>> for Value {
    fn from(map: std::collections::HashMap<K, V>) -> Value {
        Value::Object(map.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }
}

impl<K: Clone + Into<String>, V: Clone + Into<Value>> From<&BTreeMap<K, V>> for Value {
    fn from(map: &BTreeMap<K, V>) -> Value {
        Value::Object(
            map.iter()
                .map(|(k, v)| (k.clone().into(), v.clone().into()))
                .collect(),
        )
    }
}

/// Conversion into [`Value`] by reference, so `json!` can take fields out
/// of borrowed structs without moving them (matching real serde_json,
/// which serializes expression values by reference).
pub trait ToValue {
    /// Builds the JSON representation of `self`.
    fn to_value(&self) -> Value;
}

macro_rules! to_value_unsigned {
    ($($t:ty),*) => {$(
        impl ToValue for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}

macro_rules! to_value_signed {
    ($($t:ty),*) => {$(
        impl ToValue for $t {
            fn to_value(&self) -> Value {
                if *self < 0 {
                    Value::Number(Number::NegInt(*self as i64))
                } else {
                    Value::Number(Number::PosInt(*self as u64))
                }
            }
        }
    )*};
}

to_value_unsigned!(u8, u16, u32, u64, usize);
to_value_signed!(i8, i16, i32, i64, isize);

impl ToValue for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl ToValue for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl ToValue for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToValue for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: ToValue> ToValue for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue> ToValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<K: AsRef<str>, V: ToValue> ToValue for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: AsRef<str>, V: ToValue> ToValue for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: ToValue + ?Sized> ToValue for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Serialization or parse failure. The shim's writer is infallible, so in
/// practice this only ever carries a parse diagnostic with a byte offset.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn parse(offset: usize, what: impl fmt::Display) -> Error {
        Error {
            msg: format!("JSON parse error at byte {offset}: {what}"),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(out, key);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Renders `value` as human-readable JSON with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

impl Value {
    /// The object map behind this value, if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Mutable access to the object map, if this value is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The elements of this value, if it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string behind this value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a float, if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v as f64),
            Value::Number(Number::NegInt(v)) => Some(*v as f64),
            Value::Number(Number::Float(v)) => Some(*v),
            _ => None,
        }
    }

    /// This value as an unsigned integer, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Recursive-descent JSON parser producing a [`Value`] tree.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::parse(self.pos, format!("expected {word}")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::parse(
                self.pos,
                format!("unexpected byte {:?}", other as char),
            )),
            None => Err(Error::parse(self.pos, "unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::parse(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::parse(start, "invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::parse(self.pos, "unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs arrive as two \u escapes.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xD800) << 10)
                                        + (low.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(Error::parse(
                                self.pos - 1,
                                format!("bad escape {:?}", other as char),
                            ))
                        }
                    }
                }
                _ => return Err(Error::parse(self.pos, "unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::parse(self.pos, "truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| Error::parse(self.pos, "bad \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse(start, "bad number"))?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::Float(v)))
            .map_err(|_| Error::parse(start, format!("bad number {text:?}")))
    }
}

/// Parses a JSON document into a [`Value`]. Trailing whitespace is
/// allowed; trailing garbage is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(p.pos, "trailing characters"));
    }
    Ok(value)
}

/// Builds a [`Value`] from a JSON-ish literal. Supports object literals
/// with string-literal keys, array literals, `null`, and arbitrary Rust
/// expressions convertible into `Value`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(::std::collections::BTreeMap::new()) };
    ({ $($body:tt)+ }) => {{
        let mut map = ::std::collections::BTreeMap::<::std::string::String, $crate::Value>::new();
        $crate::json_object_entries!(map, $($body)+);
        $crate::Value::Object(map)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::ToValue::to_value(&$elem)),*])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal muncher for `json!` object bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($map:ident $(,)?) => {};
    ($map:ident, $key:literal : null , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::json_object_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : null) => {
        $map.insert($key.to_string(), $crate::Value::Null);
    };
    ($map:ident, $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : { $($inner:tt)* } $(,)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_object_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] $(,)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
    };
    ($map:ident, $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::ToValue::to_value(&$value));
        $crate::json_object_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : $value:expr) => {
        $map.insert($key.to_string(), $crate::ToValue::to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_builds_sorted_map() {
        let rows = vec![json!({"a": 1, "b": true})];
        let v = json!({
            "zeta": 1u64,
            "alpha": "text",
            "nested": {"x": 1.5, "y": -2},
            "rows": rows,
            "flag": false,
            "nothing": null,
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"alpha\": \"text\""));
        assert!(s.contains("\"x\": 1.5"));
        assert!(s.contains("\"y\": -2"));
        assert!(s.contains("\"nothing\": null"));
        // BTreeMap ordering: alpha before zeta.
        assert!(s.find("alpha").unwrap() < s.find("zeta").unwrap());
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({"k": "a\"b\\c\nd"});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains(r#""a\"b\\c\nd""#));
    }

    #[test]
    fn expression_values_convert() {
        let n = 41usize;
        let v = json!({ "sum": n + 1, "cmp": n > 2, "len": "abc".len() });
        match &v {
            Value::Object(m) => {
                assert_eq!(m["sum"], Value::Number(Number::PosInt(42)));
                assert_eq!(m["cmp"], Value::Bool(true));
                assert_eq!(m["len"], Value::Number(Number::PosInt(3)));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn parse_round_trips_pretty_output() {
        let v = json!({
            "name": "conn_churn",
            "qps": 12345.678,
            "whole": 2.0f64,
            "live": 10000u64,
            "delta": -3,
            "ok": true,
            "none": null,
            "tags": ["a", "b"],
            "nested": {"p99_us": 417.25},
        });
        let text = to_string_pretty(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parse_accepts_escapes_and_rejects_garbage() {
        let v = from_str(r#"{"k": "a\"b\\c\nd A"}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_str), Some("a\"b\\c\nd A"));
        assert!(from_str("{\"k\": 1} extra").is_err());
        assert!(from_str("{\"k\": }").is_err());
        assert!(from_str("[1, 2").is_err());
        let err = from_str("nulx").unwrap_err();
        assert!(err.to_string().contains("byte 0"), "{err}");
    }

    #[test]
    fn accessors_navigate_the_tree() {
        let mut v = from_str(r#"{"a": {"b": [1, 2.5]}, "s": "x"}"#).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(|a| a.get("b")).unwrap();
        assert_eq!(arr.as_array().unwrap().len(), 2);
        assert_eq!(arr.as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(arr.as_array().unwrap()[1].as_f64(), Some(2.5));
        v.as_object_mut()
            .unwrap()
            .insert("new".into(), json!({"k": 1}));
        assert_eq!(
            v.get("new").and_then(|n| n.get("k")).unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn real_result_files_parse() {
        // The actual results/ corpus must round-trip through the parser,
        // since conn_churn read-modify-writes read_throughput.json.
        for file in [
            "../../results/read_throughput.json",
            "../../results/wal_commit.json",
        ] {
            if let Ok(text) = std::fs::read_to_string(file) {
                let v = from_str(&text).expect(file);
                assert!(v.as_object().is_some());
            }
        }
    }

    #[test]
    fn maps_and_floats_round_trip_display() {
        let mut by_kind = BTreeMap::new();
        by_kind.insert("Retrieve".to_string(), 10u64);
        let v = json!({ "by_kind": by_kind, "f": 2.0f64 });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"Retrieve\": 10"));
        assert!(s.contains("\"f\": 2.0"));
    }
}
