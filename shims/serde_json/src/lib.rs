//! Offline shim for the `serde_json` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset it uses: the [`Value`] tree, the [`json!`]
//! constructor macro (object/array literals with expression values), and
//! [`to_string_pretty`]. No serde integration, no parsing — the repo only
//! ever *writes* JSON result tables.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integer or double.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    PosInt(u64),
    /// Negative integer.
    NegInt(i64),
    /// Double-precision float.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::PosInt(v) => write!(f, "{v}"),
            Number::NegInt(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A JSON document tree. Objects keep keys sorted (`BTreeMap`), matching
/// serde_json's default map representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::PosInt(v as u64))
            }
        }
    )*};
}

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v < 0 {
                    Value::Number(Number::NegInt(v as i64))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
    )*};
}

from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<K: Into<String>, V: Into<Value>> From<BTreeMap<K, V>> for Value {
    fn from(map: BTreeMap<K, V>) -> Value {
        Value::Object(map.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }
}

impl<K: Into<String>, V: Into<Value>> From<std::collections::HashMap<K, V>> for Value {
    fn from(map: std::collections::HashMap<K, V>) -> Value {
        Value::Object(map.into_iter().map(|(k, v)| (k.into(), v.into())).collect())
    }
}

impl<K: Clone + Into<String>, V: Clone + Into<Value>> From<&BTreeMap<K, V>> for Value {
    fn from(map: &BTreeMap<K, V>) -> Value {
        Value::Object(
            map.iter()
                .map(|(k, v)| (k.clone().into(), v.clone().into()))
                .collect(),
        )
    }
}

/// Conversion into [`Value`] by reference, so `json!` can take fields out
/// of borrowed structs without moving them (matching real serde_json,
/// which serializes expression values by reference).
pub trait ToValue {
    /// Builds the JSON representation of `self`.
    fn to_value(&self) -> Value;
}

macro_rules! to_value_unsigned {
    ($($t:ty),*) => {$(
        impl ToValue for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}

macro_rules! to_value_signed {
    ($($t:ty),*) => {$(
        impl ToValue for $t {
            fn to_value(&self) -> Value {
                if *self < 0 {
                    Value::Number(Number::NegInt(*self as i64))
                } else {
                    Value::Number(Number::PosInt(*self as u64))
                }
            }
        }
    )*};
}

to_value_unsigned!(u8, u16, u32, u64, usize);
to_value_signed!(i8, i16, i32, i64, isize);

impl ToValue for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl ToValue for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl ToValue for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToValue for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: ToValue> ToValue for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue> ToValue for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<K: AsRef<str>, V: ToValue> ToValue for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: AsRef<str>, V: ToValue> ToValue for std::collections::HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<T: ToValue + ?Sized> ToValue for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Serialization failure (the shim's writer is infallible; the type exists
/// for API compatibility).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json shim serialization error")
    }
}

impl std::error::Error for Error {}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in map.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(out, key);
                out.push_str(": ");
                write_pretty(out, item, indent + 1);
                if i + 1 < map.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Renders `value` as human-readable JSON with two-space indentation.
pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

/// Builds a [`Value`] from a JSON-ish literal. Supports object literals
/// with string-literal keys, array literals, `null`, and arbitrary Rust
/// expressions convertible into `Value`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object(::std::collections::BTreeMap::new()) };
    ({ $($body:tt)+ }) => {{
        let mut map = ::std::collections::BTreeMap::<::std::string::String, $crate::Value>::new();
        $crate::json_object_entries!(map, $($body)+);
        $crate::Value::Object(map)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![$($crate::ToValue::to_value(&$elem)),*])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal muncher for `json!` object bodies.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($map:ident $(,)?) => {};
    ($map:ident, $key:literal : null , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::Value::Null);
        $crate::json_object_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : null) => {
        $map.insert($key.to_string(), $crate::Value::Null);
    };
    ($map:ident, $key:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_object_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : { $($inner:tt)* } $(,)?) => {
        $map.insert($key.to_string(), $crate::json!({ $($inner)* }));
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_object_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : [ $($inner:tt)* ] $(,)?) => {
        $map.insert($key.to_string(), $crate::json!([ $($inner)* ]));
    };
    ($map:ident, $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::ToValue::to_value(&$value));
        $crate::json_object_entries!($map, $($rest)*);
    };
    ($map:ident, $key:literal : $value:expr) => {
        $map.insert($key.to_string(), $crate::ToValue::to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_macro_builds_sorted_map() {
        let rows = vec![json!({"a": 1, "b": true})];
        let v = json!({
            "zeta": 1u64,
            "alpha": "text",
            "nested": {"x": 1.5, "y": -2},
            "rows": rows,
            "flag": false,
            "nothing": null,
        });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"alpha\": \"text\""));
        assert!(s.contains("\"x\": 1.5"));
        assert!(s.contains("\"y\": -2"));
        assert!(s.contains("\"nothing\": null"));
        // BTreeMap ordering: alpha before zeta.
        assert!(s.find("alpha").unwrap() < s.find("zeta").unwrap());
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({"k": "a\"b\\c\nd"});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains(r#""a\"b\\c\nd""#));
    }

    #[test]
    fn expression_values_convert() {
        let n = 41usize;
        let v = json!({ "sum": n + 1, "cmp": n > 2, "len": "abc".len() });
        match &v {
            Value::Object(m) => {
                assert_eq!(m["sum"], Value::Number(Number::PosInt(42)));
                assert_eq!(m["cmp"], Value::Bool(true));
                assert_eq!(m["len"], Value::Number(Number::PosInt(3)));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn maps_and_floats_round_trip_display() {
        let mut by_kind = BTreeMap::new();
        by_kind.insert("Retrieve".to_string(), 10u64);
        let v = json!({ "by_kind": by_kind, "f": 2.0f64 });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"Retrieve\": 10"));
        assert!(s.contains("\"f\": 2.0"));
    }
}
