//! Offline shim of the `syn` parsing surface `moira-lint` uses.
//!
//! The build environment has no crates.io access, so — like every other
//! external dependency in this workspace — `syn` resolves to an in-tree
//! subset (see DESIGN.md). This is not a full Rust parser: it is a
//! line-tracked lexer plus an item-level parser that recovers the shape the
//! lint passes need — functions (name, signature tokens, body tokens),
//! inline modules (with their attributes, so `#[cfg(test)]` scopes are
//! known), impl/trait blocks, and comments (the `// lint:allow(...)`
//! escape hatch and the `// full-rebuild fallback` markers live there).
//!
//! Everything else (structs, enums, uses, consts, macros) is skipped with
//! balanced-delimiter scanning; its tokens remain reachable through
//! [`Item::Other`] so passes that read constants can still see them.

use std::fmt;

/// What a token is. Multi-character operators are emitted as single
/// punctuation characters (`::` is two `:` tokens); matchers account for
/// that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime such as `'a` (without a trailing quote).
    Lifetime,
    /// Numeric literal (suffixes attached; `1.5` lexes as three tokens).
    Number,
    /// String / raw string / byte-string literal, quotes stripped,
    /// escapes left as written.
    Str,
    /// Character or byte-character literal.
    Char,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }
}

/// A comment (line or block), with the 1-based line it starts on. Line
/// comments keep their text without the `//`; block comments without the
/// delimiters.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// An attribute: the tokens inside `#[...]`.
#[derive(Debug, Clone)]
pub struct Attr {
    pub line: u32,
    pub tokens: Vec<Token>,
}

impl Attr {
    /// True for `#[cfg(test)]` (also matches `cfg(any(test, ...))` —
    /// anything gating on `test`).
    pub fn is_cfg_test(&self) -> bool {
        self.tokens.first().is_some_and(|t| t.is_ident("cfg"))
            && self.tokens.iter().any(|t| t.is_ident("test"))
    }

    /// True for `#[test]`.
    pub fn is_test(&self) -> bool {
        self.tokens.len() == 1 && self.tokens[0].is_ident("test")
    }
}

/// A function item: free, impl-associated, or trait-associated.
#[derive(Debug, Clone)]
pub struct ItemFn {
    pub name: String,
    pub line: u32,
    pub attrs: Vec<Attr>,
    /// Tokens from `fn` through the end of the signature (params, return
    /// type, where clause), exclusive of the body braces.
    pub sig: Vec<Token>,
    /// Tokens inside the body braces (empty for trait method declarations).
    pub body: Vec<Token>,
    /// False for bodyless trait-method declarations.
    pub has_body: bool,
}

/// An inline or out-of-line module.
#[derive(Debug, Clone)]
pub struct ItemMod {
    pub name: String,
    pub line: u32,
    pub attrs: Vec<Attr>,
    /// `None` for `mod name;`.
    pub items: Option<Vec<Item>>,
}

/// An `impl` or `trait` block (the lint passes treat them alike: both hold
/// functions).
#[derive(Debug, Clone)]
pub struct ItemImpl {
    pub line: u32,
    /// Header tokens between the `impl`/`trait` keyword and the opening
    /// brace (generics, trait path, self type, where clause).
    pub header: Vec<Token>,
    pub items: Vec<Item>,
}

/// A parsed item.
#[derive(Debug, Clone)]
pub enum Item {
    Fn(ItemFn),
    Mod(ItemMod),
    Impl(ItemImpl),
    /// Any other item, kept as its raw tokens (consts, statics, structs,
    /// enums, uses, macros...).
    Other(Vec<Token>),
}

/// A parsed source file.
#[derive(Debug, Clone)]
pub struct File {
    pub items: Vec<Item>,
    pub comments: Vec<Comment>,
}

/// A function reached by recursive traversal, with its test-scope flag.
#[derive(Debug, Clone, Copy)]
pub struct FnRef<'a> {
    pub func: &'a ItemFn,
    /// True when the function is inside a `#[cfg(test)]` module or carries
    /// `#[test]`.
    pub in_test: bool,
}

impl File {
    /// Every function in the file, recursively, with test-scope flags.
    pub fn functions(&self) -> Vec<FnRef<'_>> {
        let mut out = Vec::new();
        collect_fns(&self.items, false, &mut out);
        out
    }
}

fn collect_fns<'a>(items: &'a [Item], in_test: bool, out: &mut Vec<FnRef<'a>>) {
    for item in items {
        match item {
            Item::Fn(f) => out.push(FnRef {
                func: f,
                in_test: in_test || f.attrs.iter().any(|a| a.is_test()),
            }),
            Item::Mod(m) => {
                if let Some(inner) = &m.items {
                    let test = in_test || m.attrs.iter().any(|a| a.is_cfg_test());
                    collect_fns(inner, test, out);
                }
            }
            Item::Impl(i) => collect_fns(&i.items, in_test, out),
            Item::Other(_) => {}
        }
    }
}

/// Parse failure: the construct at `line` did not scan.
#[derive(Debug, Clone)]
pub struct Error {
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for Error {}

/// Lexes `src` into code tokens and comments.
pub fn tokenize(src: &str) -> (Vec<Token>, Vec<Comment>) {
    let mut tokens = Vec::new();
    let mut comments = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = bytes.len();
    let mut push = |kind, text: String, line| tokens.push(Token { kind, text, line });
    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i + 2;
                while i < n && bytes[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    text: bytes[start..i].iter().collect(),
                });
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let start_line = line;
                let start = i + 2;
                i += 2;
                let mut depth = 1usize;
                while i < n && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == '/' && i + 1 < n && bytes[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let end = i.saturating_sub(2).max(start);
                comments.push(Comment {
                    line: start_line,
                    text: bytes[start..end].iter().collect(),
                });
            }
            '"' => {
                let (text, consumed, newlines) = scan_string(&bytes[i..]);
                push(TokenKind::Str, text, line);
                line += newlines;
                i += consumed;
            }
            'r' | 'b' if starts_raw_or_byte_string(&bytes[i..]) => {
                let (text, consumed, newlines) = scan_raw_or_byte(&bytes[i..]);
                push(TokenKind::Str, text, line);
                line += newlines;
                i += consumed;
            }
            '\'' => {
                // Char literal or lifetime.
                if i + 1 < n && bytes[i + 1] == '\\' {
                    // Escaped char literal.
                    let mut j = i + 2;
                    while j < n && bytes[j] != '\'' {
                        j += 1;
                    }
                    push(TokenKind::Char, bytes[i + 1..j].iter().collect(), line);
                    i = j + 1;
                } else if i + 2 < n && bytes[i + 2] == '\'' {
                    push(TokenKind::Char, bytes[i + 1..i + 2].iter().collect(), line);
                    i += 3;
                } else {
                    let start = i + 1;
                    let mut j = start;
                    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    push(TokenKind::Lifetime, bytes[start..j].iter().collect(), line);
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                push(TokenKind::Number, bytes[start..i].iter().collect(), line);
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                push(TokenKind::Ident, bytes[start..i].iter().collect(), line);
            }
            _ => {
                push(TokenKind::Punct, c.to_string(), line);
                i += 1;
            }
        }
    }
    (tokens, comments)
}

/// True when the slice starts a raw string (`r"`, `r#`), byte string
/// (`b"`), or raw byte string (`br"`, `br#`).
fn starts_raw_or_byte_string(s: &[char]) -> bool {
    match s.first() {
        Some('r') => matches!(s.get(1), Some('"') | Some('#')),
        Some('b') => match s.get(1) {
            Some('"') => true,
            Some('r') => matches!(s.get(2), Some('"') | Some('#')),
            _ => false,
        },
        _ => None::<()>.is_some(),
    }
}

/// Scans a normal `"..."` string starting at the opening quote. Returns
/// (content, chars consumed, newlines crossed).
fn scan_string(s: &[char]) -> (String, usize, u32) {
    let mut i = 1usize;
    let mut newlines = 0u32;
    let mut out = String::new();
    while i < s.len() {
        match s[i] {
            '\\' if i + 1 < s.len() => {
                out.push(s[i]);
                out.push(s[i + 1]);
                if s[i + 1] == '\n' {
                    newlines += 1;
                }
                i += 2;
            }
            '"' => return (out, i + 1, newlines),
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                out.push(c);
                i += 1;
            }
        }
    }
    (out, i, newlines)
}

/// Scans `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#` starting at `r`/`b`.
fn scan_raw_or_byte(s: &[char]) -> (String, usize, u32) {
    let mut i = 0usize;
    if s[i] == 'b' {
        i += 1;
    }
    let raw = i < s.len() && s[i] == 'r';
    if raw {
        i += 1;
    }
    if !raw {
        // Plain byte string: same escape rules as a normal string.
        let (text, consumed, newlines) = scan_string(&s[i..]);
        return (text, i + consumed, newlines);
    }
    let mut hashes = 0usize;
    while i < s.len() && s[i] == '#' {
        hashes += 1;
        i += 1;
    }
    // Opening quote.
    i += 1;
    let start = i;
    let mut newlines = 0u32;
    while i < s.len() {
        if s[i] == '"'
            && s[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            let text: String = s[start..i].iter().collect();
            return (text, i + 1 + hashes, newlines);
        }
        if s[i] == '\n' {
            newlines += 1;
        }
        i += 1;
    }
    (s[start..].iter().collect(), i, newlines)
}

/// Parses a whole source file.
pub fn parse_file(src: &str) -> Result<File, Error> {
    let (tokens, comments) = tokenize(src);
    let mut pos = 0usize;
    let items = parse_items(&tokens, &mut pos, tokens.len())?;
    Ok(File { items, comments })
}

/// Keywords that may precede `fn` / `mod` / `impl` / `trait` / `struct`...
fn is_modifier(t: &Token) -> bool {
    matches!(
        t.text.as_str(),
        "pub" | "const" | "unsafe" | "async" | "extern" | "default"
    ) && t.kind == TokenKind::Ident
}

fn parse_items(tokens: &[Token], pos: &mut usize, end: usize) -> Result<Vec<Item>, Error> {
    let mut items = Vec::new();
    while *pos < end {
        // Attributes (inner attributes `#![...]` are skipped the same way).
        let mut attrs = Vec::new();
        loop {
            let t = &tokens[*pos];
            if t.is_punct('#') && *pos + 1 < end {
                let mut j = *pos + 1;
                if tokens[j].is_punct('!') {
                    j += 1;
                }
                if j < end && tokens[j].is_punct('[') {
                    let close = matching(tokens, j, end)?;
                    attrs.push(Attr {
                        line: t.line,
                        tokens: tokens[j + 1..close].to_vec(),
                    });
                    *pos = close + 1;
                    if *pos >= end {
                        break;
                    }
                    continue;
                }
            }
            break;
        }
        if *pos >= end {
            break;
        }
        // Visibility and modifiers: remember where the item started but
        // scan past `pub`, `pub(crate)`, `const`, `unsafe`, `async`,
        // `extern "C"`.
        let item_start = *pos;
        let mut k = *pos;
        while k < end && is_modifier(&tokens[k]) {
            k += 1;
            if k < end && tokens[k].is_punct('(') {
                // pub(crate), pub(super), pub(in path)
                k = matching(tokens, k, end)? + 1;
            } else if k < end && tokens[k].kind == TokenKind::Str {
                // extern "C"
                k += 1;
            }
        }
        if k >= end {
            *pos = end;
            break;
        }
        let kw = &tokens[k];
        match kw.text.as_str() {
            "fn" if kw.kind == TokenKind::Ident => {
                *pos = k;
                items.push(Item::Fn(parse_fn(tokens, pos, end, attrs)?));
            }
            "mod" if kw.kind == TokenKind::Ident => {
                let line = kw.line;
                let name = ident_after(tokens, k, end)?;
                let mut j = k + 2;
                if j < end && tokens[j].is_punct(';') {
                    *pos = j + 1;
                    items.push(Item::Mod(ItemMod {
                        name,
                        line,
                        attrs,
                        items: None,
                    }));
                } else if j < end && tokens[j].is_punct('{') {
                    let close = matching(tokens, j, end)?;
                    let mut inner_pos = j + 1;
                    let inner = parse_items(tokens, &mut inner_pos, close)?;
                    *pos = close + 1;
                    items.push(Item::Mod(ItemMod {
                        name,
                        line,
                        attrs,
                        items: Some(inner),
                    }));
                } else {
                    // `mod` used oddly; skip the keyword.
                    j = k + 1;
                    *pos = j;
                }
            }
            "impl" | "trait" if kw.kind == TokenKind::Ident => {
                let line = kw.line;
                // Header runs to the first `{` at delimiter depth zero (or a
                // `;` — e.g. `trait Alias = ...;`).
                let mut j = k + 1;
                let mut depth = 0i32;
                while j < end {
                    let t = &tokens[j];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
                        break;
                    }
                    j += 1;
                }
                if j < end && tokens[j].is_punct('{') {
                    let close = matching(tokens, j, end)?;
                    let header = tokens[k + 1..j].to_vec();
                    let mut inner_pos = j + 1;
                    let inner = parse_items(tokens, &mut inner_pos, close)?;
                    *pos = close + 1;
                    items.push(Item::Impl(ItemImpl {
                        line,
                        header,
                        items: inner,
                    }));
                } else {
                    *pos = (j + 1).min(end);
                }
            }
            _ => {
                // Any other item: skip to the first `;` or balanced brace
                // group at delimiter depth zero, keep its raw tokens.
                let mut j = k;
                let mut depth = 0i32;
                let mut end_of_item = end;
                while j < end {
                    let t = &tokens[j];
                    if t.is_punct('(') || t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(';') {
                        end_of_item = j + 1;
                        break;
                    } else if depth == 0 && t.is_punct('{') {
                        end_of_item = matching(tokens, j, end)? + 1;
                        // `struct X {...}` / `macro_rules! m {...}` end at
                        // the brace; `match`-like constructs cannot appear
                        // at item level.
                        break;
                    }
                    j += 1;
                }
                if j >= end {
                    end_of_item = end;
                }
                items.push(Item::Other(tokens[item_start..end_of_item].to_vec()));
                *pos = end_of_item;
            }
        }
    }
    Ok(items)
}

fn ident_after(tokens: &[Token], k: usize, end: usize) -> Result<String, Error> {
    match tokens.get(k + 1) {
        Some(t) if t.kind == TokenKind::Ident && k + 1 < end => Ok(t.text.clone()),
        _ => Err(Error {
            line: tokens[k].line,
            message: format!("expected name after `{}`", tokens[k].text),
        }),
    }
}

fn parse_fn(
    tokens: &[Token],
    pos: &mut usize,
    end: usize,
    attrs: Vec<Attr>,
) -> Result<ItemFn, Error> {
    let fn_kw = *pos;
    let line = tokens[fn_kw].line;
    let name = ident_after(tokens, fn_kw, end)?;
    // Signature: to the first `{` or `;` at delimiter depth zero. Angle
    // brackets need no tracking — braces cannot appear inside a signature's
    // generics in this codebase (no const-generic blocks).
    let mut j = fn_kw + 2;
    let mut depth = 0i32;
    while j < end {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && (t.is_punct('{') || t.is_punct(';')) {
            break;
        }
        j += 1;
    }
    if j >= end {
        return Err(Error {
            line,
            message: format!("unterminated signature of fn {name}"),
        });
    }
    let sig = tokens[fn_kw..j].to_vec();
    if tokens[j].is_punct(';') {
        *pos = j + 1;
        return Ok(ItemFn {
            name,
            line,
            attrs,
            sig,
            body: Vec::new(),
            has_body: false,
        });
    }
    let close = matching(tokens, j, end)?;
    let body = tokens[j + 1..close].to_vec();
    *pos = close + 1;
    Ok(ItemFn {
        name,
        line,
        attrs,
        sig,
        body,
        has_body: true,
    })
}

/// Index of the delimiter matching the opener at `open` (handles `(`,
/// `[`, `{`).
fn matching(tokens: &[Token], open: usize, end: usize) -> Result<usize, Error> {
    let (o, c) = match tokens[open].text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        other => {
            return Err(Error {
                line: tokens[open].line,
                message: format!("not an opening delimiter: {other}"),
            })
        }
    };
    let mut depth = 0i32;
    for (idx, t) in tokens.iter().enumerate().take(end).skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Ok(idx);
            }
        }
    }
    Err(Error {
        line: tokens[open].line,
        message: format!("unmatched `{o}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_strings_chars_lifetimes() {
        let (toks, comments) = tokenize(
            "let s = \"a\\\"b\"; let c = 'x'; let l: &'static str = r#\"raw\"#; // note\n",
        );
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text == "a\\\"b"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "x"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "static"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text == "raw"));
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("note"));
    }

    #[test]
    fn parses_fns_mods_impls() {
        let src = r#"
pub struct S { x: u8 }

impl S {
    pub fn get(&self) -> u8 { self.x }
}

fn helper(v: &[u8]) -> usize { v.len() }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert!(true); }
}
"#;
        let file = parse_file(src).unwrap();
        let fns = file.functions();
        let names: Vec<(&str, bool)> = fns
            .iter()
            .map(|f| (f.func.name.as_str(), f.in_test))
            .collect();
        assert_eq!(names, vec![("get", false), ("helper", false), ("t", true)]);
        let get = fns[0].func;
        assert!(get.body.iter().any(|t| t.is_ident("x")));
        assert!(get.sig.iter().any(|t| t.is_ident("u8")));
    }

    #[test]
    fn line_numbers_track() {
        let src = "fn a() {}\n\nfn b() {\n    let x = 1;\n}\n";
        let file = parse_file(src).unwrap();
        let fns = file.functions();
        assert_eq!(fns[0].func.line, 1);
        assert_eq!(fns[1].func.line, 3);
        assert_eq!(fns[1].func.body[3].line, 4); // `1`
    }

    #[test]
    fn trait_methods_with_and_without_bodies() {
        let src = "trait T { fn decl(&self); fn dflt(&self) -> u8 { 0 } }";
        let file = parse_file(src).unwrap();
        let fns = file.functions();
        assert_eq!(fns.len(), 2);
        assert!(!fns[0].func.has_body);
        assert!(fns[1].func.has_body);
    }

    #[test]
    fn consts_kept_as_other_items() {
        let src = "const FIELDS: &[&str] = &[\"a\", \"b\"];\nfn f() {}\n";
        let file = parse_file(src).unwrap();
        assert!(matches!(&file.items[0], Item::Other(toks)
            if toks.iter().any(|t| t.kind == TokenKind::Str && t.text == "a")));
    }
}
