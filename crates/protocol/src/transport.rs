//! Framed transports: an in-process channel pair and non-blocking TCP.
//!
//! The Moira server "runs as a single UNIX process … GDB, through the use
//! of BSD UNIX non-blocking I/O, allows the programmer to set up a single
//! process server which handles multiple simultaneous TCP connections"
//! (§5.4). The [`Channel`] trait exposes exactly the non-blocking
//! operations such a server loop needs: `try_recv` never blocks, `send`
//! queues a frame, and the loop makes progress on every connection each
//! iteration.
//!
//! Frames are length-prefixed: `u32` big-endian payload length, then the
//! payload (a [`crate::wire`] encoding).

use std::io::{self, Read, Write};
use std::net::TcpStream;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

/// A bidirectional, non-blocking framed byte channel.
pub trait Channel: Send {
    /// Sends one frame. An error means the peer is gone (`MR_ABORTED`
    /// territory).
    fn send(&mut self, frame: Bytes) -> io::Result<()>;

    /// Receives one frame if available: `Ok(Some)` frame, `Ok(None)`
    /// nothing yet, `Err` connection dead.
    fn try_recv(&mut self) -> io::Result<Option<Bytes>>;

    /// True once the peer has closed.
    fn is_closed(&self) -> bool;
}

/// In-process channel endpoint built on crossbeam queues.
pub struct InProcChannel {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    closed: bool,
}

/// Creates a connected pair of in-process channels.
pub fn pair() -> (InProcChannel, InProcChannel) {
    let (atx, arx) = unbounded();
    let (btx, brx) = unbounded();
    (
        InProcChannel {
            tx: atx,
            rx: brx,
            closed: false,
        },
        InProcChannel {
            tx: btx,
            rx: arx,
            closed: false,
        },
    )
}

impl Channel for InProcChannel {
    fn send(&mut self, frame: Bytes) -> io::Result<()> {
        self.tx
            .send(frame)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))
    }

    fn try_recv(&mut self) -> io::Result<Option<Bytes>> {
        match self.rx.try_recv() {
            Ok(frame) => Ok(Some(frame)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => {
                self.closed = true;
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))
            }
        }
    }

    fn is_closed(&self) -> bool {
        self.closed
    }
}

/// A non-blocking TCP channel with incremental frame reassembly.
pub struct TcpChannel {
    stream: TcpStream,
    inbox: Vec<u8>,
    closed: bool,
}

impl TcpChannel {
    /// Wraps a stream, switching it to non-blocking mode.
    pub fn new(stream: TcpStream) -> io::Result<TcpChannel> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(TcpChannel {
            stream,
            inbox: Vec::new(),
            closed: false,
        })
    }

    /// Connects to an address and wraps the stream.
    pub fn connect(addr: &str) -> io::Result<TcpChannel> {
        TcpChannel::new(TcpStream::connect(addr)?)
    }

    fn pump(&mut self) -> io::Result<()> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.closed = true;
                    return Ok(());
                }
                Ok(n) => self.inbox.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.closed = true;
                    return Err(e);
                }
            }
        }
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, frame: Bytes) -> io::Result<()> {
        // Writes block briefly if the socket buffer fills; frames are small
        // enough that this mirrors GDB's progress guarantees in practice.
        self.stream.set_nonblocking(false)?;
        let header = (frame.len() as u32).to_be_bytes();
        let result = self
            .stream
            .write_all(&header)
            .and_then(|_| self.stream.write_all(&frame));
        self.stream.set_nonblocking(true)?;
        result
    }

    fn try_recv(&mut self) -> io::Result<Option<Bytes>> {
        self.pump()?;
        if self.inbox.len() < 4 {
            return if self.closed && self.inbox.is_empty() {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))
            } else {
                Ok(None)
            };
        }
        let len = u32::from_be_bytes(self.inbox[..4].try_into().expect("4 bytes")) as usize;
        if self.inbox.len() < 4 + len {
            return Ok(None);
        }
        let frame = Bytes::copy_from_slice(&self.inbox[4..4 + len]);
        self.inbox.drain(..4 + len);
        Ok(Some(frame))
    }

    fn is_closed(&self) -> bool {
        self.closed
    }
}

/// Blocks (with spinning politeness) until a frame arrives or `tries`
/// polls have elapsed — the client-side convenience for request/response
/// exchanges and for tests.
pub fn recv_blocking(chan: &mut dyn Channel, tries: u32) -> io::Result<Bytes> {
    for i in 0..tries {
        if let Some(frame) = chan.try_recv()? {
            return Ok(frame);
        }
        if i > 10 {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
    Err(io::Error::new(io::ErrorKind::TimedOut, "no frame"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn inproc_round_trip() {
        let (mut a, mut b) = pair();
        a.send(Bytes::from_static(b"hello")).unwrap();
        a.send(Bytes::from_static(b"world")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"world"));
        assert_eq!(b.try_recv().unwrap(), None);
        b.send(Bytes::from_static(b"back")).unwrap();
        assert_eq!(a.try_recv().unwrap().unwrap(), Bytes::from_static(b"back"));
    }

    #[test]
    fn inproc_detects_disconnect() {
        let (mut a, b) = pair();
        drop(b);
        assert!(a.send(Bytes::from_static(b"x")).is_err());
        assert!(a.try_recv().is_err());
        assert!(a.is_closed());
    }

    #[test]
    fn tcp_round_trip_with_partial_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut c = TcpChannel::connect(&addr.to_string()).unwrap();
            c.send(Bytes::from_static(b"ping")).unwrap();
            recv_blocking(&mut c, 1_000_000).unwrap()
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpChannel::new(stream).unwrap();
        let got = recv_blocking(&mut server, 1_000_000).unwrap();
        assert_eq!(got, Bytes::from_static(b"ping"));
        server.send(Bytes::from_static(b"pong")).unwrap();
        assert_eq!(client.join().unwrap(), Bytes::from_static(b"pong"));
    }

    #[test]
    fn tcp_multiple_frames_in_one_read() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut c = TcpChannel::connect(&addr.to_string()).unwrap();
            for i in 0..10u8 {
                c.send(Bytes::copy_from_slice(&[i; 3])).unwrap();
            }
            // Keep the socket open until the reader is done.
            std::thread::sleep(std::time::Duration::from_millis(100));
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpChannel::new(stream).unwrap();
        for i in 0..10u8 {
            let frame = recv_blocking(&mut server, 1_000_000).unwrap();
            assert_eq!(frame, Bytes::copy_from_slice(&[i; 3]));
        }
        sender.join().unwrap();
    }

    #[test]
    fn tcp_detects_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let c = TcpChannel::connect(&addr.to_string()).unwrap();
            drop(c);
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpChannel::new(stream).unwrap();
        t.join().unwrap();
        // Eventually the read side reports the close.
        let mut saw_close = false;
        for _ in 0..1_000_000 {
            match server.try_recv() {
                Err(_) => {
                    saw_close = true;
                    break;
                }
                Ok(None) if server.is_closed() => {
                    saw_close = true;
                    break;
                }
                Ok(_) => {}
            }
        }
        assert!(saw_close);
    }
}
