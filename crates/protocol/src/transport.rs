//! Framed transports: an in-process channel pair and non-blocking TCP.
//!
//! The Moira server "runs as a single UNIX process … GDB, through the use
//! of BSD UNIX non-blocking I/O, allows the programmer to set up a single
//! process server which handles multiple simultaneous TCP connections"
//! (§5.4). The [`Channel`] trait exposes exactly the non-blocking
//! operations a readiness-driven server loop needs: `try_recv` never
//! blocks, `send` queues a frame into a **bounded-by-contract outbox**,
//! and `flush` opportunistically drains that outbox without ever blocking.
//!
//! Backpressure contract: `send` never blocks and never drops — it queues.
//! The *server* bounds memory by watching [`Channel::queued_bytes`]
//! against [`Channel::write_cap`] and pausing read interest for
//! connections whose peers stop draining replies (see
//! `moira-core::server`). Slow consumers therefore experience latency,
//! not disconnection, and the server's per-connection memory stays
//! bounded by `write_cap` plus one in-flight reply batch.
//!
//! Reactor visibility: every channel can expose a readiness fd via
//! [`Channel::raw_fd`] — the socket itself for TCP, a wake-pipe for
//! in-process channels (each queued frame is accompanied by a wake byte,
//! so a `polling::Poller` sees in-proc traffic exactly like socket
//! traffic). Channels without an fd (non-Unix builds) return `None` and
//! the server falls back to scanning them each wake-up.
//!
//! Frames are length-prefixed: `u32` big-endian payload length, then the
//! payload (a [`crate::wire`] encoding). Headers announcing more than
//! [`MAX_FRAME_LEN`] bytes are a protocol violation and poison the
//! connection — this bounds the *inbox* the same way `write_cap` bounds
//! the outbox.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};

/// Raw readiness fd (mirrors `std::os::unix::io::RawFd`; meaningless and
/// never produced off Unix).
pub type RawFd = i32;

/// Hard ceiling on a single frame's payload. A length prefix above this
/// is treated as a malformed/hostile header and kills the connection
/// rather than letting one peer balloon the server's reassembly buffer.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Default per-connection outbox cap in bytes. Above this the server
/// pauses the connection's read interest until the peer drains below the
/// low-water mark (`cap / 2`).
pub const DEFAULT_WRITE_CAP: usize = 256 * 1024;

/// A bidirectional, non-blocking framed byte channel.
pub trait Channel: Send {
    /// Queues one frame for the peer and opportunistically flushes. An
    /// error means the peer is gone (`MR_ABORTED` territory); a full OS
    /// buffer is *not* an error — the bytes wait in the outbox.
    fn send(&mut self, frame: Bytes) -> io::Result<()>;

    /// Receives one frame if available: `Ok(Some)` frame, `Ok(None)`
    /// nothing yet, `Err` connection dead.
    fn try_recv(&mut self) -> io::Result<Option<Bytes>>;

    /// True once the peer has closed.
    fn is_closed(&self) -> bool;

    /// Readiness fd for reactor registration, if this transport has one.
    fn raw_fd(&self) -> Option<RawFd> {
        None
    }

    /// Drains as much queued output as the OS will take without blocking.
    /// `Ok(true)` when the outbox is empty, `Ok(false)` when bytes remain
    /// (write interest should stay registered), `Err` when the peer died.
    fn flush(&mut self) -> io::Result<bool> {
        Ok(true)
    }

    /// Bytes queued toward the peer and not yet accepted by the OS (TCP)
    /// or consumed by the peer (in-proc). The backpressure signal.
    fn queued_bytes(&self) -> usize {
        0
    }

    /// The outbox high-water mark this channel advertises to the server.
    fn write_cap(&self) -> usize {
        usize::MAX
    }

    /// Overrides the outbox high-water mark (tests and benches).
    fn set_write_cap(&mut self, _cap: usize) {}
}

#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// In-process channel endpoint built on crossbeam queues, with a
/// Unix-socket wake pipe so a reactor can watch it like a TCP peer.
pub struct InProcChannel {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    closed: bool,
    /// Bytes we queued that the peer has not consumed yet.
    out_depth: Arc<AtomicUsize>,
    /// Bytes the peer queued that we have not consumed yet (their
    /// `out_depth`); decremented by our `try_recv`.
    in_depth: Arc<AtomicUsize>,
    write_cap: usize,
    /// Readable whenever the peer has queued frames for us.
    #[cfg(unix)]
    wake_rx: UnixStream,
    /// Writing one byte here marks the peer's `wake_rx` readable.
    #[cfg(unix)]
    wake_tx: UnixStream,
}

/// Creates a connected pair of in-process channels.
pub fn pair() -> (InProcChannel, InProcChannel) {
    let (atx, arx) = unbounded();
    let (btx, brx) = unbounded();
    let a_depth = Arc::new(AtomicUsize::new(0));
    let b_depth = Arc::new(AtomicUsize::new(0));
    #[cfg(unix)]
    let ((a_wake_rx, a_wake_tx), (b_wake_rx, b_wake_tx)) = {
        let a = UnixStream::pair().expect("socketpair");
        let b = UnixStream::pair().expect("socketpair");
        for s in [&a.0, &a.1, &b.0, &b.1] {
            s.set_nonblocking(true).expect("nonblocking socketpair");
        }
        (a, b)
    };
    (
        InProcChannel {
            tx: atx,
            rx: brx,
            closed: false,
            out_depth: a_depth.clone(),
            in_depth: b_depth.clone(),
            write_cap: DEFAULT_WRITE_CAP,
            #[cfg(unix)]
            wake_rx: a_wake_rx,
            #[cfg(unix)]
            wake_tx: b_wake_tx,
        },
        InProcChannel {
            tx: btx,
            rx: arx,
            closed: false,
            out_depth: b_depth,
            in_depth: a_depth,
            write_cap: DEFAULT_WRITE_CAP,
            #[cfg(unix)]
            wake_rx: b_wake_rx,
            #[cfg(unix)]
            wake_tx: a_wake_tx,
        },
    )
}

impl InProcChannel {
    /// Drains pending wake bytes. EOF here only means the peer endpoint
    /// was dropped — queued frames must still drain, so closure is
    /// detected via the crossbeam queue, never via the wake pipe.
    #[cfg(unix)]
    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(n) if n > 0 => continue,
                _ => break,
            }
        }
    }
}

impl Channel for InProcChannel {
    fn send(&mut self, frame: Bytes) -> io::Result<()> {
        let len = frame.len();
        self.tx
            .send(frame)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))?;
        self.out_depth.fetch_add(len, Ordering::Relaxed);
        // Wake the peer's reactor. WouldBlock means the pipe already holds
        // unconsumed wake bytes, so the peer is provably waking anyway;
        // any other failure means the peer endpoint is mid-teardown and
        // the Disconnected path will report it.
        #[cfg(unix)]
        {
            let _ = self.wake_tx.write(&[1]);
        }
        Ok(())
    }

    fn try_recv(&mut self) -> io::Result<Option<Bytes>> {
        match self.rx.try_recv() {
            Ok(frame) => {
                self.in_depth.fetch_sub(frame.len(), Ordering::Relaxed);
                Ok(Some(frame))
            }
            Err(TryRecvError::Empty) => {
                // The queue looked empty: retire the wake bytes observed so
                // far, then re-check. A peer that enqueues after the drain
                // writes its wake byte after it too (send orders queue
                // push before wake), so no wake-up can be lost.
                #[cfg(unix)]
                self.drain_wake();
                match self.rx.try_recv() {
                    Ok(frame) => {
                        self.in_depth.fetch_sub(frame.len(), Ordering::Relaxed);
                        Ok(Some(frame))
                    }
                    Err(TryRecvError::Empty) => Ok(None),
                    Err(TryRecvError::Disconnected) => {
                        self.closed = true;
                        Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))
                    }
                }
            }
            Err(TryRecvError::Disconnected) => {
                self.closed = true;
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))
            }
        }
    }

    fn is_closed(&self) -> bool {
        self.closed
    }

    fn raw_fd(&self) -> Option<RawFd> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            Some(self.wake_rx.as_raw_fd())
        }
        #[cfg(not(unix))]
        None
    }

    fn queued_bytes(&self) -> usize {
        self.out_depth.load(Ordering::Relaxed)
    }

    fn write_cap(&self) -> usize {
        self.write_cap
    }

    fn set_write_cap(&mut self, cap: usize) {
        self.write_cap = cap.max(1);
    }
}

/// A non-blocking TCP channel with incremental frame reassembly on the
/// read side and an elastic outbox on the write side.
pub struct TcpChannel {
    stream: TcpStream,
    inbox: Vec<u8>,
    /// Encoded (header + payload) bytes the OS has not accepted yet.
    outbox: VecDeque<u8>,
    closed: bool,
    write_cap: usize,
}

impl TcpChannel {
    /// Wraps a stream, switching it to non-blocking mode.
    pub fn new(stream: TcpStream) -> io::Result<TcpChannel> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(TcpChannel {
            stream,
            inbox: Vec::new(),
            outbox: VecDeque::new(),
            closed: false,
            write_cap: DEFAULT_WRITE_CAP,
        })
    }

    /// Connects to an address and wraps the stream.
    pub fn connect(addr: &str) -> io::Result<TcpChannel> {
        TcpChannel::new(TcpStream::connect(addr)?)
    }

    fn pump(&mut self) -> io::Result<()> {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.closed = true;
                    return Ok(());
                }
                Ok(n) => self.inbox.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.closed = true;
                    return Err(e);
                }
            }
        }
    }
}

impl Channel for TcpChannel {
    fn send(&mut self, frame: Bytes) -> io::Result<()> {
        if self.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"));
        }
        self.outbox
            .extend((frame.len() as u32).to_be_bytes().iter().copied());
        self.outbox.extend(frame.iter().copied());
        // Opportunistic drain; leftovers wait for write readiness.
        self.flush().map(|_| ())
    }

    fn try_recv(&mut self) -> io::Result<Option<Bytes>> {
        self.pump()?;
        if self.inbox.len() < 4 {
            return if self.closed && self.inbox.is_empty() {
                Err(io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))
            } else {
                Ok(None)
            };
        }
        let len = u32::from_be_bytes(self.inbox[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_LEN {
            self.closed = true;
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame header announces {len} bytes (cap {MAX_FRAME_LEN})"),
            ));
        }
        if self.inbox.len() < 4 + len {
            return Ok(None);
        }
        let frame = Bytes::copy_from_slice(&self.inbox[4..4 + len]);
        self.inbox.drain(..4 + len);
        Ok(Some(frame))
    }

    fn is_closed(&self) -> bool {
        self.closed
    }

    fn raw_fd(&self) -> Option<RawFd> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            Some(self.stream.as_raw_fd())
        }
        #[cfg(not(unix))]
        None
    }

    fn flush(&mut self) -> io::Result<bool> {
        while !self.outbox.is_empty() {
            let (front, _) = self.outbox.as_slices();
            match self.stream.write(front) {
                Ok(0) => {
                    self.closed = true;
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "peer closed"));
                }
                Ok(n) => {
                    self.outbox.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.closed = true;
                    return Err(e);
                }
            }
        }
        Ok(true)
    }

    fn queued_bytes(&self) -> usize {
        self.outbox.len()
    }

    fn write_cap(&self) -> usize {
        self.write_cap
    }

    fn set_write_cap(&mut self, cap: usize) {
        self.write_cap = cap.max(1);
    }
}

/// Blocks (with spinning politeness) until a frame arrives or `tries`
/// polls have elapsed — the client-side convenience for request/response
/// exchanges and for tests. Also keeps flushing the channel's outbox so a
/// request queued by a non-blocking `send` actually reaches the wire
/// while we wait for the reply.
pub fn recv_blocking(chan: &mut dyn Channel, tries: u32) -> io::Result<Bytes> {
    for i in 0..tries {
        if chan.queued_bytes() > 0 {
            chan.flush()?;
        }
        if let Some(frame) = chan.try_recv()? {
            return Ok(frame);
        }
        if i > 10 {
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
    }
    Err(io::Error::new(io::ErrorKind::TimedOut, "no frame"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn inproc_round_trip() {
        let (mut a, mut b) = pair();
        a.send(Bytes::from_static(b"hello")).unwrap();
        a.send(Bytes::from_static(b"world")).unwrap();
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(b.try_recv().unwrap().unwrap(), Bytes::from_static(b"world"));
        assert_eq!(b.try_recv().unwrap(), None);
        b.send(Bytes::from_static(b"back")).unwrap();
        assert_eq!(a.try_recv().unwrap().unwrap(), Bytes::from_static(b"back"));
    }

    #[test]
    fn inproc_detects_disconnect() {
        let (mut a, b) = pair();
        drop(b);
        assert!(a.send(Bytes::from_static(b"x")).is_err());
        assert!(a.try_recv().is_err());
        assert!(a.is_closed());
    }

    #[test]
    fn inproc_drains_queued_frames_after_peer_drop() {
        // Frames sent before the peer endpoint dropped must still arrive;
        // wake-pipe EOF is not the closure signal.
        let (mut a, mut b) = pair();
        a.send(Bytes::from_static(b"last words")).unwrap();
        drop(a);
        assert_eq!(
            b.try_recv().unwrap().unwrap(),
            Bytes::from_static(b"last words")
        );
        assert!(b.try_recv().is_err());
        assert!(b.is_closed());
    }

    #[cfg(unix)]
    #[test]
    fn inproc_wake_fd_tracks_queued_frames() {
        let (mut a, mut b) = pair();
        let fd = b.raw_fd().expect("in-proc channels expose a wake fd");
        let poller = polling::Poller::new().unwrap();
        poller.add(fd, polling::Event::readable(1)).unwrap();
        let mut events = polling::Events::new();

        // Idle: nothing readable.
        let n = poller
            .wait(&mut events, Some(std::time::Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0);

        a.send(Bytes::from_static(b"wake up")).unwrap();
        assert_eq!(a.queued_bytes(), 7);
        let n = poller
            .wait(&mut events, Some(std::time::Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1, "a queued frame marks the wake fd readable");

        // Draining the frame retires the wake byte and the depth counter.
        assert!(b.try_recv().unwrap().is_some());
        assert_eq!(b.try_recv().unwrap(), None);
        assert_eq!(a.queued_bytes(), 0);
        let n = poller
            .wait(&mut events, Some(std::time::Duration::from_millis(0)))
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn tcp_round_trip_with_partial_frames() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut c = TcpChannel::connect(&addr.to_string()).unwrap();
            c.send(Bytes::from_static(b"ping")).unwrap();
            recv_blocking(&mut c, 1_000_000).unwrap()
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpChannel::new(stream).unwrap();
        let got = recv_blocking(&mut server, 1_000_000).unwrap();
        assert_eq!(got, Bytes::from_static(b"ping"));
        server.send(Bytes::from_static(b"pong")).unwrap();
        while !server.flush().unwrap() {}
        assert_eq!(client.join().unwrap(), Bytes::from_static(b"pong"));
    }

    #[test]
    fn tcp_multiple_frames_in_one_read() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut c = TcpChannel::connect(&addr.to_string()).unwrap();
            for i in 0..10u8 {
                c.send(Bytes::copy_from_slice(&[i; 3])).unwrap();
            }
            while !c.flush().unwrap() {}
            // Keep the socket open until the reader is done.
            std::thread::sleep(std::time::Duration::from_millis(100));
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpChannel::new(stream).unwrap();
        for i in 0..10u8 {
            let frame = recv_blocking(&mut server, 1_000_000).unwrap();
            assert_eq!(frame, Bytes::copy_from_slice(&[i; 3]));
        }
        sender.join().unwrap();
    }

    #[test]
    fn tcp_detects_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let c = TcpChannel::connect(&addr.to_string()).unwrap();
            drop(c);
        });
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpChannel::new(stream).unwrap();
        t.join().unwrap();
        // Eventually the read side reports the close.
        let mut saw_close = false;
        for _ in 0..1_000_000 {
            match server.try_recv() {
                Err(_) => {
                    saw_close = true;
                    break;
                }
                Ok(None) if server.is_closed() => {
                    saw_close = true;
                    break;
                }
                Ok(_) => {}
            }
        }
        assert!(saw_close);
    }

    #[test]
    fn tcp_outbox_queues_past_socket_buffer_and_drains() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpChannel::new(stream).unwrap();

        // Queue far more than loopback socket buffers hold; send must not
        // block and the overflow must land in the outbox.
        let frame = Bytes::from(vec![0xabu8; 512 * 1024]);
        for _ in 0..16 {
            server.send(frame.clone()).unwrap();
        }
        assert!(
            server.queued_bytes() > 0,
            "8 MiB cannot fit in the socket buffer; the outbox must hold the rest"
        );

        // A draining peer lets flush retire the outbox completely.
        let reader = std::thread::spawn(move || {
            let mut c = TcpChannel::new(client).unwrap();
            let mut total = 0usize;
            while total < 16 * 512 * 1024 {
                total += recv_blocking(&mut c, 10_000_000).unwrap().len();
            }
            total
        });
        for _ in 0..10_000_000 {
            if server.flush().unwrap() {
                break;
            }
        }
        assert_eq!(server.queued_bytes(), 0);
        assert_eq!(reader.join().unwrap(), 16 * 512 * 1024);
    }

    #[test]
    fn tcp_rejects_oversized_frame_header() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut raw = TcpStream::connect(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpChannel::new(stream).unwrap();

        // A hostile header claiming a 2 GiB frame must poison the
        // connection instead of growing the inbox toward it.
        raw.write_all(&(2u32 << 30).to_be_bytes()).unwrap();
        raw.flush().unwrap();
        let mut saw_reject = false;
        for _ in 0..1_000_000 {
            match server.try_recv() {
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::InvalidData);
                    saw_reject = true;
                    break;
                }
                Ok(None) => {}
                Ok(Some(_)) => panic!("bogus frame must not materialize"),
            }
        }
        assert!(saw_reject);
        assert!(server.is_closed());
    }

    #[test]
    fn write_cap_is_advertised_not_enforced_by_send() {
        // send never drops or errors on a full outbox; the cap is the
        // server's signal to stop *reading* from this peer.
        let (mut a, _b) = pair();
        a.set_write_cap(8);
        for _ in 0..4 {
            a.send(Bytes::from_static(b"0123456789")).unwrap();
        }
        assert_eq!(a.queued_bytes(), 40);
        assert!(a.queued_bytes() > a.write_cap());
    }
}
