#![warn(missing_docs)]

//! The Moira RPC protocol (§5.3).
//!
//! "The Moira protocol is a remote procedure call protocol layered on top
//! of TCP/IP… Each request consists of a major request number, and several
//! counted strings of bytes. Each reply consists of a single number (an
//! error code) followed by zero or more 'tuples' … Requests and replies
//! also contain a version number, to allow clean handling of version skew."
//!
//! The paper left the byte-level encoding "not yet specified"; this crate
//! pins one down:
//!
//! ```text
//! frame   := u32  length of payload (big-endian) | payload
//! request := u16 version | u8 major | u16 argc | argc × counted
//! reply   := i32 code    | u16 fieldc          | fieldc × counted
//! counted := u32 length | bytes
//! ```
//!
//! Tuple streaming follows the paper exactly: each retrieved tuple is sent
//! as its own reply with code `MR_MORE_DATA`, and the final reply carries
//! the overall status with no fields.
//!
//! [`transport`] supplies the two channel types the rest of the system
//! uses: an in-process pair (crossbeam channels) and a non-blocking TCP
//! stream — the latter is what lets the server stay a single UNIX process
//! handling many simultaneous connections, as GDB did for the original.

pub mod transport;
pub mod wire;

pub use transport::{pair, Channel, InProcChannel, TcpChannel};
pub use wire::{MajorRequest, Reply, Request, CURRENT_VERSION};
