//! Request/reply encoding: versioned major requests with counted byte
//! strings, and streamed tuple replies.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use moira_common::errors::MrError;

/// Protocol version spoken by this implementation.
pub const CURRENT_VERSION: u16 = 2;

/// Oldest client version the server still accepts.
pub const MIN_VERSION: u16 = 1;

/// Upper bound on a single counted string (1 MiB) — SUN RPC was rejected
/// for *small* limits; ours is generous but bounded against deathgrams.
pub const MAX_FIELD_LEN: usize = 1 << 20;

/// Upper bound on fields per message.
pub const MAX_FIELDS: usize = 4096;

/// The five major requests of §5.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MajorRequest {
    /// Do nothing — for testing and profiling of the RPC layer.
    Noop,
    /// Authenticate: one argument, a Kerberos authenticator bundle.
    Auth,
    /// Run a predefined query: name then arguments.
    Query,
    /// Check access to a query without running it.
    Access,
    /// Ask the server to spawn a DCM immediately.
    TriggerDcm,
}

impl MajorRequest {
    /// Wire number.
    pub fn code(self) -> u8 {
        match self {
            MajorRequest::Noop => 0,
            MajorRequest::Auth => 1,
            MajorRequest::Query => 2,
            MajorRequest::Access => 3,
            MajorRequest::TriggerDcm => 4,
        }
    }

    /// Parses a wire number.
    pub fn from_code(code: u8) -> Option<MajorRequest> {
        Some(match code {
            0 => MajorRequest::Noop,
            1 => MajorRequest::Auth,
            2 => MajorRequest::Query,
            3 => MajorRequest::Access,
            4 => MajorRequest::TriggerDcm,
            _ => return None,
        })
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Protocol version of the sender.
    pub version: u16,
    /// Major request number.
    pub major: MajorRequest,
    /// Counted byte-string arguments.
    pub args: Vec<Bytes>,
}

impl Request {
    /// Builds a current-version request with string arguments.
    pub fn new(major: MajorRequest, args: &[&str]) -> Request {
        Request {
            version: CURRENT_VERSION,
            major,
            args: args
                .iter()
                .map(|s| Bytes::copy_from_slice(s.as_bytes()))
                .collect(),
        }
    }

    /// Encodes to a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u16(self.version);
        buf.put_u8(self.major.code());
        buf.put_u16(self.args.len() as u16);
        for arg in &self.args {
            buf.put_u32(arg.len() as u32);
            buf.put_slice(arg);
        }
        buf.freeze()
    }

    /// Decodes a frame payload.
    pub fn decode(mut payload: Bytes) -> Result<Request, MrError> {
        if payload.remaining() < 5 {
            return Err(MrError::Internal);
        }
        let version = payload.get_u16();
        let major = MajorRequest::from_code(payload.get_u8()).ok_or(MrError::UnknownProc)?;
        let argc = payload.get_u16() as usize;
        if argc > MAX_FIELDS {
            return Err(MrError::ArgTooLong);
        }
        let args = decode_counted(&mut payload, argc)?;
        if payload.has_remaining() {
            return Err(MrError::Internal);
        }
        Ok(Request {
            version,
            major,
            args,
        })
    }

    /// Arguments as UTF-8 strings; `MR_BAD_CHAR` on invalid UTF-8.
    pub fn string_args(&self) -> Result<Vec<String>, MrError> {
        self.args
            .iter()
            .map(|b| String::from_utf8(b.to_vec()).map_err(|_| MrError::BadChar))
            .collect()
    }
}

/// A server reply: a status code and the fields of one tuple.
///
/// A query result is a *sequence* of replies: one per tuple with code
/// `MR_MORE_DATA`, then a final fieldless reply carrying the overall
/// status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// `com_err` status code; `MR_MORE_DATA` marks a tuple reply.
    pub code: i32,
    /// Tuple fields (empty on final replies).
    pub fields: Vec<Bytes>,
}

impl Reply {
    /// A final reply with a status and no tuple.
    pub fn status(code: i32) -> Reply {
        Reply {
            code,
            fields: Vec::new(),
        }
    }

    /// A tuple-carrying reply (code `MR_MORE_DATA`).
    pub fn tuple(fields: &[String]) -> Reply {
        Reply {
            code: MrError::MoreData.code(),
            fields: fields
                .iter()
                .map(|s| Bytes::copy_from_slice(s.as_bytes()))
                .collect(),
        }
    }

    /// True if this reply signals that more tuples follow.
    pub fn is_more_data(&self) -> bool {
        self.code == MrError::MoreData.code()
    }

    /// Encodes to a frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_i32(self.code);
        buf.put_u16(self.fields.len() as u16);
        for f in &self.fields {
            buf.put_u32(f.len() as u32);
            buf.put_slice(f);
        }
        buf.freeze()
    }

    /// Decodes a frame payload.
    pub fn decode(mut payload: Bytes) -> Result<Reply, MrError> {
        if payload.remaining() < 6 {
            return Err(MrError::Internal);
        }
        let code = payload.get_i32();
        let fieldc = payload.get_u16() as usize;
        if fieldc > MAX_FIELDS {
            return Err(MrError::ArgTooLong);
        }
        let fields = decode_counted(&mut payload, fieldc)?;
        if payload.has_remaining() {
            return Err(MrError::Internal);
        }
        Ok(Reply { code, fields })
    }

    /// Fields as UTF-8 strings.
    pub fn string_fields(&self) -> Result<Vec<String>, MrError> {
        self.fields
            .iter()
            .map(|b| String::from_utf8(b.to_vec()).map_err(|_| MrError::BadChar))
            .collect()
    }
}

fn decode_counted(payload: &mut Bytes, count: usize) -> Result<Vec<Bytes>, MrError> {
    let mut out = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        if payload.remaining() < 4 {
            return Err(MrError::Internal);
        }
        let len = payload.get_u32() as usize;
        if len > MAX_FIELD_LEN {
            return Err(MrError::ArgTooLong);
        }
        if payload.remaining() < len {
            return Err(MrError::Internal);
        }
        out.push(payload.split_to(len));
    }
    Ok(out)
}

/// Version-skew check performed by the server on each request (§5.3).
pub fn check_version(version: u16) -> Result<(), MrError> {
    if version < MIN_VERSION {
        Err(MrError::VersionLow)
    } else if version > CURRENT_VERSION {
        Err(MrError::VersionHigh)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let req = Request::new(MajorRequest::Query, &["get_user_by_login", "babette"]);
        let decoded = Request::decode(req.encode()).unwrap();
        assert_eq!(decoded, req);
        assert_eq!(
            decoded.string_args().unwrap(),
            vec!["get_user_by_login".to_owned(), "babette".to_owned()]
        );
    }

    #[test]
    fn empty_args_ok() {
        let req = Request::new(MajorRequest::Noop, &[]);
        assert_eq!(Request::decode(req.encode()).unwrap().args.len(), 0);
    }

    #[test]
    fn binary_args_survive() {
        let mut req = Request::new(MajorRequest::Auth, &[]);
        req.args.push(Bytes::from_static(&[0u8, 255, 13, 10, 0]));
        let decoded = Request::decode(req.encode()).unwrap();
        assert_eq!(decoded.args[0], Bytes::from_static(&[0u8, 255, 13, 10, 0]));
        assert!(decoded.string_args().is_err());
    }

    #[test]
    fn reply_round_trip() {
        let r = Reply::tuple(&["babette".into(), "6530".into(), "/bin/csh".into()]);
        let decoded = Reply::decode(r.encode()).unwrap();
        assert!(decoded.is_more_data());
        assert_eq!(decoded.string_fields().unwrap()[2], "/bin/csh");
        let s = Reply::status(0);
        assert_eq!(Reply::decode(s.encode()).unwrap(), s);
    }

    #[test]
    fn truncated_frames_rejected() {
        let req = Request::new(MajorRequest::Query, &["q", "arg"]);
        let enc = req.encode();
        for cut in 1..enc.len() {
            assert!(Request::decode(enc.slice(..cut)).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = BytesMut::from(&Request::new(MajorRequest::Noop, &[]).encode()[..]);
        bytes.put_u8(7);
        assert!(Request::decode(bytes.freeze()).is_err());
    }

    #[test]
    fn unknown_major_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16(CURRENT_VERSION);
        buf.put_u8(99);
        buf.put_u16(0);
        assert_eq!(Request::decode(buf.freeze()), Err(MrError::UnknownProc));
    }

    #[test]
    fn oversize_field_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u16(CURRENT_VERSION);
        buf.put_u8(0);
        buf.put_u16(1);
        buf.put_u32((MAX_FIELD_LEN + 1) as u32);
        assert_eq!(Request::decode(buf.freeze()), Err(MrError::ArgTooLong));
    }

    #[test]
    fn version_skew() {
        assert!(check_version(CURRENT_VERSION).is_ok());
        assert!(check_version(MIN_VERSION).is_ok());
        assert_eq!(check_version(0), Err(MrError::VersionLow));
        assert_eq!(
            check_version(CURRENT_VERSION + 1),
            Err(MrError::VersionHigh)
        );
    }

    #[test]
    fn major_codes_round_trip() {
        for m in [
            MajorRequest::Noop,
            MajorRequest::Auth,
            MajorRequest::Query,
            MajorRequest::Access,
            MajorRequest::TriggerDcm,
        ] {
            assert_eq!(MajorRequest::from_code(m.code()), Some(m));
        }
        assert_eq!(MajorRequest::from_code(200), None);
    }
}
