//! Property-based tests for the wire protocol: arbitrary payload round
//! trips and decoder robustness against arbitrary bytes.

use bytes::Bytes;
use moira_protocol::wire::{MajorRequest, Reply, Request, CURRENT_VERSION};
use proptest::prelude::*;

fn major() -> impl Strategy<Value = MajorRequest> {
    prop_oneof![
        Just(MajorRequest::Noop),
        Just(MajorRequest::Auth),
        Just(MajorRequest::Query),
        Just(MajorRequest::Access),
        Just(MajorRequest::TriggerDcm),
    ]
}

proptest! {
    #[test]
    fn requests_round_trip(
        m in major(),
        version in 0u16..8,
        args in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 0..12),
    ) {
        let request = Request {
            version,
            major: m,
            args: args.into_iter().map(Bytes::from).collect(),
        };
        prop_assert_eq!(Request::decode(request.encode()).unwrap(), request);
    }

    #[test]
    fn replies_round_trip(
        code in any::<i32>(),
        fields in prop::collection::vec(".{0,32}", 0..10),
    ) {
        let reply = Reply {
            code,
            fields: fields.iter().map(|f| Bytes::copy_from_slice(f.as_bytes())).collect(),
        };
        let decoded = Reply::decode(reply.encode()).unwrap();
        prop_assert_eq!(decoded.string_fields().unwrap(), fields);
        prop_assert_eq!(decoded.code, code);
    }

    /// The decoder never panics and never accepts trailing garbage.
    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = Request::decode(Bytes::from(bytes.clone()));
        let _ = Reply::decode(Bytes::from(bytes));
    }

    /// Truncating any valid frame always fails cleanly.
    #[test]
    fn truncation_always_rejected(
        args in prop::collection::vec("[a-z]{0,16}", 1..6),
        cut_at in any::<prop::sample::Index>(),
    ) {
        let refs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        let request = Request::new(MajorRequest::Query, &refs);
        let encoded = request.encode();
        let cut = cut_at.index(encoded.len().max(1));
        if cut < encoded.len() {
            prop_assert!(Request::decode(encoded.slice(..cut)).is_err());
        }
        prop_assert_eq!(request.version, CURRENT_VERSION);
    }

    /// Truncated replies fail cleanly too — a frame cut short by a lossy
    /// link must surface as a decode error, never a panic or a bogus reply
    /// with extra fields.
    #[test]
    fn truncated_reply_rejected(
        code in any::<i32>(),
        fields in prop::collection::vec("[a-z]{0,16}", 1..6),
        cut_at in any::<prop::sample::Index>(),
    ) {
        let reply = Reply {
            code,
            fields: fields.iter().map(|f| Bytes::copy_from_slice(f.as_bytes())).collect(),
        };
        let encoded = reply.encode();
        let cut = cut_at.index(encoded.len().max(1));
        if cut < encoded.len() {
            prop_assert!(Reply::decode(encoded.slice(..cut)).is_err());
        }
    }

    /// Flipping any single byte of a valid frame never panics the decoder:
    /// it either rejects the frame or decodes *some* well-formed value
    /// (e.g. a flipped payload byte), but never tears.
    #[test]
    fn corrupted_frames_decode_totally(
        args in prop::collection::vec("[a-z]{1,16}", 1..6),
        index in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let refs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        let mut bytes = Request::new(MajorRequest::Query, &refs).encode().to_vec();
        let i = index.index(bytes.len());
        bytes[i] ^= flip;
        if let Ok(decoded) = Request::decode(Bytes::from(bytes.clone())) {
            // Whatever decoded must re-encode without loss.
            prop_assert_eq!(Request::decode(decoded.encode()).unwrap(), decoded);
        }
        let _ = Reply::decode(Bytes::from(bytes));
    }
}
