//! Disaster recovery vs the generator caches (§5.2.2 meets incremental
//! generation): rebuilding the database from an mrbackup dump plus journal
//! replay gives the state a new epoch, so every cached generator build must
//! be invalidated — the next DCM pass takes the full-rebuild path and never
//! serves a stale cached archive. Also: an *incremental* (delta-built,
//! manifest-pushed) update must converge across a faulty network just like
//! a full push does.

use moira_core::state::{Caller, MoiraState};
use moira_dcm::retry::RetryPolicy;
use moira_sim::{Deployment, PopulationSpec};

/// The installed Hesiod passwd.db on `host`, if any.
fn hesiod_passwd(d: &Deployment, host: &str) -> Option<Vec<u8>> {
    d.hosts[host]
        .lock()
        .read_file("/var/hesiod/passwd.db")
        .map(|b| b.to_vec())
}

fn add_user(d: &Deployment, login: &str, uid: &str) {
    let mut s = d.state.write();
    d.registry
        .execute(
            &mut s,
            &Caller::root("ops"),
            "add_user",
            &[
                login.into(),
                uid.into(),
                "/bin/csh".into(),
                "Last".into(),
                "First".into(),
                "".into(),
                "1".into(),
                "x".into(),
                "1990".into(),
            ],
        )
        .unwrap();
}

#[test]
fn restore_and_replay_invalidates_generator_caches() {
    let mut d = Deployment::build(&PopulationSpec::small());
    d.run_dcm_once(); // warm every generator cache and install baselines
    let full_before = d.dcm.stats.full_rebuilds;

    // Nightly backup, then a journaled mutation the dump does not contain.
    d.run_nightly_backup();
    d.advance(60);
    add_user(&d, "reborn", "7777");

    // Simulated server loss: rebuild the state from the newest on-line
    // backup generation plus a replay of the journal tail, exactly the
    // §5.2.2 recovery procedure. The Dcm keeps its cached builds across
    // the swap — they now describe a database that no longer exists.
    let replay: Vec<(String, String, Vec<String>)> = {
        let s = d.state.read();
        s.journal
            .since(d.last_backup)
            .map(|e| (e.who.clone(), e.query.clone(), e.args.clone()))
            .collect()
    };
    assert!(
        !replay.is_empty(),
        "the add_user landed in the journal tail"
    );
    let mut fresh = MoiraState::new(d.clock.clone());
    let mut db = moira_db::Database::new(d.clock.clone());
    moira_core::schema::create_all_tables(&mut db);
    moira_db::backup::mrrestore(&mut db, &d.backups.generations()[0]).unwrap();
    fresh.db = db;
    for (who, query, args) in &replay {
        d.registry
            .execute(&mut fresh, &Caller::root(who), query, args)
            .unwrap();
    }
    *d.state.write() = fresh;

    d.advance(25 * 3600);
    let report = d.run_dcm_once();

    // The restored epoch invalidated every cursor: no delta path, no stale
    // cache — every regenerated service went through the full fallback.
    assert!(
        d.dcm.stats.full_rebuilds > full_before,
        "restore must force full rebuilds, got {} then {}",
        full_before,
        d.dcm.stats.full_rebuilds
    );
    assert!(
        report.generated.iter().any(|(s, _, _)| s == "HESIOD"),
        "replayed user changes hesiod output: {report:?}"
    );
    let host = d.population.hesiod_servers[0].clone();
    let passwd = hesiod_passwd(&d, &host).expect("hesiod installed");
    assert!(
        String::from_utf8_lossy(&passwd).contains("reborn"),
        "host received the replayed user, not a stale cached archive"
    );
}

#[test]
fn incremental_push_converges_over_flaky_link() {
    let mut d = Deployment::build(&PopulationSpec::small());
    d.run_dcm_once(); // baseline full push, caches warm
    let victim = d.population.hesiod_servers[0].clone();

    // A delta-sized change, pushed through a link dropping a third of its
    // legs: the manifest handshake's partial transfer must retry to
    // convergence exactly like the legacy whole-archive push did.
    add_user(&d, "deltau", "7676");
    d.net.set_drop_prob(&victim, 0.35);
    d.dcm.set_retry_policy(RetryPolicy {
        escalate_after: u32::MAX,
        ..RetryPolicy::default()
    });
    let mut passes = 0;
    loop {
        d.advance(25 * 3600);
        d.run_dcm_once();
        let installed = hesiod_passwd(&d, &victim)
            .map(|p| String::from_utf8_lossy(&p).contains("deltau"))
            .unwrap_or(false);
        if installed {
            break;
        }
        passes += 1;
        assert!(passes < 60, "incremental push never converged");
    }
    assert!(
        d.dcm.stats.delta_builds >= 1,
        "the converged push was delta-built: {:?}",
        d.dcm.stats
    );
    assert!(d.net.stats().drops > 0, "the flake actually fired");

    // Heal and verify the converged file matches a fault-free oracle.
    d.net.set_drop_prob(&victim, 0.0);
    let mut oracle = Deployment::build(&PopulationSpec::small());
    oracle.run_dcm_once();
    add_user(&oracle, "deltau", "7676");
    oracle.advance(25 * 3600);
    oracle.run_dcm_once();
    assert_eq!(
        hesiod_passwd(&d, &victim),
        hesiod_passwd(&oracle, &victim),
        "faulty-link convergence matches the fault-free run byte for byte"
    );
}
