//! The network-fault convergence matrix (E8's integration-level half).
//!
//! Each test injects one class of network fault through the deployment's
//! [`NetFabric`], lets the DCM retry under the unified backoff policy, and
//! asserts *convergence*: the final installed files match what a fault-free
//! run produces, with no torn files and no unbounded retry storm.

use moira_client::MoiraConn;
use moira_dcm::retry::RetryPolicy;
use moira_dcm::update::UpdateError;
use moira_sim::{Deployment, PopulationSpec};

/// The installed Hesiod passwd.db on `host`, if any.
fn hesiod_passwd(d: &Deployment, host: &str) -> Option<Vec<u8>> {
    d.hosts[host]
        .lock()
        .read_file("/var/hesiod/passwd.db")
        .map(|b| b.to_vec())
}

/// Every enabled serverhost reports success.
fn converged(d: &Deployment) -> bool {
    let s = d.state.read();
    let t = s.db.table("serverhosts");
    let all_ok = t.iter().all(|(row, _)| {
        !t.cell(row, "enable").as_bool()
            || t.cell(row, "service").as_str() == "POP"
            || t.cell(row, "success").as_bool()
    });
    all_ok
}

/// What a fault-free run installs — the convergence target. Deployment
/// construction is deterministic, so a second build is a valid oracle.
fn fault_free_passwd() -> Vec<u8> {
    let mut d = Deployment::build(&PopulationSpec::small());
    d.run_dcm_once();
    let host = d.population.hesiod_servers[0].clone();
    hesiod_passwd(&d, &host).expect("fault-free run installs hesiod")
}

#[test]
fn partition_during_transfer_converges_after_heal() {
    let mut d = Deployment::build(&PopulationSpec::small());
    let victim = d.population.hesiod_servers[0].clone();
    d.net.partition(&victim);
    let report = d.run_dcm_once();
    let failure = report
        .updates
        .iter()
        .find(|(_, h, _)| h == &victim)
        .expect("partitioned host attempted");
    assert_eq!(
        failure.2,
        Err(UpdateError::HostDown),
        "partition = host down"
    );
    assert!(
        hesiod_passwd(&d, &victim).is_none(),
        "nothing crossed the partition"
    );
    assert!(!converged(&d));
    // Heal; the soft-failure retry converges to the fault-free state.
    d.net.heal(&victim);
    d.advance(25 * 3600);
    d.run_dcm_once();
    assert!(converged(&d));
    assert_eq!(hesiod_passwd(&d, &victim).unwrap(), fault_free_passwd());
}

#[test]
fn drop_heavy_flaky_link_converges_through_the_flake() {
    let mut d = Deployment::build(&PopulationSpec::small());
    let victim = d.population.hesiod_servers[0].clone();
    // A link losing a third of its legs, never healed. Escalation is
    // raised out of the way: this test is about the retry loop itself.
    d.net.set_drop_prob(&victim, 0.35);
    d.dcm.set_retry_policy(RetryPolicy {
        escalate_after: u32::MAX,
        ..RetryPolicy::default()
    });
    let mut passes = 0;
    loop {
        d.run_dcm_once();
        if converged(&d) {
            break;
        }
        passes += 1;
        assert!(passes < 60, "flaky link never converged");
        d.advance(25 * 3600);
    }
    assert_eq!(
        hesiod_passwd(&d, &victim).unwrap(),
        fault_free_passwd(),
        "converged state matches the fault-free run exactly"
    );
    let stats = d.net.stats();
    assert!(stats.drops > 0, "the flake actually fired: {stats:?}");
}

#[test]
fn partition_healing_mid_run_needs_no_operator() {
    let mut d = Deployment::build(&PopulationSpec::small());
    let victim = d.population.hesiod_servers[0].clone();
    let now = d.clock.now();
    // The partition heals by itself while the DCM is still retrying.
    d.net.partition_until(&victim, now + 30 * 3600);
    d.run_dcm_once();
    assert!(!converged(&d));
    d.advance(25 * 3600); // still partitioned
    d.run_dcm_once();
    assert!(!converged(&d), "partition still up at +25h");
    d.advance(25 * 3600); // now past +30h: healed
    d.run_dcm_once();
    assert!(
        converged(&d),
        "healed partition converges without any reset"
    );
    assert_eq!(hesiod_passwd(&d, &victim).unwrap(), fault_free_passwd());
}

#[test]
fn escalation_pages_operator_when_partition_outlives_the_streak() {
    let mut d = Deployment::build(&PopulationSpec::small());
    let victim = d.population.hesiod_servers[0].clone();
    d.net.partition(&victim);
    d.dcm.set_retry_policy(RetryPolicy {
        base_secs: 60,
        max_secs: 3600,
        jitter_frac: 0.0,
        escalate_after: 3,
        per_run_budget: usize::MAX,
    });
    for _ in 0..6 {
        d.run_dcm_once();
        d.advance(2 * 3600);
    }
    assert_eq!(d.dcm.stats.escalations, 1);
    assert!(
        d.dcm
            .notices
            .iter()
            .any(|n| n.kind == "mail" && n.message.contains("escalated after 3")),
        "operator mailed about the stuck host"
    );
    // hosterror now gates the host: no more attempts pile onto the dead
    // link, however long the outage lasts.
    let before = d.dcm.stats.updates_attempted;
    for _ in 0..4 {
        d.advance(25 * 3600);
        d.run_dcm_once();
    }
    assert_eq!(d.dcm.stats.updates_attempted, before, "no retry storm");
}

#[test]
fn backoff_gate_reduces_attempts_versus_naive_retry() {
    // The same permanent outage, driven through the same cron cadence,
    // under the naive retry-every-pass policy and under the backoff gate.
    let attempts_under = |policy: RetryPolicy| -> u64 {
        let mut d = Deployment::build(&PopulationSpec::small());
        let victim = d.population.hesiod_servers[0].clone();
        d.net.partition(&victim);
        d.dcm.set_retry_policy(policy);
        for _ in 0..12 {
            d.run_dcm_once();
            d.advance(3600);
        }
        d.dcm.stats.updates_attempted
    };
    let naive = attempts_under(RetryPolicy {
        base_secs: 0,
        max_secs: 0,
        jitter_frac: 0.0,
        escalate_after: u32::MAX,
        per_run_budget: usize::MAX,
    });
    let gated = attempts_under(RetryPolicy {
        escalate_after: u32::MAX,
        ..RetryPolicy::default()
    });
    assert!(
        gated < naive,
        "backoff gate must reduce attempts: gated={gated} naive={naive}"
    );
}

#[test]
fn overloaded_server_is_client_visible_and_recoverable() {
    use moira_common::errors::MrError;
    use moira_core::server::standard_server;

    // A server with no dispatch budget sheds every request with the
    // distinct Busy status; clients see it, not a hang or a vague abort.
    let (mut server, _, _) = standard_server(moira_common::VClock::new());
    server.set_overload_limit(Some(0));
    let thread = moira_client::ServerThread::spawn(server);
    let mut client = thread.connect();
    client.set_busy_retry(1, 0);
    assert_eq!(client.noop(), Err(MrError::Busy));
    drop(thread);

    // Under a tight but non-zero budget, concurrent clients retrying with
    // backoff all make it through the contention.
    let (mut server, state, _) = standard_server(moira_common::VClock::new());
    {
        let mut s = state.write();
        let uid = moira_core::queries::testutil::add_test_user(&mut s, "ops", 1);
        s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
            .unwrap();
    }
    server.set_overload_limit(Some(1));
    let thread = std::sync::Arc::new(moira_client::ServerThread::spawn(server));
    let workers: Vec<_> = (0..4)
        .map(|i| {
            let thread = thread.clone();
            std::thread::spawn(move || {
                let mut client = thread.connect();
                client.set_busy_retry(64, 1);
                client.auth("ops", &format!("w{i}")).unwrap();
                for j in 0..3 {
                    client
                        .query(
                            "add_machine",
                            &[&format!("BOX-{i}-{j}"), "VAX"],
                            &mut |_| {},
                        )
                        .unwrap();
                }
                client.busy_resends
            })
        })
        .collect();
    let resends: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let machines = {
        let s = state.read();
        s.db.table("machine")
            .select(&moira_db::Pred::Like("name", "BOX-*".into()))
            .len()
    };
    assert_eq!(machines, 12, "every shed request eventually landed");
    // Informational: contention may or may not have produced sheds, but
    // the accounting must be consistent either way.
    let _ = resends;
}
