//! Kill -9 / resurrect: the durable server restarts without losing the
//! delta-DCM machinery.
//!
//! The property under test is the tentpole claim: recovery restores the
//! database *epoch* and per-row generation counters, so the DCM's cached
//! generation cursors (cut before the crash) remain valid and the first
//! post-restart cycle ships incremental patches — not full rebuilds, not
//! full member transfers.

use moira_core::state::Caller;
use moira_db::storage::GroupCommitConfig;
use moira_sim::{Deployment, PopulationSpec};

/// Every append fsyncs; no automatic snapshots (the initial seal is
/// enough for these scenarios).
fn eager_cfg() -> GroupCommitConfig {
    GroupCommitConfig {
        flush_interval_secs: 0,
        flush_bytes: 1,
        snapshot_every: 0,
    }
}

fn change_shell(d: &Deployment, login: &str, shell: &str) {
    let mut s = d.state.write();
    d.registry
        .execute(
            &mut s,
            &Caller::root("ops"),
            "update_user_shell",
            &[login.into(), shell.into()],
        )
        .expect("shell update");
}

#[test]
fn post_restart_dcm_cycle_ships_patches_not_fulls() {
    let mut d = Deployment::build(&PopulationSpec::small());
    d.enable_durable_storage(eager_cfg());
    d.run_dcm_once(); // baseline full push; generator caches + cursors warm
    let full_rebuilds_before = d.dcm.stats.full_rebuilds;

    // A ~1% mutation: a few users change shells.
    d.advance(60);
    let n = (d.population.active_logins.len() / 100).max(1);
    let victims: Vec<String> = d.population.active_logins[..n].to_vec();
    for login in &victims {
        change_shell(&d, login, "/bin/walsh");
    }
    let epoch_before = d.state.read().db.epoch();
    let journal_before = d.state.read().journal.len();

    // kill -9, then boot the replacement from WAL + snapshot.
    d.crash_server();
    let report = d.recover_server(eager_cfg());
    assert!(report.recovered);
    assert!(
        report.replayed > 0,
        "the shell changes were replayed from the WAL: {report:?}"
    );
    assert_eq!(report.scan.torn_tail_truncations, 0, "clean shutdown tail");
    {
        let s = d.state.read();
        assert_eq!(s.db.epoch(), epoch_before, "epoch survives the restart");
        assert_eq!(s.journal.len(), journal_before, "no committed change lost");
        let snap = s.obs.snapshot();
        assert!(
            snap.counter("db.wal.recovered_frames") > 0,
            "recovery telemetry surfaced in the new registry"
        );
    }

    // First post-restart cycle: cursors cut before the crash are still
    // valid, so every regenerated service takes the delta path and every
    // transferred member goes out as a patch.
    d.advance(25 * 3600);
    let cycle = d.run_dcm_once();
    assert!(
        cycle.generated.iter().any(|(s, _, _)| s == "HESIOD"),
        "the shell change regenerated hesiod: {cycle:?}"
    );
    assert_eq!(
        d.dcm.stats.full_rebuilds, full_rebuilds_before,
        "no generator fell back to a full rebuild after recovery"
    );
    let snap = d.state.read().obs.snapshot();
    assert!(
        snap.counter("dcm.transfer.patch_members") > 0,
        "post-restart cycle shipped patches: {:?}",
        snap.counters
    );
    assert_eq!(
        snap.counter("dcm.transfer.full_members"),
        0,
        "no member needed a full transfer: {:?}",
        snap.counters
    );

    // And the patched bits are real: the hesiod host serves the new shell.
    let host = d.population.hesiod_servers[0].clone();
    let passwd = d.hosts[&host]
        .lock()
        .read_file("/var/hesiod/passwd.db")
        .expect("hesiod installed")
        .to_vec();
    assert!(
        String::from_utf8_lossy(&passwd).contains("/bin/walsh"),
        "host received the recovered-and-patched shell change"
    );
}

/// Nothing fsyncs until the group-commit policy says so; a crash then
/// loses the buffered tail — but never a prefix, and never consistency.
#[test]
fn unflushed_commits_die_with_the_crash_but_recovery_is_consistent() {
    let lazy = GroupCommitConfig {
        flush_interval_secs: 3600,
        flush_bytes: usize::MAX,
        snapshot_every: 0,
    };
    let mut d = Deployment::build(&PopulationSpec::small());
    d.enable_durable_storage(lazy);
    let login = d.population.active_logins[0].clone();

    change_shell(&d, &login, "/bin/durable");
    d.state.write().storage.flush().expect("explicit flush");
    d.advance(60);
    change_shell(&d, &login, "/bin/volatile");
    // No flush: the second change is buffered in the WAL only.
    assert_eq!(d.state.read().storage.pending_entries(), 1);

    d.crash_server();
    let report = d.recover_server(lazy);
    assert_eq!(report.replayed, 1, "only the fsynced change survived");
    let s = d.state.read();
    let row =
        s.db.table("users")
            .select_one(&moira_db::Pred::Eq("login", login.into()))
            .expect("user recovered");
    assert_eq!(
        s.db.cell("users", row, "shell").render(),
        "/bin/durable",
        "the durable prefix, exactly"
    );
}
