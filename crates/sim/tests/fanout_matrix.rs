//! The adversarial fault matrix for the hierarchical fan-out tier: relay
//! crash mid-fan-out, a relay with a poisoned stale cursor, a whole rack
//! partitioned and healing after the cycle, a straggler three generations
//! behind, and a black-holed host that must not stall the pool.
//!
//! Every scenario asserts *how* convergence happened — plan-time versus
//! transfer-time deferrals through `dcm.fanout.*`, and the patch/full
//! byte split through the tiered `dcm.transfer.{origin,relay}.*`
//! counters — not just that it happened.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use moira_dcm::host::SimHost;
use moira_dcm::net::{NetFault, Network};
use moira_dcm::relay::RackTopology;
use moira_dcm::retry::RetryPolicy;
use moira_dcm::update::UpdateError;
use moira_sim::{Deployment, PopulationSpec};
use parking_lot::Mutex;

/// Fast deterministic retries with escalation out of the way: the matrix
/// is about the fan-out tier, not the backoff/escalation ladder.
fn quick_retry() -> RetryPolicy {
    RetryPolicy {
        base_secs: 1,
        max_secs: 8,
        jitter_frac: 0.0,
        escalate_after: u32::MAX,
        per_run_budget: usize::MAX,
    }
}

/// One rack holding every Hesiod server, wired into the DCM (and, when
/// `fabric` is set, into the net fabric's fault domains). Returns the
/// sorted member names: index 0 is the relay the election will pick.
fn rack_the_hesiods(d: &mut Deployment, width: usize, fabric: bool) -> Vec<String> {
    let mut names = d.population.hesiod_servers.clone();
    names.sort();
    let mut topo = RackTopology::new();
    topo.add_rack("r0", names.iter().cloned());
    if fabric {
        for n in &names {
            d.net.assign_rack(n, "r0");
        }
    }
    d.dcm.set_topology(topo);
    d.dcm.set_fanout_width(width);
    d.dcm.set_retry_policy(quick_retry());
    names
}

fn set_shell(d: &Deployment, login: &str, shell: &str) {
    let mut s = d.state.write();
    d.registry
        .execute(
            &mut s,
            &moira_core::state::Caller::root("t"),
            "update_user_shell",
            &[login.to_string(), shell.to_string()],
        )
        .unwrap();
}

fn counter(d: &Deployment, name: &str) -> u64 {
    d.state.read().obs.snapshot().counter(name)
}

/// Install-relevant files of one host (staging/backup artifacts record the
/// history of attempts, not the converged state).
fn files_of(d: &Deployment, host: &str) -> Vec<(String, Vec<u8>)> {
    let mut h = d.hosts[host].lock();
    let mut files: Vec<(String, Vec<u8>)> = h
        .files_mut()
        .iter()
        .filter(|(name, _)| !name.contains(".moira_backup") && !name.contains(".moira_update"))
        .map(|(name, data)| (name.clone(), data.clone()))
        .collect();
    files.sort();
    files
}

fn hesiod_updates(report: &moira_dcm::dcm::DcmReport) -> Vec<(String, Result<(), UpdateError>)> {
    report
        .updates
        .iter()
        .filter(|(svc, _, _)| svc == "HESIOD")
        .map(|(_, h, r)| (h.clone(), *r))
        .collect()
}

/// A fabric wrapper that downs the rack relay the moment the fan-out
/// reaches its second leaf — the relay dies *mid*-fan-out, after its own
/// wave-1 update and one leaf have already succeeded.
struct RelayKiller {
    inner: Arc<moira_sim::NetFabric>,
    relay: Arc<Mutex<SimHost>>,
    leaves: HashSet<String>,
    armed: AtomicBool,
    seen: Mutex<HashSet<String>>,
}

impl Network for RelayKiller {
    fn connect(&self, host: &str) -> Result<(), NetFault> {
        if self.armed.load(Ordering::SeqCst) && self.leaves.contains(host) {
            let mut seen = self.seen.lock();
            seen.insert(host.to_owned());
            if seen.len() == 2 {
                self.relay.lock().up = false;
                self.armed.store(false, Ordering::SeqCst);
            }
        }
        self.inner.connect(host)
    }

    fn transmit(&self, host: &str, len: usize) -> Result<(), NetFault> {
        self.inner.transmit(host, len)
    }
}

#[test]
fn relay_crash_mid_fanout_defers_remaining_leaves_then_patches() {
    let mut d = Deployment::build(&PopulationSpec {
        hesiod_servers: 4,
        ..PopulationSpec::small()
    });
    // Width 1 makes the leg order deterministic: relay wave, then leaves
    // one at a time.
    let names = rack_the_hesiods(&mut d, 1, false);
    let relay = names[0].clone();
    d.run_dcm_once();
    assert!(hesiod_updates(&d.dcm.run_once()).is_empty(), "converged");

    let killer = Arc::new(RelayKiller {
        inner: d.net.clone(),
        relay: d.hosts[&relay].clone(),
        leaves: names[1..].iter().cloned().collect(),
        armed: AtomicBool::new(true),
        seen: Mutex::new(HashSet::new()),
    });
    d.dcm.set_network(killer);

    let login = d.population.active_logins[0].clone();
    set_shell(&d, &login, "/bin/crash-cycle");
    d.advance(25 * 3600);
    let deferrals = d.dcm.stats.relay_deferrals;
    let leg_relay = counter(&d, "dcm.retry.leg.relay");
    let deferred = counter(&d, "dcm.fanout.relay_deferred");
    let report = d.run_dcm_once();

    // Relay + two leaves landed before the crash; the last leaf was
    // refused at its relay gate and charged to the "relay" leg.
    let updates = hesiod_updates(&report);
    assert_eq!(updates.len(), 4, "{updates:?}");
    let failed: Vec<_> = updates.iter().filter(|(_, r)| r.is_err()).collect();
    assert_eq!(failed.len(), 1, "{updates:?}");
    assert_eq!(failed[0].1, Err(UpdateError::HostDown), "soft, retried");
    assert_ne!(failed[0].0, relay, "the relay itself finished first");
    assert_eq!(d.dcm.stats.relay_deferrals, deferrals + 1);
    assert_eq!(counter(&d, "dcm.retry.leg.relay"), leg_relay + 1);
    assert_eq!(counter(&d, "dcm.fanout.relay_deferred"), deferred + 1);

    // The relay reboots with its files intact; the deferred leaf recovers
    // by patch — its cursor base still matches what it holds.
    d.hosts[&relay].lock().reboot();
    d.advance(60);
    let patch = counter(&d, "dcm.transfer.relay.patch_members");
    let full = counter(&d, "dcm.transfer.relay.full_members");
    let report = d.run_dcm_once();
    assert!(
        hesiod_updates(&report).iter().all(|(_, r)| r.is_ok()),
        "{report:?}"
    );
    assert!(counter(&d, "dcm.transfer.relay.patch_members") > patch);
    assert_eq!(counter(&d, "dcm.transfer.relay.full_members"), full);
    for n in &names[1..] {
        assert_eq!(files_of(&d, n), files_of(&d, &relay), "{n} diverged");
    }
}

#[test]
fn stale_relay_cursor_falls_back_to_full_and_repairs_itself() {
    let mut d = Deployment::build(&PopulationSpec {
        hesiod_servers: 2,
        ..PopulationSpec::small()
    });
    let names = rack_the_hesiods(&mut d, 2, false);
    let (relay, leaf) = (names[0].clone(), names[1].clone());
    d.run_dcm_once();
    let base0 = d
        .dcm
        .cursors()
        .base("HESIOD", &leaf)
        .expect("cursor cut on first converge");

    let login = d.population.active_logins[0].clone();
    set_shell(&d, &login, "/bin/gen-one");
    d.advance(25 * 3600);
    d.run_dcm_once();
    let gen1 = d.dcm.cursors().generation("HESIOD", &leaf).unwrap();

    // Poison the leaf's cursor: right generation, wrong base archive —
    // the store believes the leaf still holds generation-zero bytes.
    d.dcm.cursors_mut().force("HESIOD", &leaf, gen1, base0);

    set_shell(&d, &login, "/bin/gen-two");
    d.advance(25 * 3600);
    let origin_patch = counter(&d, "dcm.transfer.origin.patch_members");
    let relay_patch = counter(&d, "dcm.transfer.relay.patch_members");
    let relay_full = counter(&d, "dcm.transfer.relay.full_members");
    let report = d.run_dcm_once();
    assert!(
        hesiod_updates(&report).iter().all(|(_, r)| r.is_ok()),
        "{report:?}"
    );

    // The relay's own cursor was honest: it patched. The leaf's base CRC
    // no longer matched the poisoned base, so the protocol shipped the
    // member whole — wrong cursor costs bytes, never correctness.
    assert!(counter(&d, "dcm.transfer.origin.patch_members") > origin_patch);
    assert_eq!(counter(&d, "dcm.transfer.relay.patch_members"), relay_patch);
    assert!(counter(&d, "dcm.transfer.relay.full_members") > relay_full);
    assert_eq!(files_of(&d, &leaf), files_of(&d, &relay));
    let gen2 = d.dcm.cursors().generation("HESIOD", &leaf).unwrap();
    assert!(gen2 > gen1, "the confirmed install repaired the cursor");
}

#[test]
fn partitioned_rack_defers_leaves_at_plan_time_and_heals_by_patch() {
    let mut d = Deployment::build(&PopulationSpec {
        hesiod_servers: 5,
        ..PopulationSpec::small()
    });
    let names = rack_the_hesiods(&mut d, 4, true);
    d.run_dcm_once();

    let login = d.population.active_logins[0].clone();
    set_shell(&d, &login, "/bin/partitioned");
    d.advance(25 * 3600);
    d.net.partition_rack("r0");
    let deferrals = d.dcm.stats.relay_deferrals;
    let deferred = counter(&d, "dcm.fanout.relay_deferred");
    let report = d.run_dcm_once();

    // The relay's origin leg failed against the rack's dead uplink, so
    // every leaf was deferred at plan time: no prepare, no report entry,
    // no retry charge — one failed leg stands for the whole rack.
    let updates = hesiod_updates(&report);
    assert_eq!(
        updates.len(),
        1,
        "only the relay was attempted: {updates:?}"
    );
    assert_eq!(updates[0].1, Err(UpdateError::HostDown));
    assert_eq!(d.dcm.stats.relay_deferrals, deferrals + 4);
    assert_eq!(counter(&d, "dcm.fanout.relay_deferred"), deferred + 4);

    // The rack heals after the cycle; everything converges by patch.
    d.net.heal_rack("r0");
    d.advance(60);
    let origin_patch = counter(&d, "dcm.transfer.origin.patch_members");
    let relay_patch = counter(&d, "dcm.transfer.relay.patch_members");
    let origin_full = counter(&d, "dcm.transfer.origin.full_members");
    let relay_full = counter(&d, "dcm.transfer.relay.full_members");
    let report = d.run_dcm_once();
    let updates = hesiod_updates(&report);
    assert_eq!(updates.len(), 5, "{updates:?}");
    assert!(updates.iter().all(|(_, r)| r.is_ok()), "{updates:?}");
    assert!(counter(&d, "dcm.transfer.origin.patch_members") > origin_patch);
    assert!(counter(&d, "dcm.transfer.relay.patch_members") > relay_patch);
    assert_eq!(counter(&d, "dcm.transfer.origin.full_members"), origin_full);
    assert_eq!(counter(&d, "dcm.transfer.relay.full_members"), relay_full);
    for n in &names[1..] {
        assert_eq!(files_of(&d, n), files_of(&d, &names[0]), "{n} diverged");
    }
}

#[test]
fn straggler_three_generations_behind_catches_up_with_one_patch() {
    let mut d = Deployment::build(&PopulationSpec {
        hesiod_servers: 4,
        ..PopulationSpec::small()
    });
    let names = rack_the_hesiods(&mut d, 4, false);
    let straggler = names.last().unwrap().clone();
    d.run_dcm_once();
    let gen0 = d.dcm.cursors().generation("HESIOD", &straggler).unwrap();

    // Three generations pass while the straggler's own link is dead; the
    // rest of the rack tracks every one of them.
    d.net.partition(&straggler);
    for (i, login) in d.population.active_logins[..3].to_vec().iter().enumerate() {
        set_shell(&d, login, &format!("/bin/gen-{i}"));
        d.advance(25 * 3600);
        let report = d.run_dcm_once();
        let updates = hesiod_updates(&report);
        for (host, result) in &updates {
            if host == &straggler {
                assert!(result.is_err(), "partitioned: {updates:?}");
            } else {
                assert!(result.is_ok(), "{updates:?}");
            }
        }
        assert_eq!(
            d.dcm.cursors().generation("HESIOD", &straggler),
            Some(gen0),
            "no confirmation, no cursor movement"
        );
    }

    // Heal: its cursor still describes exactly what it holds, so three
    // generations of drift cross as one line patch, not a full archive.
    d.net.heal(&straggler);
    d.advance(60);
    let patch = counter(&d, "dcm.transfer.patch_members");
    let full = counter(&d, "dcm.transfer.full_members");
    let report = d.run_dcm_once();
    assert!(
        hesiod_updates(&report).iter().all(|(_, r)| r.is_ok()),
        "{report:?}"
    );
    assert!(counter(&d, "dcm.transfer.patch_members") > patch);
    assert_eq!(counter(&d, "dcm.transfer.full_members"), full);
    assert_eq!(files_of(&d, &straggler), files_of(&d, &names[0]));
    assert!(d.dcm.cursors().generation("HESIOD", &straggler).unwrap() > gen0);
}

/// A network where one host swallows connections for a long real-world
/// beat while every healthy leg takes a short one — the shape of a
/// black-holed host stalling a serial scan.
struct BlackHole {
    victim: String,
}

impl Network for BlackHole {
    fn connect(&self, host: &str) -> Result<(), NetFault> {
        if host == self.victim {
            std::thread::sleep(Duration::from_millis(200));
            return Err(NetFault::TimedOut);
        }
        std::thread::sleep(Duration::from_millis(4));
        Ok(())
    }

    fn transmit(&self, _host: &str, _len: usize) -> Result<(), NetFault> {
        std::thread::sleep(Duration::from_millis(4));
        Ok(())
    }
}

#[test]
fn black_holed_host_cannot_stall_the_cycle_past_one_budget() {
    use moira_core::queries::testutil::{add_test_machine, state_with_admin};
    use moira_core::registry::Registry;
    use moira_core::state::Caller;
    use moira_dcm::dcm::Dcm;

    let (mut s, _) = state_with_admin("ops");
    let registry = Arc::new(Registry::standard());
    let ops = Caller::new("ops", "test");
    let run = |s: &mut moira_core::state::MoiraState, q: &str, args: &[&str]| {
        let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
        registry.execute(s, &ops, q, &args).unwrap()
    };
    run(
        &mut s,
        "add_server_info",
        &[
            "HESIOD",
            "360",
            "/tmp/hesiod.out",
            "restart-hesiod",
            "UNIQUE",
            "1",
            "NONE",
            "NONE",
        ],
    );
    let names: Vec<String> = (0..17).map(|k| format!("BH{k:02}.MIT.EDU")).collect();
    for name in &names {
        add_test_machine(&mut s, name);
        run(
            &mut s,
            "add_server_host_info",
            &["HESIOD", name, "1", "0", "0", ""],
        );
    }
    run(
        &mut s,
        "add_user",
        &[
            "babette", "6530", "/bin/csh", "F", "H", "C", "1", "x", "1990",
        ],
    );
    let state = moira_core::state::shared(s);
    let mut dcm = Dcm::new(state.clone(), registry);
    dcm.set_retry_policy(quick_retry());
    let victim = names[3].clone();
    dcm.set_network(Arc::new(BlackHole {
        victim: victim.clone(),
    }));
    dcm.set_fanout_width(8);
    let hosts: Vec<Arc<Mutex<SimHost>>> = names
        .iter()
        .map(|n| Arc::new(Mutex::new(SimHost::new(n))))
        .collect();
    for h in &hosts {
        dcm.add_host(h.clone());
    }

    // Serially this cycle costs 16 healthy hosts × 7 × 4 ms plus the
    // victim's 200 ms timeout ≈ 650 ms. With an 8-wide pool the victim's
    // budget overlaps the healthy legs instead of adding to them.
    let start = Instant::now();
    let report = dcm.run_once();
    let wall = start.elapsed();

    let (ok, failed): (Vec<_>, Vec<_>) = report.updates.iter().partition(|(_, _, r)| r.is_ok());
    assert_eq!(ok.len(), 16, "every healthy host updated: {report:?}");
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].1, victim);
    assert_eq!(failed[0].2, Err(UpdateError::Timeout), "one budget, shed");
    assert!(
        wall < Duration::from_millis(480),
        "one black hole must not serialize the cycle: {wall:?}"
    );
    // The overlap is also visible in the instruments: wall-clock spent in
    // the fan-out is strictly less than the sum of its legs.
    let snap = state.read().obs.snapshot();
    assert!(snap.counter("dcm.fanout.wall_ns") < snap.counter("dcm.fanout.legs_ns_total"));
}
