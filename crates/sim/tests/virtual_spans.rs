//! The obs `Clock` seam under simulation: stage spans recorded inside a
//! deployment measure *virtual* seconds, not wall-clock nanoseconds.

use moira_common::errors::MrResult;
use moira_common::VClock;
use moira_core::state::MoiraState;
use moira_dcm::generators::{incremental, Generator};
use moira_dcm::Archive;
use moira_sim::deployment::Deployment;
use moira_sim::population::PopulationSpec;

/// A generator that burns seven simulated seconds building its archive —
/// the stand-in for an expensive extraction pass.
struct SlowGenerator {
    clock: VClock,
}

impl Generator for SlowGenerator {
    fn service(&self) -> &'static str {
        "SLOW"
    }

    fn depends_on(&self) -> &'static [&'static str] {
        &["users"]
    }

    fn generate(&self, _state: &MoiraState, _value3: &str) -> MrResult<Archive> {
        self.clock.advance(7);
        let mut a = Archive::new();
        a.add("slow.db", b"slow\n".to_vec())?;
        Ok(a)
    }
}

#[test]
fn stage_spans_report_simulated_durations() {
    let clock = VClock::new();
    let state = MoiraState::new(clock.clone());
    state.obs.set_virtual_clock(clock.clone());

    let generator = SlowGenerator {
        clock: clock.clone(),
    };
    let refreshed = incremental::refresh(&generator, &state, None).unwrap();
    assert!(refreshed.full, "no cache: the rebuild path runs");

    let snap = state.obs.snapshot();
    let h = snap
        .histogram("dcm.stage.section_rebuild_ns")
        .expect("rebuild span recorded");
    assert_eq!(h.count, 1);
    assert_eq!(
        h.max, 7_000_000_000,
        "seven virtual seconds, exactly — wall time never leaks in"
    );
    assert_eq!(h.p50(), 7_000_000_000);
}

#[test]
fn deployment_cycles_record_stages_in_virtual_time() {
    let mut d = Deployment::build(&PopulationSpec::small());
    d.run_dcm_once();

    let snap = d.state.read().obs.snapshot();
    let h = snap
        .histogram("dcm.stage.section_rebuild_ns")
        .expect("first cycle rebuilds every cached generator");
    assert!(h.count > 0);
    // The virtual clock does not tick during a refresh, so every span is
    // exactly zero — any positive duration means wall-clock leaked in.
    assert_eq!(h.max, 0, "virtual durations only");
    if let Some(scan) = snap.histogram("dcm.stage.delta_scan_ns") {
        assert_eq!(scan.max, 0);
    }
}
