//! The deterministic fault-injecting network fabric.
//!
//! Every DCM→host update connection (and, via [`FaultyChannel`], any
//! client→server channel) can be routed through a [`NetFabric`]: a
//! per-link table of partitions, drop probabilities, and latency, driven
//! by a seeded RNG and the shared virtual clock. The same seed and the
//! same schedule of operations produce the same faults, which is what lets
//! the E8 convergence matrix assert exact end states under partition,
//! packet loss, and healing.

use std::collections::HashMap;
use std::sync::Arc;

use moira_common::clock::VClock;
use moira_common::rng::Mt;
use moira_dcm::net::{NetFault, Network};
use moira_protocol::transport::Channel;
use parking_lot::Mutex;

/// Fault configuration of one link (Moira ↔ one named host).
#[derive(Debug, Clone, Copy, Default)]
struct LinkState {
    /// Partitioned until this virtual time (`i64::MAX` = until healed).
    partitioned_until: Option<i64>,
    /// Probability each leg is lost in transit.
    drop_prob: f64,
    /// Virtual seconds each data-bearing leg takes.
    latency_secs: i64,
}

/// Counters the fabric keeps per run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Connection attempts seen.
    pub connects: u64,
    /// Data-bearing legs seen.
    pub transmits: u64,
    /// Legs refused because the link was partitioned.
    pub partitions_hit: u64,
    /// Legs lost to the drop probability.
    pub drops: u64,
}

struct Inner {
    rng: Mt,
    links: HashMap<String, LinkState>,
    /// Per-rack fault domains: a rack's state applies to every host
    /// assigned to it, on top of the host's own link state.
    racks: HashMap<String, LinkState>,
    host_rack: HashMap<String, String>,
    stats: FabricStats,
}

/// The simulated network between Moira and every host.
pub struct NetFabric {
    clock: VClock,
    inner: Mutex<Inner>,
}

impl NetFabric {
    /// A fabric with no faults configured, rolling its drop dice from
    /// `seed`.
    pub fn new(clock: VClock, seed: u64) -> NetFabric {
        NetFabric {
            clock,
            inner: Mutex::new(Inner {
                rng: Mt::new(seed),
                links: HashMap::new(),
                racks: HashMap::new(),
                host_rack: HashMap::new(),
                stats: FabricStats::default(),
            }),
        }
    }

    /// Partitions the link to `host` until [`NetFabric::heal`].
    pub fn partition(&self, host: &str) {
        self.partition_until(host, i64::MAX);
    }

    /// Partitions the link to `host` until virtual time `until` — the
    /// partition heals by itself when the clock passes it.
    pub fn partition_until(&self, host: &str, until: i64) {
        let mut inner = self.inner.lock();
        inner
            .links
            .entry(host.to_owned())
            .or_default()
            .partitioned_until = Some(until);
    }

    /// Heals any partition on the link to `host`.
    pub fn heal(&self, host: &str) {
        let mut inner = self.inner.lock();
        if let Some(link) = inner.links.get_mut(host) {
            link.partitioned_until = None;
        }
    }

    /// Sets the probability that any leg to `host` is lost in transit.
    pub fn set_drop_prob(&self, host: &str, p: f64) {
        let mut inner = self.inner.lock();
        inner.links.entry(host.to_owned()).or_default().drop_prob = p.clamp(0.0, 1.0);
    }

    /// Sets the virtual seconds each data-bearing leg to `host` takes (the
    /// clock advances by this much per transmit).
    pub fn set_latency(&self, host: &str, secs: i64) {
        let mut inner = self.inner.lock();
        inner.links.entry(host.to_owned()).or_default().latency_secs = secs.max(0);
    }

    /// True if the link to `host` is partitioned right now (its own link
    /// or its rack's uplink).
    pub fn is_partitioned(&self, host: &str) -> bool {
        let now = self.clock.now();
        let inner = self.inner.lock();
        let gone = |l: &LinkState| l.partitioned_until.is_some_and(|until| now < until);
        inner.links.get(host).is_some_and(gone)
            || inner
                .host_rack
                .get(host)
                .and_then(|r| inner.racks.get(r))
                .is_some_and(gone)
    }

    /// Assigns `host` to rack `rack`'s fault domain (replacing any prior
    /// assignment). Rack faults stack on top of the host's own link.
    pub fn assign_rack(&self, host: &str, rack: &str) {
        let mut inner = self.inner.lock();
        inner.host_rack.insert(host.to_owned(), rack.to_owned());
        inner.racks.entry(rack.to_owned()).or_default();
    }

    /// Partitions a whole rack's uplink until [`NetFabric::heal_rack`].
    pub fn partition_rack(&self, rack: &str) {
        let mut inner = self.inner.lock();
        inner
            .racks
            .entry(rack.to_owned())
            .or_default()
            .partitioned_until = Some(i64::MAX);
    }

    /// Heals a rack's uplink.
    pub fn heal_rack(&self, rack: &str) {
        let mut inner = self.inner.lock();
        if let Some(rack) = inner.racks.get_mut(rack) {
            rack.partitioned_until = None;
        }
    }

    /// Sets the probability that any leg into `rack` is lost on the rack
    /// uplink — rolled independently of the per-host drop dice.
    pub fn set_rack_drop_prob(&self, rack: &str, p: f64) {
        let mut inner = self.inner.lock();
        inner.racks.entry(rack.to_owned()).or_default().drop_prob = p.clamp(0.0, 1.0);
    }

    /// True if `rack`'s uplink is partitioned right now.
    pub fn is_rack_partitioned(&self, rack: &str) -> bool {
        let now = self.clock.now();
        let inner = self.inner.lock();
        inner
            .racks
            .get(rack)
            .and_then(|l| l.partitioned_until)
            .is_some_and(|until| now < until)
    }

    /// The fabric's counters so far.
    pub fn stats(&self) -> FabricStats {
        self.inner.lock().stats
    }

    /// One fault roll for one leg to `host`; advances the clock by the
    /// link's latency when the leg goes through.
    fn roll(&self, host: &str, connecting: bool) -> Result<(), NetFault> {
        let now = self.clock.now();
        let mut inner = self.inner.lock();
        if connecting {
            inner.stats.connects += 1;
        } else {
            inner.stats.transmits += 1;
        }
        let link = inner.links.get(host).copied().unwrap_or_default();
        // The rack domain stacks on the host's own link. Hosts with no
        // rack (or a fault-free rack) roll exactly the dice they always
        // did, preserving seed determinism for existing schedules.
        let rack = inner
            .host_rack
            .get(host)
            .and_then(|r| inner.racks.get(r))
            .copied()
            .unwrap_or_default();
        let gone = |l: &LinkState| l.partitioned_until.is_some_and(|until| now < until);
        if gone(&link) || gone(&rack) {
            inner.stats.partitions_hit += 1;
            return Err(NetFault::Partitioned);
        }
        for prob in [link.drop_prob, rack.drop_prob] {
            if prob > 0.0 && inner.rng.chance(prob) {
                inner.stats.drops += 1;
                return Err(if connecting {
                    NetFault::TimedOut
                } else {
                    NetFault::Dropped
                });
            }
        }
        drop(inner);
        let latency = link.latency_secs + rack.latency_secs;
        if !connecting && latency > 0 {
            self.clock.advance(latency);
        }
        Ok(())
    }
}

impl Network for NetFabric {
    fn connect(&self, host: &str) -> Result<(), NetFault> {
        self.roll(host, true)
    }

    fn transmit(&self, host: &str, _len: usize) -> Result<(), NetFault> {
        self.roll(host, false)
    }
}

/// A client↔server [`Channel`] routed through the fabric as one named
/// link: partitioned links refuse sends, and lossy links silently swallow
/// frames — the sender only finds out when its per-request deadline
/// expires, exactly like a dropped TCP segment whose retransmits never
/// arrive.
pub struct FaultyChannel {
    inner: Box<dyn Channel>,
    fabric: Arc<NetFabric>,
    link: String,
}

impl FaultyChannel {
    /// Wraps `inner`, applying the fabric's faults for `link`.
    pub fn new(inner: Box<dyn Channel>, fabric: Arc<NetFabric>, link: &str) -> FaultyChannel {
        FaultyChannel {
            inner,
            fabric,
            link: link.to_owned(),
        }
    }
}

impl Channel for FaultyChannel {
    fn send(&mut self, frame: bytes::Bytes) -> std::io::Result<()> {
        match self.fabric.roll(&self.link, false) {
            Ok(()) => self.inner.send(frame),
            Err(NetFault::Partitioned) => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "link partitioned",
            )),
            // Lost in transit: the send "succeeds" but nothing arrives.
            Err(NetFault::Dropped) | Err(NetFault::TimedOut) => Ok(()),
        }
    }

    fn try_recv(&mut self) -> std::io::Result<Option<bytes::Bytes>> {
        self.inner.try_recv()
    }

    fn is_closed(&self) -> bool {
        self.inner.is_closed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_and_heal() {
        let clock = VClock::new();
        let net = NetFabric::new(clock.clone(), 1);
        assert_eq!(net.connect("A.MIT.EDU"), Ok(()));
        net.partition("A.MIT.EDU");
        assert!(net.is_partitioned("A.MIT.EDU"));
        assert_eq!(net.connect("A.MIT.EDU"), Err(NetFault::Partitioned));
        assert_eq!(net.transmit("A.MIT.EDU", 10), Err(NetFault::Partitioned));
        // Other links are unaffected.
        assert_eq!(net.connect("B.MIT.EDU"), Ok(()));
        net.heal("A.MIT.EDU");
        assert_eq!(net.connect("A.MIT.EDU"), Ok(()));
        assert_eq!(net.stats().partitions_hit, 2);
    }

    #[test]
    fn timed_partition_heals_with_the_clock() {
        let clock = VClock::new();
        let start = clock.now();
        let net = NetFabric::new(clock.clone(), 1);
        net.partition_until("A", start + 100);
        assert_eq!(net.connect("A"), Err(NetFault::Partitioned));
        clock.advance(99);
        assert_eq!(net.connect("A"), Err(NetFault::Partitioned));
        clock.advance(1);
        assert_eq!(net.connect("A"), Ok(()));
    }

    #[test]
    fn drop_probability_is_seed_deterministic() {
        let faults = |seed: u64| -> Vec<bool> {
            let net = NetFabric::new(VClock::new(), seed);
            net.set_drop_prob("A", 0.5);
            (0..32).map(|_| net.transmit("A", 1).is_err()).collect()
        };
        assert_eq!(faults(7), faults(7), "same seed, same faults");
        assert_ne!(faults(7), faults(8), "different seed, different faults");
        let hit = faults(7).iter().filter(|&&f| f).count();
        assert!((4..=28).contains(&hit), "roughly half drop: {hit}/32");
    }

    #[test]
    fn rack_fault_domain_stacks_on_host_links() {
        let clock = VClock::new();
        let net = NetFabric::new(clock.clone(), 1);
        net.assign_rack("A", "r1");
        net.assign_rack("B", "r1");
        net.assign_rack("C", "r2");
        net.partition_rack("r1");
        assert!(net.is_rack_partitioned("r1"));
        assert!(net.is_partitioned("A"), "rack partition covers members");
        assert_eq!(net.connect("A"), Err(NetFault::Partitioned));
        assert_eq!(net.connect("B"), Err(NetFault::Partitioned));
        assert_eq!(net.connect("C"), Ok(()), "other rack unaffected");
        net.heal_rack("r1");
        assert_eq!(net.connect("A"), Ok(()));
        // A host's own partition still applies inside a healthy rack.
        net.partition("B");
        assert_eq!(net.connect("B"), Err(NetFault::Partitioned));
        // Rack drop dice roll on the uplink, independent of host links.
        net.set_rack_drop_prob("r2", 1.0);
        assert!(net.transmit("C", 1).is_err());
    }

    #[test]
    fn fault_free_rack_preserves_seed_determinism() {
        // Assigning hosts to racks with no configured rack faults must not
        // consume RNG rolls: existing seeded schedules stay byte-stable.
        let faults = |racked: bool| -> Vec<bool> {
            let net = NetFabric::new(VClock::new(), 7);
            if racked {
                net.assign_rack("A", "r1");
            }
            net.set_drop_prob("A", 0.5);
            (0..32).map(|_| net.transmit("A", 1).is_err()).collect()
        };
        assert_eq!(faults(false), faults(true));
    }

    #[test]
    fn latency_advances_the_virtual_clock() {
        let clock = VClock::new();
        let start = clock.now();
        let net = NetFabric::new(clock.clone(), 1);
        net.set_latency("A", 5);
        net.transmit("A", 100).unwrap();
        net.transmit("A", 100).unwrap();
        assert_eq!(clock.now(), start + 10);
        // Connection set-up carries no payload and takes no modelled time.
        net.connect("A").unwrap();
        assert_eq!(clock.now(), start + 10);
    }

    #[test]
    fn faulty_channel_swallows_dropped_frames() {
        use moira_protocol::transport::pair;
        let fabric = Arc::new(NetFabric::new(VClock::new(), 3));
        let (client_end, mut server_end) = pair();
        let mut chan = FaultyChannel::new(Box::new(client_end), fabric.clone(), "LINK");
        chan.send(bytes::Bytes::from_static(b"one")).unwrap();
        fabric.set_drop_prob("LINK", 1.0);
        chan.send(bytes::Bytes::from_static(b"two")).unwrap();
        fabric.set_drop_prob("LINK", 0.0);
        chan.send(bytes::Bytes::from_static(b"three")).unwrap();
        let mut seen = Vec::new();
        while let Ok(Some(frame)) = server_end.try_recv() {
            seen.push(frame);
        }
        assert_eq!(seen, vec![&b"one"[..], &b"three"[..]], "\"two\" was lost");
        // A partitioned link refuses outright.
        fabric.partition("LINK");
        assert!(chan.send(bytes::Bytes::from_static(b"four")).is_err());
    }
}
