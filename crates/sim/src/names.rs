//! Deterministic name generation for the synthetic population.

use moira_common::rng::Mt;

const FIRST_NAMES: &[&str] = &[
    "Harmon", "Angela", "Gerhard", "Martin", "Peter", "Jean", "Bill", "Ken", "Mark", "Michael",
    "Sarah", "Laura", "David", "Susan", "James", "Mary", "Robert", "Linda", "John", "Patricia",
    "Carol", "Thomas", "Nancy", "Daniel", "Karen", "Paul", "Betty", "Steven", "Helen", "Kevin",
    "Diane", "Brian", "Ruth", "Edward", "Sharon", "Ronald", "Michelle", "Anthony", "Donna", "Gary",
];

const LAST_NAMES: &[&str] = &[
    "Fowler",
    "Barba",
    "Messmer",
    "Zimmermann",
    "Levine",
    "Diaz",
    "Sommerfeld",
    "Raeburn",
    "Rosenstein",
    "Gretzinger",
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Miller",
    "Davis",
    "Garcia",
    "Rodriguez",
    "Wilson",
    "Martinez",
    "Anderson",
    "Taylor",
    "Thomas",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Thompson",
    "White",
    "Harris",
    "Clark",
    "Lewis",
    "Robinson",
    "Walker",
    "Hall",
    "Allen",
    "Young",
    "King",
    "Wright",
    "Scott",
    "Green",
    "Adams",
    "Baker",
    "Nelson",
    "Hill",
    "Campbell",
    "Mitchell",
    "Roberts",
    "Carter",
    "Phillips",
    "Evans",
    "Turner",
    "Parker",
    "Collins",
    "Edwards",
    "Stewart",
    "Morris",
    "Murphy",
    "Cook",
];

const CLASSES: &[&str] = &[
    "1988", "1989", "1990", "1991", "1992", "G", "STAFF", "FACULTY",
];

/// One synthetic person.
#[derive(Debug, Clone)]
pub struct Person {
    /// Unique login, at most 8 characters.
    pub login: String,
    /// First name.
    pub first: String,
    /// Last name.
    pub last: String,
    /// Middle initial (may be empty).
    pub middle: String,
    /// MIT class.
    pub class: String,
    /// Nine-digit ID number (with hyphens).
    pub id_number: String,
}

/// Generates `n` distinct people deterministically from the RNG.
pub fn people(rng: &mut Mt, n: usize) -> Vec<Person> {
    let mut out = Vec::with_capacity(n);
    let mut taken = std::collections::HashSet::with_capacity(n);
    for i in 0..n {
        let first = (*rng.choice(FIRST_NAMES)).to_owned();
        let last = (*rng.choice(LAST_NAMES)).to_owned();
        let middle = if rng.chance(0.6) {
            char::from(b'A' + rng.below(26) as u8).to_string()
        } else {
            String::new()
        };
        let class = (*rng.choice(CLASSES)).to_owned();
        // The stem+serial concatenation is not prefix-free (the serial's
        // length varies with the counter), so two counters can render the
        // same 8 characters once the population is large enough. No first
        // name starts with U, so `u<serial>` cannot collide with any stem.
        let mut login = login_for(&first, &last, i);
        if !taken.insert(login.clone()) {
            login = format!("u{}", base36(i));
            taken.insert(login.clone());
        }
        let id_number = format!(
            "{:03}-{:02}-{:04}",
            rng.below(900) + 100,
            rng.below(90) + 10,
            rng.below(9000) + 1000
        );
        out.push(Person {
            login,
            first,
            last,
            middle,
            class,
            id_number,
        });
    }
    out
}

/// A distinct ≤8-character login derived from a name and a counter.
pub fn login_for(first: &str, last: &str, counter: usize) -> String {
    let serial = base36(counter);
    let budget = 8 - serial.len();
    let mut stem = String::new();
    stem.extend(first.chars().take(1));
    stem.extend(last.chars().take(budget.saturating_sub(1)));
    let mut login = stem.to_ascii_lowercase();
    login.push_str(&serial);
    login
}

fn base36(mut n: usize) -> String {
    const DIGITS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    let mut out = Vec::new();
    loop {
        out.push(DIGITS[n % 36]);
        n /= 36;
        if n == 0 {
            break;
        }
    }
    out.reverse();
    String::from_utf8(out).expect("ascii")
}

/// A workstation host name like `E40-343-3.MIT.EDU`.
pub fn workstation_name(rng: &mut Mt, i: usize) -> String {
    let building = rng.choice(&["E40", "W20", "NE43", "4", "37", "66"]);
    format!("{building}-{:03}-{i}.MIT.EDU", rng.below(500))
}

/// A server host name like `CHARON` / `EURYDICE` with an index fallback.
pub fn server_name(i: usize) -> String {
    const MYTHICAL: &[&str] = &[
        "CHARON",
        "EURYDICE",
        "HELEN",
        "ORPHEUS",
        "PERSEUS",
        "ANDROMEDA",
        "CASSIOPEIA",
        "HERCULES",
        "ATLAS",
        "PROMETHEUS",
        "ICARUS",
        "DAEDALUS",
        "THESEUS",
        "ARIADNE",
        "PENELOPE",
        "ODYSSEUS",
        "ACHILLES",
        "HECTOR",
        "PARIS",
        "CASSANDRA",
        "MEDEA",
        "JASON",
        "CIRCE",
        "CALYPSO",
    ];
    match MYTHICAL.get(i) {
        Some(n) => format!("{n}.MIT.EDU"),
        None => format!("SRV{i}.MIT.EDU"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logins_unique_and_short() {
        let mut rng = Mt::new(1);
        let folks = people(&mut rng, 5_000);
        let mut logins: Vec<&str> = folks.iter().map(|p| p.login.as_str()).collect();
        logins.sort_unstable();
        logins.dedup();
        assert_eq!(logins.len(), 5_000, "logins must be unique");
        assert!(folks
            .iter()
            .all(|p| p.login.len() <= 8 && !p.login.is_empty()));
        assert!(folks
            .iter()
            .all(|p| p.login.chars().all(|c| c.is_ascii_alphanumeric())));
    }

    #[test]
    fn logins_unique_at_collision_scale() {
        // 150k is past the point where the raw stem+serial rendering
        // collides; the fallback path must keep the set distinct.
        let mut rng = Mt::new(2);
        let folks = people(&mut rng, 150_000);
        let mut logins: Vec<&str> = folks.iter().map(|p| p.login.as_str()).collect();
        logins.sort_unstable();
        logins.dedup();
        assert_eq!(logins.len(), 150_000, "logins must stay unique at scale");
        assert!(folks.iter().all(|p| p.login.len() <= 8));
    }

    #[test]
    fn deterministic_from_seed() {
        let a = people(&mut Mt::new(7), 100);
        let b = people(&mut Mt::new(7), 100);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.login == y.login && x.id_number == y.id_number));
    }

    #[test]
    fn id_numbers_shaped() {
        let folks = people(&mut Mt::new(3), 50);
        for p in &folks {
            assert_eq!(p.id_number.len(), 11, "{}", p.id_number);
            assert_eq!(p.id_number.chars().filter(|c| *c == '-').count(), 2);
        }
    }

    #[test]
    fn server_names() {
        assert_eq!(server_name(0), "CHARON.MIT.EDU");
        assert_eq!(server_name(99), "SRV99.MIT.EDU");
        let mut rng = Mt::new(1);
        assert!(workstation_name(&mut rng, 3).ends_with(".MIT.EDU"));
    }
}
