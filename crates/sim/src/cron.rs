//! The cron driver.
//!
//! "The DCM is invoked regularly by cron at intervals which become the
//! minimum update time for any service" (§5.7). The driver advances virtual
//! time in cron-period steps, firing the DCM at each tick and immediately
//! whenever a `Trigger_DCM` request is pending.

use moira_dcm::dcm::DcmReport;

use crate::deployment::Deployment;

/// The paper's floor: "distribution of server-specific files can occur
/// every 15 minutes" (§5.1.E).
pub const MIN_CRON_PERIOD_SECS: i64 = 15 * 60;

/// Summary of a simulated stretch of wall-clock time.
#[derive(Debug, Clone, Default)]
pub struct CronRun {
    /// One report per DCM invocation, in order.
    pub reports: Vec<DcmReport>,
    /// How many invocations were trigger-driven rather than scheduled.
    pub triggered_runs: usize,
    /// How many nightly backups ran.
    pub nightly_backups: usize,
}

impl CronRun {
    /// Total services regenerated across the run.
    pub fn total_generations(&self) -> usize {
        self.reports.iter().map(|r| r.generated.len()).sum()
    }

    /// Total host updates attempted.
    pub fn total_updates(&self) -> usize {
        self.reports.iter().map(|r| r.updates.len()).sum()
    }

    /// Total successful host updates.
    pub fn successful_updates(&self) -> usize {
        self.reports
            .iter()
            .flat_map(|r| &r.updates)
            .filter(|(_, _, res)| res.is_ok())
            .count()
    }
}

/// Runs the deployment for `duration_secs` of virtual time, firing the DCM
/// every `period_secs` (clamped to the 15-minute floor) and the nightly
/// backup every 24 hours.
pub fn run_cron(deployment: &mut Deployment, duration_secs: i64, period_secs: i64) -> CronRun {
    let period = period_secs.max(MIN_CRON_PERIOD_SECS);
    let mut run = CronRun::default();
    let mut elapsed = 0;
    let mut since_backup = 0;
    while elapsed < duration_secs {
        // A pending Trigger_DCM fires immediately, ahead of the schedule.
        if deployment.dcm_triggered() {
            run.triggered_runs += 1;
            run.reports.push(deployment.run_dcm_once());
        }
        deployment.advance(period);
        elapsed += period;
        since_backup += period;
        run.reports.push(deployment.run_dcm_once());
        if since_backup >= 24 * 3600 {
            deployment.run_nightly_backup();
            run.nightly_backups += 1;
            since_backup = 0;
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationSpec;

    #[test]
    fn one_simulated_day_converges() {
        let mut d = Deployment::build(&PopulationSpec::small());
        let run = run_cron(&mut d, 24 * 3600, 3600);
        assert!(run.reports.len() >= 24);
        // All five services generate exactly once (nothing changes after).
        assert_eq!(run.total_generations(), 5);
        // Updates: hesiod(1) + nfs(3) + mail(1) + zephyr(2) + passwd(2).
        assert_eq!(run.total_updates(), 9);
        assert_eq!(run.successful_updates(), 9);
    }

    #[test]
    fn nightly_backups_rotate_three_generations() {
        let mut d = Deployment::build(&PopulationSpec::small());
        let run = run_cron(&mut d, 5 * 24 * 3600, 6 * 3600);
        assert_eq!(run.nightly_backups, 5);
        // Only the last three generations stay on line.
        assert_eq!(d.backups.generations().len(), 3);
        assert!(d.last_backup > 0);
        // The newest generation restores into a working database.
        let mut fresh = moira_db::Database::new(moira_common::VClock::new());
        moira_core::schema::create_all_tables(&mut fresh);
        let restored =
            moira_db::backup::mrrestore(&mut fresh, &d.backups.generations()[0]).unwrap();
        assert!(restored > 500);
    }

    #[test]
    fn period_clamped_to_fifteen_minutes() {
        let mut d = Deployment::build(&PopulationSpec::small());
        let run = run_cron(&mut d, 3600, 60);
        assert_eq!(run.reports.len(), 4, "15-minute floor");
    }

    #[test]
    fn trigger_fires_extra_run() {
        let mut d = Deployment::build(&PopulationSpec::small());
        d.run_dcm_once();
        // Force an override (sets the trigger) and run a short cron window.
        {
            let mut s = d.state.write();
            let host = d.population.hesiod_servers[0].clone();
            d.registry
                .execute(
                    &mut s,
                    &moira_core::state::Caller::root("ops"),
                    "set_server_host_override",
                    &["HESIOD".into(), host],
                )
                .unwrap();
        }
        let run = run_cron(&mut d, 1800, 900);
        assert!(run.triggered_runs >= 1);
        // The override produced an off-schedule update.
        assert!(run.total_updates() >= 1);
    }
}
