//! The fully wired deployment: Moira + DCM + Kerberos + registration
//! server + consumers on simulated hosts.
//!
//! Each simulated host's install script (the `Exec` instruction at the end
//! of every update) feeds the freshly swapped files to the consumer running
//! on that host — restarting Hesiod, applying NFS credentials/quotas/dirs,
//! reloading the aliases table, installing Zephyr ACLs — exactly the
//! arrangement §5.8.2 describes per service.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use moira_common::clock::VClock;
use moira_core::recovery::{boot_durable, BootReport};
use moira_core::registry::Registry;
use moira_core::seed::seed_capacls;
use moira_core::state::{MoiraState, SharedState};
use moira_core::userreg::RegistrationServer;
use moira_db::backup::NightlyRotation;
use moira_db::storage::{DurableEngine, GroupCommitConfig, SimMedia, Storage};
use moira_dcm::dcm::{install_dir, Dcm, DcmReport};
use moira_dcm::host::SimHost;
use moira_dcm::relay::RackTopology;
use moira_krb::realm::Kdc;
use moira_svc::{HesiodServer, MailHub, NfsServer, ZephyrServer};
use parking_lot::Mutex;

use crate::net::NetFabric;
use crate::population::{populate, PopulationReport, PopulationSpec};

/// A complete simulated Athena.
pub struct Deployment {
    /// Shared virtual clock.
    pub clock: VClock,
    /// The fault-injecting network fabric every DCM→host update connection
    /// crosses (no faults configured until a scenario asks for them).
    pub net: Arc<NetFabric>,
    /// The Moira database + server state.
    pub state: SharedState,
    /// The query catalog.
    pub registry: Arc<Registry>,
    /// The Data Control Manager.
    pub dcm: Dcm,
    /// Every simulated host by canonical name.
    pub hosts: HashMap<String, Arc<Mutex<SimHost>>>,
    /// Hesiod consumers by host name.
    pub hesiod: HashMap<String, Arc<Mutex<HesiodServer>>>,
    /// NFS consumers by host name.
    pub nfs: HashMap<String, Arc<Mutex<NfsServer>>>,
    /// Zephyr consumers by host name.
    pub zephyr: HashMap<String, Arc<Mutex<ZephyrServer>>>,
    /// Mail hub consumers by host name.
    pub mail: HashMap<String, Arc<Mutex<MailHub>>>,
    /// The Kerberos realm.
    pub kdc: Arc<Kdc>,
    /// The DCM's `rcmd.moira` srvtab key — on Moira's disk in real life,
    /// so it survives a Moira crash and a restarted DCM re-reads it.
    dcm_key: moira_krb::cipher::Key,
    /// The registration server of §5.10.
    pub regserver: RegistrationServer,
    /// What the population generator built.
    pub population: PopulationReport,
    /// The nightly.sh backup rotation ("maintains the last three backups
    /// on line", §5.2.2).
    pub backups: NightlyRotation,
    /// Unix time of the most recent nightly backup.
    pub last_backup: i64,
    /// The server's durable storage media once
    /// [`Deployment::enable_durable_storage`] has run; `None` keeps the
    /// historical in-memory `NullStorage` server.
    pub durable_media: Option<SimMedia>,
}

fn files_under(files: &BTreeMap<String, Vec<u8>>, dir: &str) -> Vec<(String, String)> {
    let prefix = format!("{}/", dir.trim_end_matches('/'));
    files
        .iter()
        .filter(|(path, _)| {
            path.starts_with(&prefix)
                && !path.ends_with(".moira_update")
                && !path.ends_with(".moira_backup")
        })
        .map(|(path, data)| {
            (
                path[prefix.len()..].to_owned(),
                String::from_utf8_lossy(data).into_owned(),
            )
        })
        .collect()
}

impl Deployment {
    /// Builds a deployment at the given population scale.
    pub fn build(spec: &PopulationSpec) -> Deployment {
        let clock = VClock::new();
        let registry = Arc::new(Registry::standard());
        let mut st = MoiraState::new(clock.clone());
        // Durations measured inside the simulation (DCM stage spans, lock
        // waits) must read simulated time, not the wall.
        st.obs.set_virtual_clock(clock.clone());
        seed_capacls(&mut st, &registry);
        let population = populate(&mut st, &registry, spec).expect("population build must succeed");
        let state = moira_core::state::shared(st);

        let kdc = Arc::new(Kdc::new(clock.clone()));
        kdc.register_service("moira").expect("fresh realm");
        let dcm_key = kdc.register_service("rcmd.moira").expect("fresh realm");

        let mut dcm = Dcm::new(state.clone(), registry.clone());
        // §5.9.2: both ends of every update connection verify each other.
        dcm.enable_kerberos(kdc.clone(), "rcmd.moira", dcm_key);
        // Every update connection crosses the (initially perfect) fabric.
        let net = Arc::new(NetFabric::new(clock.clone(), 0x000a_7e4a_5eed));
        dcm.set_network(net.clone());
        let mut hosts = HashMap::new();
        let mut hesiod = HashMap::new();
        let mut nfs = HashMap::new();
        let mut zephyr = HashMap::new();
        let mut mail = HashMap::new();

        for name in &population.hesiod_servers {
            let consumer = Arc::new(Mutex::new(HesiodServer::new()));
            let host = make_host(name, {
                let consumer = consumer.clone();
                Box::new(move |cmd, files| {
                    if cmd != "install-hesiod" {
                        return 0;
                    }
                    let mut h = consumer.lock();
                    h.restart();
                    for (name, text) in files_under(files, &install_dir("HESIOD")) {
                        if name.ends_with(".db") && h.load_db(&text).is_err() {
                            return 1;
                        }
                    }
                    0
                })
            });
            dcm.add_host(host.clone());
            hosts.insert(name.clone(), host);
            hesiod.insert(name.clone(), consumer);
        }
        for name in &population.nfs_servers {
            let consumer = Arc::new(Mutex::new(NfsServer::new()));
            let host = make_host(name, {
                let consumer = consumer.clone();
                Box::new(move |cmd, files| {
                    if cmd != "install-nfs" {
                        return 0;
                    }
                    let mut n = consumer.lock();
                    for (name, text) in files_under(files, &install_dir("NFS")) {
                        let result = if name == "credentials" {
                            n.apply_credentials(&text).map(|_| ())
                        } else if name.ends_with(".quotas") {
                            n.apply_quotas(&text).map(|_| ())
                        } else if name.ends_with(".dirs") {
                            n.apply_dirs(&text).map(|_| ())
                        } else {
                            Ok(())
                        };
                        if result.is_err() {
                            return 1;
                        }
                    }
                    0
                })
            });
            dcm.add_host(host.clone());
            hosts.insert(name.clone(), host);
            nfs.insert(name.clone(), consumer);
        }
        for name in &population.zephyr_servers {
            let consumer = Arc::new(Mutex::new(ZephyrServer::new()));
            let host = make_host(name, {
                let consumer = consumer.clone();
                Box::new(move |cmd, files| {
                    if cmd != "install-zephyr" {
                        return 0;
                    }
                    let mut z = consumer.lock();
                    for (name, text) in files_under(files, &install_dir("ZEPHYR")) {
                        if name.ends_with(".acl") {
                            z.install_acl_file(&name, &text);
                        }
                    }
                    0
                })
            });
            dcm.add_host(host.clone());
            hosts.insert(name.clone(), host);
            zephyr.insert(name.clone(), consumer);
        }
        for name in &population.mail_hubs {
            let consumer = Arc::new(Mutex::new(MailHub::new()));
            let host = make_host(name, {
                let consumer = consumer.clone();
                Box::new(move |cmd, files| {
                    if cmd != "install-mail" {
                        return 0;
                    }
                    for (name, text) in files_under(files, &install_dir("MAIL")) {
                        let result = match name.as_str() {
                            "aliases" => consumer.lock().load_aliases(&text).map(|_| ()),
                            "passwd" => consumer.lock().load_passwd(&text).map(|_| ()),
                            _ => Ok(()),
                        };
                        if result.is_err() {
                            return 1;
                        }
                    }
                    0
                })
            });
            dcm.add_host(host.clone());
            hosts.insert(name.clone(), host);
            mail.insert(name.clone(), consumer);
        }
        // POP servers exist as plain hosts (no distributed files).
        for name in &population.pop_servers {
            let host = Arc::new(Mutex::new(SimHost::new(name)));
            dcm.add_host(host.clone());
            hosts.insert(name.clone(), host);
        }
        // Dialup machines receive HOSTACCESS-restricted password files; the
        // install script is the stock extract-and-swap, so a plain host
        // suffices (the files themselves are the observable state).
        for name in &population.dialup_servers {
            let host = Arc::new(Mutex::new(SimHost::new(name)));
            dcm.add_host(host.clone());
            hosts.insert(name.clone(), host);
        }

        // Every server host gets an rcmd service principal and verifies
        // incoming update connections with it.
        for (name, host) in &hosts {
            let service = format!("rcmd.{name}");
            let key = kdc
                .register_service(&service)
                .expect("unique host principals");
            host.lock().verifier = Some(moira_krb::ticket::Verifier::new(
                &service,
                key,
                clock.clone(),
            ));
        }

        let regserver = RegistrationServer::new(state.clone(), registry.clone(), kdc.clone());
        Deployment {
            clock,
            net,
            state,
            registry,
            dcm,
            hosts,
            hesiod,
            nfs,
            zephyr,
            mail,
            kdc,
            dcm_key,
            regserver,
            population,
            backups: NightlyRotation::new(),
            last_backup: 0,
            durable_media: None,
        }
    }

    /// Puts the server on simulated durable storage: an initial snapshot
    /// seals the current (seeded + populated) database, and every
    /// subsequent committed mutation flows through the WAL. Returns a
    /// handle on the media for crash-point arming.
    pub fn enable_durable_storage(&mut self, config: GroupCommitConfig) -> SimMedia {
        let media = SimMedia::new();
        // Recovery I/O runs before the state guard is taken; only sealing
        // the snapshot (which must see the db quiescent) and installing
        // the engine need exclusive access.
        let (mut engine, _) = DurableEngine::open(Box::new(media.clone()), config)
            .expect("fresh sim media opens cleanly");
        let mut st = self.state.write();
        engine.set_obs(&st.obs);
        // One-shot bootstrap: the initial snapshot needs the seeded db
        // pinned, so its media write happens under the guard by design.
        engine
            .snapshot(&st.db, &st.journal)
            .expect("sealing the initial snapshot on fresh media");
        st.storage = Box::new(engine);
        self.durable_media = Some(media.clone());
        media
    }

    /// Kills the Moira server ungracefully: simulated power loss discards
    /// everything the durable media had not fsynced. The in-memory state
    /// is conceptually gone; call [`Deployment::recover_server`] to boot
    /// the replacement.
    pub fn crash_server(&self) {
        self.durable_media
            .as_ref()
            .expect("enable_durable_storage first")
            .power_cycle();
    }

    /// Boots a recovered server from the durable media and swaps it into
    /// the shared state in place, so every component holding the
    /// `SharedState` Arc — the DCM with its prepared-build caches, the
    /// registration server, open client handles — now sees the recovered
    /// world. The epoch survives recovery, so DCM generation cursors cut
    /// before the crash remain valid and the next cycle ships patches.
    pub fn recover_server(&mut self, config: GroupCommitConfig) -> BootReport {
        let media = self
            .durable_media
            .clone()
            .expect("enable_durable_storage first");
        // Recovery replays entries at their original commit times; the
        // simulation clock must not stay rewound afterwards.
        let now = self.clock.now();
        let (recovered, report) =
            boot_durable(self.clock.clone(), &self.registry, Box::new(media), config)
                .expect("recovery from sim media");
        self.clock.set(now);
        recovered.obs.set_virtual_clock(self.clock.clone());
        *self.state.write() = recovered;
        report
    }

    /// Runs the nightly backup: dumps every relation to ASCII and rotates
    /// the three on-line generations, recording the backup time so journal
    /// recovery knows where to replay from.
    pub fn run_nightly_backup(&mut self) {
        let s = self.state.read();
        self.backups.run_nightly(&s.db);
        self.last_backup = s.now();
    }

    /// Replaces the DCM with a freshly started one, as after a Moira
    /// crash: every in-memory cache is gone — prepared builds and their
    /// generation cursors, per-host delta cursors, retry streaks — but
    /// the on-disk identity survives, so the srvtab key, the network
    /// fabric, and the fan-out configuration (rack topology and width
    /// live in configuration, not state) are rewired exactly as at first
    /// start.
    pub fn restart_dcm(&mut self) {
        let mut fresh = Dcm::new(self.state.clone(), self.registry.clone());
        fresh.enable_kerberos(self.kdc.clone(), "rcmd.moira", self.dcm_key);
        fresh.set_network(self.net.clone());
        fresh.set_fanout_width(self.dcm.fanout_width());
        fresh.set_topology(self.dcm.topology().clone());
        for host in self.dcm.hosts.values() {
            fresh.add_host(host.clone());
        }
        self.dcm = fresh;
    }

    /// Groups every simulated host into racks of `rack_size` (sorted by
    /// name, chunked), wires matching fault domains into the fabric, and
    /// points the DCM at the topology with a `fanout_width`-worker pool.
    /// Returns the topology for scenario scripting.
    pub fn configure_racks(&mut self, rack_size: usize, fanout_width: usize) -> RackTopology {
        let mut names: Vec<String> = self.hosts.keys().cloned().collect();
        names.sort();
        let mut topo = RackTopology::new();
        for (n, chunk) in names.chunks(rack_size.max(1)).enumerate() {
            let rack = format!("rack-{n}");
            for host in chunk {
                self.net.assign_rack(host, &rack);
            }
            topo.add_rack(&rack, chunk.iter().cloned());
        }
        self.dcm.set_topology(topo.clone());
        self.dcm.set_fanout_width(fanout_width);
        topo
    }

    /// Runs one DCM pass (consuming any pending trigger), then delivers any
    /// new DCM notices through the real Zephyr servers — failures ride the
    /// very notification service Moira manages ("a zephyr message is sent
    /// to class MOIRA instance DCM", §5.7.1).
    pub fn run_dcm_once(&mut self) -> DcmReport {
        self.state.write().dcm_trigger = false;
        let already_sent = self.dcm.notices.len();
        let report = self.dcm.run_once();
        let fresh: Vec<_> = self.dcm.notices[already_sent..].to_vec();
        for notice in fresh {
            if notice.kind != "zephyr" {
                continue;
            }
            for server in self.zephyr.values() {
                let _ = server.lock().transmit(
                    "moira",
                    &notice.target,
                    &notice.instance,
                    &notice.message,
                );
            }
        }
        report
    }

    /// True if a Trigger_DCM request is pending.
    pub fn dcm_triggered(&self) -> bool {
        self.state.read().dcm_trigger
    }

    /// Builds a reactor-driven [`moira_core::MoiraServer`] over this
    /// deployment's live state and registry — the connection tier for
    /// scenarios that exercise real client traffic (churn, backpressure,
    /// concurrent sessions) against the simulated campus. Trusted-mode
    /// auth, like the in-process deployments the tests use; callers
    /// wanting Kerberos pass their own verifier to `MoiraServer::new`.
    pub fn build_server(&self) -> moira_core::MoiraServer {
        moira_core::MoiraServer::new(self.state.clone(), self.registry.clone(), None)
    }

    /// Advances virtual time.
    pub fn advance(&self, secs: i64) {
        self.clock.advance(secs);
    }

    /// The single Hesiod consumer (convenience when there is exactly one).
    pub fn hesiod_one(&self) -> Arc<Mutex<HesiodServer>> {
        self.hesiod
            .values()
            .next()
            .expect("a hesiod server")
            .clone()
    }

    /// The single mail hub.
    pub fn mail_one(&self) -> Arc<Mutex<MailHub>> {
        self.mail.values().next().expect("a mail hub").clone()
    }
}

fn make_host(name: &str, handler: moira_dcm::host::CommandHandler) -> Arc<Mutex<SimHost>> {
    let mut host = SimHost::new(name);
    host.set_command_handler(handler);
    Arc::new(Mutex::new(host))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_stack_first_propagation() {
        let mut d = Deployment::build(&PopulationSpec::small());
        let report = d.run_dcm_once();
        assert_eq!(
            report.generated.len(),
            5,
            "hesiod, nfs, mail, zephyr, passwd: {report:?}"
        );
        assert!(
            report.updates.iter().all(|(_, _, r)| r.is_ok()),
            "{report:?}"
        );

        // The restricted dialup machine got a reduced /etc/passwd and a
        // /.klogin naming only the operations staff.
        let dialup = d.hosts[&d.population.dialup_servers[0]].lock();
        let passwd =
            String::from_utf8(dialup.read_file("/var/passwd/passwd").unwrap().to_vec()).unwrap();
        assert!(
            passwd.is_empty(),
            "moira-admins has no members in this population"
        );
        let open = d.hosts[&d.population.dialup_servers[1]].lock();
        let passwd =
            String::from_utf8(open.read_file("/var/passwd/passwd").unwrap().to_vec()).unwrap();
        assert_eq!(passwd.lines().count(), d.population.active_logins.len());

        // Hesiod answers for a populated user.
        let login = d.population.active_logins[0].clone();
        let hes = d.hesiod_one();
        let hes = hes.lock();
        let passwd = hes.resolve(&login, "passwd").unwrap();
        assert!(passwd[0].starts_with(&format!("{login}:*:")));
        let pobox = hes.resolve(&login, "pobox").unwrap();
        assert!(pobox[0].starts_with("POP ATHENA-PO-"));

        // The mail hub routes the user to their post office, and its finger
        // server knows everybody from the distributed passwd file.
        let mail = d.mail_one();
        let dests = mail.lock().resolve(&login);
        assert!(matches!(
            dests[0],
            moira_svc::mail::Destination::PoBox { .. }
        ));
        assert_eq!(mail.lock().finger_count(), d.population.active_logins.len());
        assert!(mail.lock().finger(&login).is_some());

        // Every NFS server holds credentials for all active users.
        for (_, server) in d.nfs.iter() {
            let s = server.lock();
            assert!(s.credential(&login).is_some());
        }

        // Locker created on exactly one server.
        let locker_path = format!("/u1/lockers/{login}");
        let holders = d
            .nfs
            .values()
            .filter(|s| s.lock().locker(&locker_path).is_some())
            .count();
        assert_eq!(holders, 1);

        // Zephyr ACLs installed: the controlled class rejects outsiders.
        for (_, z) in d.zephyr.iter() {
            let mut z = z.lock();
            assert!(z
                .transmit("definitely-not-a-member", "zclass-0", "i", "m")
                .is_err());
        }
    }

    #[test]
    fn value3_restricts_nfs_credentials_per_host() {
        // §5.8.2: "Which credentials file is loaded on a particular server
        // is determined by the value3 field of the serverhost relation."
        let mut d = Deployment::build(&PopulationSpec::small());
        let restricted_host = d.population.nfs_servers[0].clone();
        let insider = d.population.active_logins[0].clone();
        {
            let mut s = d.state.write();
            let root = moira_core::state::Caller::root("t");
            let run = |s: &mut _, q: &str, args: &[&str]| {
                let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                d.registry.execute(s, &root, q, &args).unwrap()
            };
            run(
                &mut s,
                "add_list",
                &[
                    "srv-cred", "1", "0", "0", "0", "0", "-1", "NONE", "NONE", "",
                ],
            );
            run(
                &mut s,
                "add_member_to_list",
                &["srv-cred", "USER", &insider],
            );
            run(
                &mut s,
                "update_server_host_info",
                &["NFS", &restricted_host, "1", "0", "0", "srv-cred"],
            );
        }
        d.run_dcm_once();
        let outsider = d.population.active_logins[1].clone();
        let restricted = d.nfs[&restricted_host].lock();
        assert!(restricted.credential(&insider).is_some());
        assert!(
            restricted.credential(&outsider).is_none(),
            "value3 restricts membership"
        );
        drop(restricted);
        // Unrestricted hosts carry everyone.
        let open_host = &d.population.nfs_servers[1];
        let open = d.nfs[open_host].lock();
        assert!(open.credential(&insider).is_some());
        assert!(open.credential(&outsider).is_some());
    }

    #[test]
    fn kerberized_hosts_reject_unauthenticated_updates() {
        use moira_dcm::update::{run_update, run_update_with_auth, Script, UpdateError};
        let mut d = Deployment::build(&PopulationSpec::small());
        d.run_dcm_once(); // the real, kerberized DCM succeeds
        let host = d.hosts[&d.population.hesiod_servers[0]].clone();
        let archive = moira_dcm::Archive::from_members(vec![("f".into(), b"x".to_vec())]).unwrap();
        let script = Script::standard(&archive, "/var/hesiod", "install-hesiod");
        // A rogue pusher with no credentials is refused…
        {
            let mut h = host.lock();
            assert_eq!(
                run_update(&mut h, &archive, "/tmp/rogue", &script),
                Err(UpdateError::AuthFailed)
            );
        }
        // …as is one with credentials for the wrong service.
        let wrong_key = d.kdc.register_service("rcmd.IMPOSTOR.MIT.EDU").unwrap();
        let (ticket, session) = d
            .kdc
            .srvtab_ticket("rcmd.IMPOSTOR.MIT.EDU", wrong_key, "rcmd.IMPOSTOR.MIT.EDU")
            .unwrap();
        let creds = moira_dcm::update::UpdateCredentials {
            ticket,
            authenticator: moira_krb::ticket::make_authenticator(
                session,
                "rcmd.IMPOSTOR.MIT.EDU",
                d.clock.now(),
                999,
            ),
        };
        {
            let mut h = host.lock();
            assert_eq!(
                run_update_with_auth(&mut h, Some(&creds), &archive, "/tmp/rogue", &script),
                Err(UpdateError::AuthFailed)
            );
            assert!(
                h.read_file("/tmp/rogue").is_none(),
                "nothing was transferred"
            );
        }
    }

    #[test]
    fn dcm_failures_page_through_zephyr() {
        let mut d = Deployment::build(&PopulationSpec::small());
        d.run_dcm_once();
        // An operator subscribes to MOIRA on one server, then a host starts
        // hard-failing installs.
        let zname = d.population.zephyr_servers[0].clone();
        d.zephyr[&zname]
            .lock()
            .subscribe("operator", "MOIRA")
            .unwrap();
        d.advance(60);
        {
            let mut s = d.state.write();
            let login = d.population.active_logins[0].clone();
            d.registry
                .execute(
                    &mut s,
                    &moira_core::state::Caller::root("t"),
                    "update_user_shell",
                    &[login, "/bin/zz".into()],
                )
                .unwrap();
        }
        let hes = d.population.hesiod_servers[0].clone();
        d.hosts[&hes].lock().fail.fail_exec_with = Some(9);
        d.advance(7 * 3600);
        d.run_dcm_once();
        let z = d.zephyr[&zname].lock();
        let notice = z
            .delivered
            .iter()
            .find(|n| n.class == "MOIRA" && n.instance == "DCM")
            .expect("failure notice delivered over zephyr");
        assert!(notice.message.contains("HESIOD"));
        assert_eq!(notice.sender, "moira");
    }

    #[test]
    fn quota_change_visible_after_next_interval() {
        let mut d = Deployment::build(&PopulationSpec::small());
        d.run_dcm_once();
        d.advance(60);
        let login = d.population.active_logins[1].clone();
        // The §3 example: an administrator changes a quota from her
        // workstation…
        {
            let mut conn = moira_client::DirectClient::connect_as_root(
                d.state.clone(),
                d.registry.clone(),
                "usermaint",
            );
            moira_client::apps::UserMaint::set_quota(&mut conn, &login, &login, 999).unwrap();
        }
        // …and "the change will automatically take place on the proper
        // server a short time later" — after the NFS interval elapses.
        d.advance(13 * 3600);
        let report = d.run_dcm_once();
        assert!(report.generated.iter().any(|(s, _, _)| s == "NFS"));
        let uid: i64 = {
            let s = d.state.read();
            let row =
                s.db.table("users")
                    .select_one(&moira_db::Pred::Eq("login", login.clone().into()))
                    .unwrap();
            s.db.cell("users", row, "uid").as_int()
        };
        let holders = d
            .nfs
            .values()
            .filter(|srv| srv.lock().quota(uid) == Some(999))
            .count();
        assert_eq!(holders, 1, "the proper server got the new quota");
    }
}
