#![warn(missing_docs)]

//! The deployment simulator: a full synthetic Athena.
//!
//! Stands in for MIT's production plant (the substitution the paper's
//! evaluation environment requires): a deterministic population generator
//! scaled to the paper's assumptions (§5.1: 10,000 active users, 20 NFS
//! servers, one Hesiod replica set, one mail hub, Zephyr servers), a
//! deployment builder that wires the Moira server, DCM, Kerberos realm,
//! registration server, and all consumers onto simulated hosts, and a cron
//! driver that advances virtual time.
//!
//! - [`names`] — deterministic person/host name generation.
//! - [`population`] — builds the database through the real query layer.
//! - [`deployment`] — the wired-up system.
//! - [`cron`] — the periodic DCM driver ("the DCM is invoked regularly by
//!   cron at intervals which become the minimum update time for any
//!   service").
//! - [`net`] — the deterministic fault-injecting network fabric every
//!   update connection crosses (partitions, drops, latency).

pub mod cron;
pub mod deployment;
pub mod names;
pub mod net;
pub mod population;

pub use deployment::Deployment;
pub use net::{FabricStats, FaultyChannel, NetFabric};
pub use population::{populate, PopulationReport, PopulationSpec};
