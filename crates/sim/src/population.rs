//! The synthetic population generator.
//!
//! Builds an Athena-scale database through the *real* query layer (every
//! record flows through the same validation and ID allocation an
//! administrator's client would exercise), scaled to the paper's system
//! assumptions (§5.1): 10,000 active users, 20 NFS locker servers, one
//! Hesiod replica set, one `/usr/lib/aliases` propagation, Zephyr ACLs.

use moira_common::errors::MrResult;
use moira_common::rng::Mt;
use moira_core::registry::Registry;
use moira_core::state::{Caller, MoiraState};

use crate::names;

/// Scale parameters for a synthetic deployment.
#[derive(Debug, Clone)]
pub struct PopulationSpec {
    /// RNG seed — everything is deterministic given the spec.
    pub seed: u64,
    /// Active accounts (§5.1.A: "designed optimally for 10,000 active
    /// users").
    pub active_users: usize,
    /// Registerable-but-unregistered records (the registrar's tape).
    pub unregistered_users: usize,
    /// Machine clusters.
    pub clusters: usize,
    /// Workstations spread across the clusters.
    pub workstations: usize,
    /// NFS locker servers (§5.1.F: 20).
    pub nfs_servers: usize,
    /// Post office servers.
    pub pop_servers: usize,
    /// Hesiod nameservers (§5.1.F: one propagation target set).
    pub hesiod_servers: usize,
    /// Zephyr servers (class.acl × 3 propagation targets in §5.1.G).
    pub zephyr_servers: usize,
    /// Mail hubs (§5.1.F: one /usr/lib/aliases propagation).
    pub mail_hubs: usize,
    /// Printers.
    pub printers: usize,
    /// `/etc/services` entries.
    pub network_services: usize,
    /// Mailing lists beyond per-user groups.
    pub maillists: usize,
    /// Mean members per mailing list.
    pub maillist_avg_members: usize,
    /// Controlled Zephyr classes.
    pub zephyr_classes: usize,
    /// Dialup/server machines receiving HOSTACCESS-restricted /etc/passwd
    /// files (the PASSWD extension service).
    pub dialup_servers: usize,
}

impl PopulationSpec {
    /// The paper's deployment scale.
    pub fn athena_1988() -> PopulationSpec {
        PopulationSpec {
            seed: 1988,
            active_users: 10_000,
            unregistered_users: 1_000,
            clusters: 30,
            workstations: 1_200,
            nfs_servers: 20,
            pop_servers: 2,
            hesiod_servers: 1,
            zephyr_servers: 3,
            mail_hubs: 1,
            printers: 40,
            network_services: 150,
            maillists: 500,
            maillist_avg_members: 8,
            zephyr_classes: 2,
            dialup_servers: 2,
        }
    }

    /// A two-orders-of-magnitude-smaller population for fast tests.
    pub fn small() -> PopulationSpec {
        PopulationSpec {
            seed: 42,
            active_users: 100,
            unregistered_users: 20,
            clusters: 4,
            workstations: 20,
            nfs_servers: 3,
            pop_servers: 2,
            hesiod_servers: 1,
            zephyr_servers: 2,
            mail_hubs: 1,
            printers: 5,
            network_services: 10,
            maillists: 10,
            maillist_avg_members: 4,
            zephyr_classes: 2,
            dialup_servers: 2,
        }
    }

    /// A production deployment of `users` active accounts, keeping the
    /// paper's 1988 distribution *shapes*: every infrastructure dimension
    /// grows in the same ratio to the user body as the Athena deployment
    /// had (one workstation per ~8 users, a cluster per ~40 workstations,
    /// an NFS locker server per 500 users, a mailing list per 20 users with
    /// the same mean fan-out, and so on), with the fixed singleton services
    /// (Hesiod replica set, mail hub propagation) growing only
    /// logarithmically, as replica sets do.
    pub fn production(users: usize) -> PopulationSpec {
        let base = Self::athena_1988();
        let factor = users as f64 / base.active_users.max(1) as f64;
        let scale = |n: usize| ((n as f64) * factor).round().max(1.0) as usize;
        // Replica-set services: grow with log10 of the scale factor, not
        // linearly — one more replica tier per order of magnitude.
        let tier = factor.max(1.0).log10().ceil() as usize;
        PopulationSpec {
            seed: 1988,
            active_users: users,
            unregistered_users: scale(base.unregistered_users),
            clusters: scale(base.clusters),
            workstations: scale(base.workstations),
            nfs_servers: scale(base.nfs_servers),
            pop_servers: scale(base.pop_servers),
            hesiod_servers: base.hesiod_servers + tier,
            zephyr_servers: base.zephyr_servers + tier,
            mail_hubs: base.mail_hubs + tier,
            printers: scale(base.printers),
            network_services: base.network_services,
            maillists: scale(base.maillists),
            maillist_avg_members: base.maillist_avg_members,
            zephyr_classes: base.zephyr_classes + tier,
            dialup_servers: base.dialup_servers + tier,
        }
    }

    /// A copy scaled by `factor` on the user-proportional dimensions (for
    /// scaling sweeps).
    pub fn scaled_users(&self, users: usize) -> PopulationSpec {
        let mut spec = self.clone();
        let factor = users as f64 / self.active_users.max(1) as f64;
        spec.active_users = users;
        spec.unregistered_users = ((self.unregistered_users as f64) * factor).ceil() as usize;
        spec.maillists = ((self.maillists as f64) * factor).ceil().max(1.0) as usize;
        spec
    }
}

/// What `populate` created, with the names needed to drive experiments.
#[derive(Debug, Clone, Default)]
pub struct PopulationReport {
    /// Logins of active users.
    pub active_logins: Vec<String>,
    /// The registrar records not yet registered: `(first, last, id_number)`.
    pub unregistered: Vec<(String, String, String)>,
    /// NFS server machine names.
    pub nfs_servers: Vec<String>,
    /// Hesiod server machine names.
    pub hesiod_servers: Vec<String>,
    /// Zephyr server machine names.
    pub zephyr_servers: Vec<String>,
    /// Mail hub machine names.
    pub mail_hubs: Vec<String>,
    /// POP server machine names.
    pub pop_servers: Vec<String>,
    /// Public mailing list names.
    pub public_lists: Vec<String>,
    /// Dialup machines receiving restricted /etc/passwd files.
    pub dialup_servers: Vec<String>,
    /// Total queries executed while populating.
    pub queries_run: usize,
}

/// Fills `state` with a synthetic Athena per `spec`. Returns the report.
pub fn populate(
    state: &mut MoiraState,
    registry: &Registry,
    spec: &PopulationSpec,
) -> MrResult<PopulationReport> {
    let mut rng = Mt::new(spec.seed);
    let caller = Caller::root("populate");
    let mut queries_run = 0usize;
    let run = |state: &mut MoiraState,
               queries_run: &mut usize,
               q: &str,
               args: &[String]|
     -> MrResult<()> {
        registry.execute(state, &caller, q, args)?;
        *queries_run += 1;
        Ok(())
    };
    // Like `run`, but tolerates MR_EXISTS (random member picks may repeat).
    let run_dup_ok = |state: &mut MoiraState,
                      queries_run: &mut usize,
                      q: &str,
                      args: &[String]|
     -> MrResult<()> {
        *queries_run += 1;
        match registry.execute(state, &caller, q, args) {
            Ok(_) | Err(moira_common::MrError::Exists) => Ok(()),
            Err(e) => Err(e),
        }
    };
    let s = |v: &str| v.to_owned();

    // --- Server machines -------------------------------------------------
    let mut server_idx = 0usize;
    let mut next_servers = |n: usize| -> Vec<String> {
        let v: Vec<String> = (0..n).map(|k| names::server_name(server_idx + k)).collect();
        server_idx += n;
        v
    };
    let nfs_servers = next_servers(spec.nfs_servers);
    let hesiod_servers = next_servers(spec.hesiod_servers);
    let zephyr_servers = next_servers(spec.zephyr_servers);
    let mail_hubs = next_servers(spec.mail_hubs);
    let dialup_servers: Vec<String> = (0..spec.dialup_servers)
        .map(|i| format!("DIALUP-{}.MIT.EDU", i + 1))
        .collect();
    let pop_servers: Vec<String> = (0..spec.pop_servers)
        .map(|i| format!("ATHENA-PO-{}.MIT.EDU", i + 1))
        .collect();
    let all_servers: Vec<String> = nfs_servers
        .iter()
        .chain(&hesiod_servers)
        .chain(&zephyr_servers)
        .chain(&mail_hubs)
        .chain(&pop_servers)
        .chain(&dialup_servers)
        .cloned()
        .collect();
    for name in &all_servers {
        run(
            state,
            &mut queries_run,
            "add_machine",
            &[name.clone(), s("VAX")],
        )?;
    }

    // --- Clusters and workstations ---------------------------------------
    let cluster_names: Vec<String> = (0..spec.clusters)
        .map(|i| format!("cluster-{i:02}"))
        .collect();
    for (i, name) in cluster_names.iter().enumerate() {
        run(
            state,
            &mut queries_run,
            "add_cluster",
            &[
                name.clone(),
                format!("Cluster {i}"),
                format!("Building {i}"),
            ],
        )?;
        if let Some(z) = zephyr_servers.first() {
            run(
                state,
                &mut queries_run,
                "add_cluster_data",
                &[name.clone(), s("zephyr"), z.to_ascii_lowercase()],
            )?;
        }
        run(
            state,
            &mut queries_run,
            "add_cluster_data",
            &[
                name.clone(),
                s("lpr"),
                format!("prn{:02}", i % spec.printers.max(1)),
            ],
        )?;
    }
    for i in 0..spec.workstations {
        let ws = names::workstation_name(&mut rng, i);
        run(
            state,
            &mut queries_run,
            "add_machine",
            &[ws.clone(), s("RT")],
        )?;
        let cluster = rng.choice(&cluster_names).clone();
        run(
            state,
            &mut queries_run,
            "add_machine_to_cluster",
            &[ws, cluster],
        )?;
    }

    // --- NFS partitions ---------------------------------------------------
    for server in &nfs_servers {
        run(
            state,
            &mut queries_run,
            "add_nfsphys",
            &[
                server.clone(),
                s("/u1/lockers"),
                s("ra0c"),
                s("15"), // student|faculty|staff|misc
                s("0"),
                s("100000000"),
            ],
        )?;
    }

    // --- Services (DCM) ---------------------------------------------------
    // Intervals from the File Organization table: hesiod 6h, NFS 12h,
    // aliases 24h, zephyr 24h.
    for (name, interval, target, script, stype) in [
        (
            "HESIOD",
            "360",
            "/tmp/hesiod.out",
            "install-hesiod",
            "REPLICAT",
        ),
        ("NFS", "720", "/tmp/nfs.out", "install-nfs", "UNIQUE"),
        ("MAIL", "1440", "/tmp/mail.out", "install-mail", "UNIQUE"),
        (
            "ZEPHYR",
            "1440",
            "/tmp/zephyr.out",
            "install-zephyr",
            "REPLICAT",
        ),
        // The PASSWD extension: HOSTACCESS-restricted password files.
        (
            "PASSWD",
            "1440",
            "/tmp/passwd.out",
            "install-passwd",
            "UNIQUE",
        ),
        // POP has no generator; its serverhosts carry pobox load counters.
        ("POP", "0", "", "", "REPLICAT"),
    ] {
        run(
            state,
            &mut queries_run,
            "add_server_info",
            &[
                s(name),
                s(interval),
                s(target),
                s(script),
                s(stype),
                s("1"),
                s("NONE"),
                s("NONE"),
            ],
        )?;
    }
    let host_sets: [(&str, &Vec<String>, &str); 6] = [
        ("HESIOD", &hesiod_servers, "0"),
        ("NFS", &nfs_servers, "0"),
        ("MAIL", &mail_hubs, "0"),
        ("ZEPHYR", &zephyr_servers, "0"),
        ("PASSWD", &dialup_servers, "0"),
        ("POP", &pop_servers, "10000"),
    ];
    for (svc, hosts, value2) in host_sets {
        for h in hosts.iter() {
            run(
                state,
                &mut queries_run,
                "add_server_host_info",
                &[s(svc), h.clone(), s("1"), s("0"), s(value2), s("")],
            )?;
        }
    }

    // --- Printers and network services -------------------------------------
    for i in 0..spec.printers {
        let spool = rng.choice(&nfs_servers).clone();
        run(
            state,
            &mut queries_run,
            "add_printcap",
            &[
                format!("prn{i:02}"),
                spool,
                format!("/usr/spool/printer/prn{i:02}"),
                format!("prn{i:02}"),
                format!("printer {i}"),
            ],
        )?;
    }
    for i in 0..spec.network_services {
        run(
            state,
            &mut queries_run,
            "add_service",
            &[
                format!("svc{i}"),
                if i % 4 == 0 { s("UDP") } else { s("TCP") },
                (1000 + i).to_string(),
                format!("network service {i}"),
            ],
        )?;
    }

    // --- Users --------------------------------------------------------------
    let total_people = spec.active_users + spec.unregistered_users;
    let people = names::people(&mut rng, total_people);
    let mut active_logins = Vec::with_capacity(spec.active_users);
    let mut unregistered = Vec::with_capacity(spec.unregistered_users);
    for (i, person) in people.iter().enumerate() {
        let active = i < spec.active_users;
        let hashed = moira_krb::crypt::hash_mit_id(&person.id_number, &person.first, &person.last);
        if !active {
            // A registrar record: no login, status 0.
            run(
                state,
                &mut queries_run,
                "add_user",
                &[
                    s("#"),
                    s("UNIQUE_UID"),
                    s("/bin/csh"),
                    person.last.clone(),
                    person.first.clone(),
                    person.middle.clone(),
                    s("0"),
                    hashed,
                    person.class.clone(),
                ],
            )?;
            unregistered.push((
                person.first.clone(),
                person.last.clone(),
                person.id_number.clone(),
            ));
            continue;
        }
        run(
            state,
            &mut queries_run,
            "add_user",
            &[
                person.login.clone(),
                s("UNIQUE_UID"),
                s("/bin/csh"),
                person.last.clone(),
                person.first.clone(),
                person.middle.clone(),
                s("1"),
                hashed,
                person.class.clone(),
            ],
        )?;
        // Pobox on a round-robin post office.
        let po = pop_servers[i % pop_servers.len()].clone();
        run(
            state,
            &mut queries_run,
            "set_pobox",
            &[person.login.clone(), s("POP"), po],
        )?;
        // Personal group.
        run(
            state,
            &mut queries_run,
            "add_list",
            &[
                person.login.clone(),
                s("1"),
                s("0"),
                s("0"),
                s("0"),
                s("1"),
                s("UNIQUE_GID"),
                s("USER"),
                person.login.clone(),
                format!("{} group", person.login),
            ],
        )?;
        run(
            state,
            &mut queries_run,
            "add_member_to_list",
            &[person.login.clone(), s("USER"), person.login.clone()],
        )?;
        // Home locker + quota on a round-robin NFS server.
        let server = nfs_servers[i % nfs_servers.len()].clone();
        run(
            state,
            &mut queries_run,
            "add_filesys",
            &[
                person.login.clone(),
                s("NFS"),
                server,
                format!("/u1/lockers/{}", person.login),
                format!("/mit/{}", person.login),
                s("w"),
                s("home"),
                person.login.clone(),
                person.login.clone(),
                s("1"),
                s("HOMEDIR"),
            ],
        )?;
        run(
            state,
            &mut queries_run,
            "add_nfs_quota",
            &[person.login.clone(), person.login.clone(), s("300")],
        )?;
        active_logins.push(person.login.clone());
    }

    // --- Mailing lists -------------------------------------------------------
    let mut public_lists = Vec::new();
    for i in 0..spec.maillists {
        let name = format!("ml-{i:03}");
        let public = rng.chance(0.5);
        run(
            state,
            &mut queries_run,
            "add_list",
            &[
                name.clone(),
                s("1"),
                if public { s("1") } else { s("0") },
                s("0"),
                s("1"),
                s("0"),
                s("-1"),
                s("NONE"),
                s("NONE"),
                format!("Mailing list {i}"),
            ],
        )?;
        let member_count = 1 + rng.below(2 * spec.maillist_avg_members as u64) as usize;
        for _ in 0..member_count {
            let member = rng.choice(&active_logins).clone();
            run_dup_ok(
                state,
                &mut queries_run,
                "add_member_to_list",
                &[name.clone(), s("USER"), member],
            )?;
        }
        if public {
            public_lists.push(name);
        }
    }

    // --- Zephyr classes --------------------------------------------------------
    for i in 0..spec.zephyr_classes {
        let ctl = format!("zctl-{i}");
        run(
            state,
            &mut queries_run,
            "add_list",
            &[
                ctl.clone(),
                s("1"),
                s("0"),
                s("0"),
                s("0"),
                s("0"),
                s("-1"),
                s("NONE"),
                s("NONE"),
                format!("zephyr class {i} controllers"),
            ],
        )?;
        for _ in 0..3 {
            let member = rng.choice(&active_logins).clone();
            run_dup_ok(
                state,
                &mut queries_run,
                "add_member_to_list",
                &[ctl.clone(), s("USER"), member],
            )?;
        }
        // Three restricted slots per class: with the paper's two classes
        // this yields the File Organization table's six ACL files.
        run(
            state,
            &mut queries_run,
            "add_zephyr_class",
            &[
                format!("zclass-{i}"),
                s("LIST"),
                ctl.clone(),
                s("LIST"),
                ctl.clone(),
                s("LIST"),
                ctl,
                s("NONE"),
                s("NONE"),
            ],
        )?;
    }

    // The first dialup machine is access-restricted to the operations
    // staff through HOSTACCESS; the rest carry full password files.
    if let Some(first_dialup) = dialup_servers.first() {
        run(
            state,
            &mut queries_run,
            "add_server_host_access",
            &[first_dialup.clone(), s("LIST"), s("moira-admins")],
        )?;
    }

    Ok(PopulationReport {
        active_logins,
        unregistered,
        nfs_servers,
        hesiod_servers,
        zephyr_servers,
        mail_hubs,
        pop_servers,
        public_lists,
        dialup_servers,
        queries_run,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use moira_core::queries::testutil::state_with_admin;

    fn build_small() -> (MoiraState, Registry, PopulationReport) {
        let (mut state, _) = state_with_admin("ops");
        let registry = Registry::standard();
        let report = populate(&mut state, &registry, &PopulationSpec::small()).unwrap();
        (state, registry, report)
    }

    #[test]
    fn small_population_builds() {
        let (state, _, report) = build_small();
        assert_eq!(report.active_logins.len(), 100);
        assert_eq!(report.unregistered.len(), 20);
        assert_eq!(report.nfs_servers.len(), 3);
        // users = 100 active + 20 unregistered + 1 admin.
        assert_eq!(state.db.table("users").len(), 121);
        // Every active user has a personal group, a locker, and a quota.
        assert_eq!(state.db.table("nfsquota").len(), 100);
        assert_eq!(state.db.table("filesys").len(), 100);
        assert!(report.queries_run > 500);
    }

    #[test]
    fn population_is_deterministic() {
        let (_, _, a) = build_small();
        let (_, _, b) = build_small();
        assert_eq!(a.active_logins, b.active_logins);
        assert_eq!(a.unregistered, b.unregistered);
        assert_eq!(a.queries_run, b.queries_run);
    }

    #[test]
    fn pobox_load_spread_across_pop_servers() {
        let (state, registry, report) = build_small();
        let mut s = state;
        let rows = registry
            .execute(&mut s, &Caller::root("t"), "get_poboxes_pop", &[])
            .unwrap();
        assert_eq!(rows.len(), 100);
        for po in &report.pop_servers {
            let n = rows.iter().filter(|r| &r[2] == po).count();
            assert_eq!(n, 50, "{po}");
        }
    }

    #[test]
    fn quota_allocation_charged() {
        let (state, _, _) = build_small();
        let t = state.db.table("nfsphys");
        let total: i64 = t
            .iter()
            .map(|(id, _)| t.cell(id, "allocated").as_int())
            .sum();
        assert_eq!(total, 100 * 300);
    }

    #[test]
    fn scaled_spec() {
        let spec = PopulationSpec::athena_1988().scaled_users(1000);
        assert_eq!(spec.active_users, 1000);
        assert_eq!(spec.maillists, 50);
        assert_eq!(spec.nfs_servers, 20, "infrastructure unchanged");
    }

    #[test]
    fn production_spec_keeps_1988_ratios() {
        // At the paper's own scale, production == the paper's deployment.
        let base = PopulationSpec::athena_1988();
        let same = PopulationSpec::production(10_000);
        assert_eq!(same.workstations, base.workstations);
        assert_eq!(same.nfs_servers, base.nfs_servers);
        assert_eq!(same.maillists, base.maillists);

        // 100x the users: linear dimensions scale 100x, replica-set
        // services add one tier per order of magnitude.
        let big = PopulationSpec::production(1_000_000);
        assert_eq!(big.active_users, 1_000_000);
        assert_eq!(big.workstations, 120_000);
        assert_eq!(big.clusters, 3_000);
        assert_eq!(big.nfs_servers, 2_000);
        assert_eq!(big.maillists, 50_000);
        assert_eq!(big.maillist_avg_members, base.maillist_avg_members);
        assert_eq!(big.hesiod_servers, base.hesiod_servers + 2);
        assert_eq!(big.mail_hubs, base.mail_hubs + 2);
        // Ratios to the user body match the paper's.
        let ratio = |n: usize, users: usize| n as f64 / users as f64;
        assert!(
            (ratio(big.workstations, big.active_users)
                - ratio(base.workstations, base.active_users))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn production_population_builds_at_small_scale() {
        // Drive the production constructor through the real registry at a
        // test-friendly size; the 1M build is the bench's job.
        let (mut state, _) = state_with_admin("ops");
        let registry = Registry::standard();
        let spec = PopulationSpec {
            seed: 7,
            ..PopulationSpec::production(200)
        };
        let report = populate(&mut state, &registry, &spec).unwrap();
        assert_eq!(report.active_logins.len(), 200);
        assert_eq!(state.db.table("filesys").len(), 200);
    }
}
