//! The network abstraction between Moira and its server hosts.
//!
//! The paper's trouble-recovery procedures (§5.9) are designed around a
//! network that fails: hosts partition away mid-transfer, links drop
//! packets, connections hang past the timeout. The update protocol itself
//! only sees those failures as connection or transfer errors, so the DCM
//! talks to hosts through this small [`Network`] trait. Production (and the
//! unit tests) use [`PerfectNetwork`]; the simulator substitutes its
//! deterministic fault-injecting fabric (`moira_sim::net::NetFabric`) to
//! reproduce the §5.9 failure matrix end to end.
//!
//! Implementations must be `Send + Sync`: the hierarchical fan-out runs
//! transfer legs concurrently on a worker pool, so every leg crosses the
//! same network value from multiple threads. The fabric additionally
//! models per-rack fault domains (partition a rack's uplink, not just one
//! host's link), matching the relay tier's failure unit.

use crate::update::UpdateError;

/// A fault injected by the network on one leg of an update connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The host is unreachable: no route, no connection ("tagged for retry
    /// at a later time").
    Partitioned,
    /// The leg's data was lost in transit; the sender never hears back.
    Dropped,
    /// The connection stalled past the protocol timeout ("the connection is
    /// closed, and the installation assumed to have failed").
    TimedOut,
}

impl NetFault {
    /// How the DCM observes this fault through the update protocol. Every
    /// network fault is a *soft* error: the paper retries all of them.
    pub fn to_update_error(self) -> UpdateError {
        match self {
            NetFault::Partitioned => UpdateError::HostDown,
            NetFault::Dropped | NetFault::TimedOut => UpdateError::Timeout,
        }
    }
}

/// The network between Moira and a named host.
///
/// `connect` models connection set-up (one round trip); `transmit` models
/// one data-bearing leg of `len` bytes. Implementations may advance a
/// virtual clock to model latency, and may fail any leg deterministically.
pub trait Network: Send + Sync {
    /// Attempts to establish a connection to `host`.
    fn connect(&self, host: &str) -> Result<(), NetFault>;

    /// Attempts to move `len` bytes to (or from) `host` on an established
    /// connection.
    fn transmit(&self, host: &str, len: usize) -> Result<(), NetFault>;
}

/// A network that never fails and takes no time — the default wiring, and
/// the behaviour every pre-fabric caller of the update protocol had.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectNetwork;

impl Network for PerfectNetwork {
    fn connect(&self, _host: &str) -> Result<(), NetFault> {
        Ok(())
    }

    fn transmit(&self, _host: &str, _len: usize) -> Result<(), NetFault> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_network_never_fails() {
        let net = PerfectNetwork;
        assert_eq!(net.connect("ANY.MIT.EDU"), Ok(()));
        assert_eq!(net.transmit("ANY.MIT.EDU", 1 << 20), Ok(()));
    }

    #[test]
    fn faults_map_to_soft_update_errors() {
        assert_eq!(
            NetFault::Partitioned.to_update_error(),
            UpdateError::HostDown
        );
        assert_eq!(NetFault::Dropped.to_update_error(), UpdateError::Timeout);
        assert_eq!(NetFault::TimedOut.to_update_error(), UpdateError::Timeout);
        for fault in [NetFault::Partitioned, NetFault::Dropped, NetFault::TimedOut] {
            assert!(!fault.to_update_error().is_hard(), "{fault:?}");
        }
    }
}
