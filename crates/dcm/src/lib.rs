#![warn(missing_docs)]

//! The Data Control Manager (§5.7) and the Moira-to-server update protocol
//! (§5.9).
//!
//! "The data control manager, or DCM, is a program responsible for
//! distributing information to servers … invoked regularly by cron at
//! intervals which become the minimum update time for any service."
//!
//! - [`archive`] — the tar-like single-file container the DCM ships
//!   ("Only one file is transferred, although it may be a tar file
//!   containing many more"), with checksums.
//! - [`host`] — the simulated target host: an atomic-rename filesystem with
//!   failure injection (down, crash mid-transfer, crash mid-execution,
//!   corruption) and a pluggable script runner.
//! - [`update`] — the three-phase update protocol: transfer (with
//!   checksum), execution (atomic swaps, signals, execs), confirm; plus the
//!   trouble-recovery behaviour of §5.9.
//! - [`generators`] — one generator per service file format of §5.8.2:
//!   Hesiod's eleven BIND `.db` files, the NFS credentials/quotas/dirs
//!   files, `/usr/lib/aliases` + the mail-hub passwd file, and the Zephyr
//!   ACL files — each with `MR_NO_CHANGE` incremental logic.
//! - [`dcm`] — the scan algorithm of §5.7.1 over the SERVERS and
//!   SERVERHOSTS relations.
//! - [`net`] — the network between Moira and its hosts, as the update
//!   protocol sees it; the simulator plugs a deterministic fault-injecting
//!   fabric in here.
//! - [`retry`] — the unified soft-failure retry policy: immediate first
//!   retry, exponential backoff with deterministic jitter, escalation of
//!   long streaks to operator-visible hard errors.
//! - [`relay`] — the hierarchical fan-out tier: rack topology with relay
//!   election, and the per-host delta cursor store that generalizes the
//!   old `last_pushed` patch-base map.

pub mod archive;
pub mod dcm;
pub mod generators;
pub mod host;
pub mod net;
pub mod relay;
pub mod retry;
pub mod update;

pub use archive::Archive;
pub use dcm::{Dcm, DcmReport};
pub use host::SimHost;
pub use net::{NetFault, Network, PerfectNetwork};
pub use relay::{CursorStore, FanoutPlan, RackTopology};
pub use retry::{RetryBook, RetryPolicy, SoftOutcome};
