//! Incremental view maintenance for generator output.
//!
//! A generator's archive is described as an ordered list of *sections*.
//! Each section is driven by one table: every driver row contributes an
//! independent fragment (a run of text lines keyed for ordering, or a set
//! of archive members), possibly reading other tables ("lookups") while
//! rendering. A [`CachedBuild`] keeps the fragment maps keyed on a
//! [`GenCursor`] over the generator's dependency tables; [`refresh`]
//! advances it by applying `changed_since` row deltas instead of re-reading
//! the database.
//!
//! Correctness contract: assembling the section caches must reproduce
//! `Generator::generate(state, "")` byte for byte. Both the full-rebuild
//! and the delta path assemble from the same caches, so the two paths
//! cannot drift from each other; the proptest in `tests/incremental.rs`
//! pins both against `generate`.
//!
//! Fallback rules (cursor invalidation): a missing cache (first run), an
//! epoch change (the state was rebuilt — backup restore or journal
//! replay), or a generation running backwards all force a full rebuild.
//! Within a valid cache, a section whose *lookup* tables advanced is
//! rebuilt whole (its fragments may depend on any row of those tables),
//! while a section whose *driver* advanced replays only the changed rows.
//!
//! This module must never enumerate a dependency table outside the
//! explicit full-rebuild fallback (`full_rebuild_rows`, defined in the
//! parent module) — CI greps this file to keep it that way.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use moira_common::errors::MrResult;
use moira_core::state::MoiraState;
use moira_db::{GenCursor, RowChange, RowId};

use super::{check_no_change, full_rebuild_rows, Generator};
use crate::archive::Archive;

/// Ordering key of a line fragment within its section. Fragments render in
/// `(LineKey, RowId)` order, which lets a section reproduce the full
/// builder's sort (e.g. `(0, login)` for login-sorted files, `(uid, login)`
/// for the stable uid sort) with the driver row id as the stable tiebreak.
pub type LineKey = (i64, String);

/// Renders one driver row into an ordered text fragment, or `None` when the
/// row contributes nothing (filtered out, wrong type, deleted reference).
pub type LineFragmentFn = fn(&MoiraState, RowId) -> Option<(LineKey, String)>;

/// Renders one driver row into zero or more whole archive members.
pub type MemberFragmentFn = fn(&MoiraState, RowId) -> Vec<(String, Vec<u8>)>;

/// Narrows a *lookup* table's changed rows to the driver rows whose
/// fragments may render differently because of them. Returning `None`
/// (or declaring no narrowing at all) falls back to rebuilding the whole
/// section. The returned set must be a superset of the truly affected
/// driver rows; over-reporting costs time, under-reporting costs
/// correctness.
pub type AffectedFn = fn(&MoiraState, &'static str, &[RowChange]) -> Option<Vec<RowId>>;

/// How a section's fragments combine into the archive.
pub enum SectionKind {
    /// Fragments are text runs concatenated (in key order) into the member
    /// named by [`Section::file`]; consecutive `Lines` sections naming the
    /// same file concatenate in plan order.
    Lines(LineFragmentFn),
    /// Fragments are complete members, emitted in driver row-id order.
    Members(MemberFragmentFn),
}

/// One delta-maintainable slice of a generator's output.
pub struct Section {
    /// Target member name (`Members` sections name their own members and
    /// leave this as a label).
    pub file: &'static str,
    /// The table whose rows drive this section's fragments.
    pub driver: &'static str,
    /// Tables the fragment function reads besides the driver row. Any
    /// change in a lookup table rebuilds the whole section, since a single
    /// lookup row can influence any fragment — unless [`Section::affected`]
    /// can narrow the change to specific driver rows.
    pub lookups: &'static [&'static str],
    /// Fragment renderer.
    pub kind: SectionKind,
    /// Optional lookup-change narrowing (see [`AffectedFn`]).
    pub affected: Option<AffectedFn>,
}

/// A generator's full incremental description.
pub struct DeltaPlan {
    /// Sections in archive order.
    pub sections: Vec<Section>,
}

impl DeltaPlan {
    /// The empty plan: no incremental support, always rebuild fully.
    pub fn none() -> DeltaPlan {
        DeltaPlan {
            sections: Vec::new(),
        }
    }

    /// True when the plan describes at least one section.
    pub fn supports_delta(&self) -> bool {
        !self.sections.is_empty()
    }
}

/// Cached fragments of one section.
#[derive(Clone)]
enum SectionCache {
    Lines {
        /// `(key, driver row) -> rendered text`.
        by_key: BTreeMap<(LineKey, RowId), String>,
        /// Reverse map so a row delta can evict its old fragment.
        key_of: HashMap<RowId, LineKey>,
    },
    Members {
        /// `driver row -> members it contributes`.
        by_row: BTreeMap<RowId, Vec<(String, Vec<u8>)>>,
    },
}

/// A generator build cached across DCM cycles: the assembled archive, the
/// section fragment maps it was assembled from, and the generation cursor
/// they are valid at.
#[derive(Clone)]
pub struct CachedBuild {
    cursor: GenCursor,
    archive: Archive,
    sections: Vec<SectionCache>,
}

impl CachedBuild {
    /// The assembled archive.
    pub fn archive(&self) -> &Archive {
        &self.archive
    }

    /// The cursor this build is valid at.
    pub fn cursor(&self) -> &GenCursor {
        &self.cursor
    }
}

/// Outcome of a [`refresh`].
pub struct Refresh {
    /// The up-to-date build (store it back for the next cycle).
    pub build: CachedBuild,
    /// False when the refreshed archive is byte-identical to the previous
    /// one — the content-based `MR_NO_CHANGE` signal.
    pub changed: bool,
    /// True when the full-rebuild fallback ran instead of the delta path.
    pub full: bool,
}

/// Brings a cached build up to date against the current state, building
/// from scratch when the cache is missing or its cursor is invalid.
///
/// Call under one shared-state read guard: the cursor cut and the delta
/// reads then describe a single database version (writers need the
/// exclusive lock).
pub fn refresh(
    generator: &dyn Generator,
    state: &MoiraState,
    prev: Option<CachedBuild>,
) -> MrResult<Refresh> {
    let deps = generator.depends_on();
    let cursor = state.generation_cursor(deps);
    let plan = generator.delta_plan();
    debug_assert!(
        plan.sections
            .iter()
            .all(|s| deps.contains(&s.driver) && s.lookups.iter().all(|l| deps.contains(l))),
        "{}: every section driver/lookup must be in depends_on",
        generator.service()
    );

    if let Some(prev) = prev {
        if check_no_change(generator, state, prev.cursor()).is_err() {
            // Nothing the generator depends on moved: the cached build is
            // exact, no row needs re-reading.
            return Ok(Refresh {
                build: prev,
                changed: false,
                full: false,
            });
        }
        let mut refreshed = if plan.supports_delta() && prev.cursor.valid_for(&state.db) {
            let _span = state.obs.span("dcm.stage.delta_scan_ns");
            delta_refresh(state, prev, cursor, &plan)?
        } else {
            // Invalid cursor (restore/replay gave the state a new epoch) or
            // a plan-less generator: rebuild, but still compare content so
            // an identical result reports NoChange.
            let _span = state.obs.span("dcm.stage.section_rebuild_ns");
            full_refresh(generator, state, cursor, &plan, Some(prev.archive))?
        };
        // A per-host generator's moved rows (quotas, partitions, host ACEs)
        // may only surface in the per-host archives built during the host
        // scan, so an unchanged *shared* archive must still count as a
        // change and re-push the hosts.
        refreshed.changed |= generator.per_host();
        return Ok(refreshed);
    }
    let _span = state.obs.span("dcm.stage.section_rebuild_ns");
    full_refresh(generator, state, cursor, &plan, None)
}

fn full_refresh(
    generator: &dyn Generator,
    state: &MoiraState,
    cursor: GenCursor,
    plan: &DeltaPlan,
    prev_archive: Option<Archive>,
) -> MrResult<Refresh> {
    let (archive, sections) = if plan.supports_delta() {
        let mut sections = Vec::with_capacity(plan.sections.len());
        for section in &plan.sections {
            sections.push(build_section_full(state, section));
        }
        (assemble(plan, &sections, None)?, sections)
    } else {
        // full-rebuild fallback: this plan has no delta support.
        (generator.generate(state, "")?, Vec::new())
    };
    let changed = prev_archive.is_none_or(|p| p != archive);
    Ok(Refresh {
        build: CachedBuild {
            cursor,
            archive,
            sections,
        },
        changed,
        full: true,
    })
}

fn delta_refresh(
    state: &MoiraState,
    prev: CachedBuild,
    cursor: GenCursor,
    plan: &DeltaPlan,
) -> MrResult<Refresh> {
    let advanced: HashSet<&'static str> =
        prev.cursor.advanced_tables(&state.db).into_iter().collect();
    let CachedBuild {
        cursor: prev_cursor,
        archive: prev_archive,
        mut sections,
    } = prev;
    let mut dirty = vec![false; plan.sections.len()];
    for ((section, cache), dirty) in plan.sections.iter().zip(&mut sections).zip(&mut dirty) {
        let since_of = |table: &str| {
            *prev_cursor
                .gens
                .get(table)
                .expect("section tables are in depends_on")
        };
        // A lookup table changed under the fragments: any fragment may be
        // stale. Narrow the damage to specific driver rows when the section
        // knows how; otherwise rebuild the whole section.
        let mut rerender: BTreeSet<RowId> = BTreeSet::new();
        let mut rebuild = false;
        for lookup in section.lookups.iter().filter(|l| advanced.contains(*l)) {
            let narrowed = section.affected.and_then(|affected| {
                let changes = state.db.table(lookup).changed_since(since_of(lookup));
                affected(state, lookup, &changes)
            });
            match narrowed {
                Some(rows) => rerender.extend(rows),
                None => {
                    rebuild = true;
                    break;
                }
            }
        }
        if rebuild {
            *cache = build_section_full(state, section);
            *dirty = true;
            continue;
        }
        if advanced.contains(section.driver) {
            apply_driver_delta(state, section, cache, since_of(section.driver));
            *dirty = true;
        }
        if !rerender.is_empty() {
            rerender_rows(state, section, cache, &rerender);
            *dirty = true;
        }
    }
    let archive = assemble(plan, &sections, Some((&prev_archive, &dirty)))?;
    let changed = archive != prev_archive;
    Ok(Refresh {
        build: CachedBuild {
            cursor,
            archive,
            sections,
        },
        changed,
        full: false,
    })
}

fn build_section_full(state: &MoiraState, section: &Section) -> SectionCache {
    match section.kind {
        SectionKind::Lines(frag) => {
            let mut by_key = BTreeMap::new();
            let mut key_of = HashMap::new();
            for id in full_rebuild_rows(state, section.driver) {
                // full-rebuild fallback
                if let Some((key, text)) = frag(state, id) {
                    key_of.insert(id, key.clone());
                    by_key.insert((key, id), text);
                }
            }
            SectionCache::Lines { by_key, key_of }
        }
        SectionKind::Members(frag) => {
            let mut by_row = BTreeMap::new();
            for id in full_rebuild_rows(state, section.driver) {
                // full-rebuild fallback
                let members = frag(state, id);
                if !members.is_empty() {
                    by_row.insert(id, members);
                }
            }
            SectionCache::Members { by_row }
        }
    }
}

fn apply_driver_delta(state: &MoiraState, section: &Section, cache: &mut SectionCache, since: u64) {
    let changes = state.db.table(section.driver).changed_since(since);
    match (&section.kind, cache) {
        (SectionKind::Lines(frag), SectionCache::Lines { by_key, key_of }) => {
            for change in changes {
                let id = change.id();
                if let Some(old_key) = key_of.remove(&id) {
                    by_key.remove(&(old_key, id));
                }
                if let RowChange::Upserted(id) = change {
                    if let Some((key, text)) = frag(state, id) {
                        key_of.insert(id, key.clone());
                        by_key.insert((key, id), text);
                    }
                }
            }
        }
        (SectionKind::Members(frag), SectionCache::Members { by_row }) => {
            for change in changes {
                by_row.remove(&change.id());
                if let RowChange::Upserted(id) = change {
                    let members = frag(state, id);
                    if !members.is_empty() {
                        by_row.insert(id, members);
                    }
                }
            }
        }
        _ => unreachable!("section kind and cache kind always match"),
    }
}

/// Re-renders specific (live) driver rows in place — the narrowed form of a
/// lookup-change rebuild, applied to the rows an [`AffectedFn`] reported.
fn rerender_rows(
    state: &MoiraState,
    section: &Section,
    cache: &mut SectionCache,
    rows: &BTreeSet<RowId>,
) {
    match (&section.kind, cache) {
        (SectionKind::Lines(frag), SectionCache::Lines { by_key, key_of }) => {
            for &id in rows {
                if let Some(old_key) = key_of.remove(&id) {
                    by_key.remove(&(old_key, id));
                }
                if let Some((key, text)) = frag(state, id) {
                    key_of.insert(id, key.clone());
                    by_key.insert((key, id), text);
                }
            }
        }
        (SectionKind::Members(frag), SectionCache::Members { by_row }) => {
            for &id in rows {
                by_row.remove(&id);
                let members = frag(state, id);
                if !members.is_empty() {
                    by_row.insert(id, members);
                }
            }
        }
        _ => unreachable!("section kind and cache kind always match"),
    }
}

/// Assembles the archive from section caches, in plan order. Consecutive
/// `Lines` sections targeting the same file concatenate into one member.
/// On the delta path (`reuse` present), a file none of whose sections were
/// touched this refresh is copied from the previous archive instead of
/// being re-concatenated from fragments — the caches and the previous
/// member are byte-identical by construction.
fn assemble(
    plan: &DeltaPlan,
    sections: &[SectionCache],
    reuse: Option<(&Archive, &[bool])>,
) -> MrResult<Archive> {
    let mut archive = Archive::new();
    let mut i = 0;
    while i < plan.sections.len() {
        match &sections[i] {
            SectionCache::Lines { .. } => {
                let file = plan.sections[i].file;
                let mut j = i;
                while j < plan.sections.len()
                    && plan.sections[j].file == file
                    && matches!(sections[j], SectionCache::Lines { .. })
                {
                    j += 1;
                }
                let prev = reuse.and_then(|(prev, dirty)| {
                    if dirty[i..j].iter().any(|d| *d) {
                        None
                    } else {
                        prev.get(file)
                    }
                });
                if let Some(bytes) = prev {
                    archive.add(file, bytes.to_vec())?;
                } else {
                    let mut text = String::new();
                    for section in &sections[i..j] {
                        if let SectionCache::Lines { by_key, .. } = section {
                            for line in by_key.values() {
                                text.push_str(line);
                            }
                        }
                    }
                    archive.add(file, text.into_bytes())?;
                }
                i = j;
            }
            SectionCache::Members { by_row } => {
                for members in by_row.values() {
                    for (name, data) in members {
                        archive.add(name, data.clone())?;
                    }
                }
                i += 1;
            }
        }
    }
    Ok(archive)
}
