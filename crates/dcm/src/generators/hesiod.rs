//! The Hesiod generator: eleven BIND-format `.db` files (§5.8.2).
//!
//! "Moira's responsibility to hesiod is to provide authoritative data.
//! Hesiod uses a BIND data format in all of it's data files." Every Hesiod
//! server receives the same archive; the install script restarts the
//! nameserver so the new files are read into memory.

use moira_common::errors::MrResult;
use moira_core::state::MoiraState;
use moira_db::{Pred, RowId};

use crate::archive::Archive;

use super::incremental::{DeltaPlan, LineKey, Section, SectionKind};
use super::{active_groups, active_users, group_map, groups_of_user, Generator};

/// Generator for the HESIOD service.
pub struct HesiodGenerator;

/// Formats one BIND `UNSPECA` line.
fn unspeca(name: &str, kind: &str, data: &str) -> String {
    format!("{name}.{kind}\tHS UNSPECA\t\"{data}\"\n")
}

/// Formats one BIND `CNAME` line.
fn cname(name: &str, kind: &str, target: &str) -> String {
    format!("{name}.{kind}\tHS CNAME\t{target}\n")
}

impl Generator for HesiodGenerator {
    fn service(&self) -> &'static str {
        "HESIOD"
    }

    fn depends_on(&self) -> &'static [&'static str] {
        &[
            "users",
            "list",
            "members",
            "filesys",
            "machine",
            "cluster",
            "mcmap",
            "svc",
            "printcap",
            "services",
            "serverhosts",
            "strings",
            "nfsphys",
        ]
    }

    fn generate(&self, state: &MoiraState, _value3: &str) -> MrResult<Archive> {
        let mut archive = Archive::new();
        archive.add("cluster.db", cluster_db(state))?;
        archive.add("filsys.db", filsys_db(state))?;
        archive.add("gid.db", gid_db(state))?;
        archive.add("group.db", group_db(state))?;
        archive.add("grplist.db", grplist_db(state))?;
        archive.add("passwd.db", passwd_db(state))?;
        archive.add("pobox.db", pobox_db(state))?;
        archive.add("printcap.db", printcap_db(state))?;
        archive.add("service.db", service_db(state))?;
        archive.add("sloc.db", sloc_db(state))?;
        archive.add("uid.db", uid_db(state))?;
        Ok(archive)
    }

    fn delta_plan(&self) -> DeltaPlan {
        DeltaPlan {
            sections: vec![
                // cluster.db = per-cluster svc lines, then per-machine
                // CNAMEs/pseudo-clusters; two sections, same file.
                Section {
                    file: "cluster.db",
                    driver: "cluster",
                    lookups: &["svc"],
                    kind: SectionKind::Lines(frag_cluster),
                    affected: None,
                },
                Section {
                    file: "cluster.db",
                    driver: "machine",
                    lookups: &["mcmap", "cluster", "svc"],
                    kind: SectionKind::Lines(frag_cluster_machine),
                    affected: None,
                },
                Section {
                    file: "filsys.db",
                    driver: "filesys",
                    lookups: &["machine"],
                    kind: SectionKind::Lines(frag_filsys),
                    affected: None,
                },
                Section {
                    file: "gid.db",
                    driver: "list",
                    lookups: &[],
                    kind: SectionKind::Lines(frag_gid),
                    affected: None,
                },
                Section {
                    file: "group.db",
                    driver: "list",
                    lookups: &[],
                    kind: SectionKind::Lines(frag_group),
                    affected: None,
                },
                Section {
                    file: "grplist.db",
                    driver: "users",
                    lookups: &["list", "members"],
                    kind: SectionKind::Lines(frag_grplist),
                    affected: None,
                },
                Section {
                    file: "passwd.db",
                    driver: "users",
                    lookups: &[],
                    kind: SectionKind::Lines(frag_passwd),
                    affected: None,
                },
                Section {
                    file: "pobox.db",
                    driver: "users",
                    lookups: &["machine"],
                    kind: SectionKind::Lines(frag_pobox),
                    affected: None,
                },
                Section {
                    file: "printcap.db",
                    driver: "printcap",
                    lookups: &["machine"],
                    kind: SectionKind::Lines(frag_printcap),
                    affected: None,
                },
                Section {
                    file: "service.db",
                    driver: "services",
                    lookups: &[],
                    kind: SectionKind::Lines(frag_service),
                    affected: None,
                },
                Section {
                    file: "sloc.db",
                    driver: "serverhosts",
                    lookups: &["machine"],
                    kind: SectionKind::Lines(frag_sloc),
                    affected: None,
                },
                Section {
                    file: "uid.db",
                    driver: "users",
                    lookups: &[],
                    kind: SectionKind::Lines(frag_uid),
                    affected: None,
                },
            ],
        }
    }
}

/// True when the users row is an active account (the `active_users` filter).
fn user_active(state: &MoiraState, row: RowId) -> bool {
    state.db.table("users").cell(row, "status").as_int() == 1
}

fn frag_cluster(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    let clusters = state.db.table("cluster");
    let name = clusters.cell(row, "name").as_str().to_owned();
    let clu_id = clusters.cell(row, "clu_id").as_int();
    let mut text = String::new();
    for srow in state.db.select("svc", &Pred::Eq("clu_id", clu_id.into())) {
        let label = state.db.cell("svc", srow, "serv_label").render();
        let data = state.db.cell("svc", srow, "serv_cluster").render();
        text.push_str(&unspeca(&name, "cluster", &format!("{label} {data}")));
    }
    Some(((row as i64, String::new()), text))
}

fn frag_cluster_machine(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    let machines = state.db.table("machine");
    let mach = machines.cell(row, "name").as_str().to_owned();
    let mach_id = machines.cell(row, "mach_id").as_int();
    let memberships = state
        .db
        .select("mcmap", &Pred::Eq("mach_id", mach_id.into()));
    let mut text = String::new();
    match memberships.len() {
        0 => {}
        1 => {
            let clu_id = state.db.cell("mcmap", memberships[0], "clu_id").as_int();
            if let Some(crow) = state
                .db
                .table("cluster")
                .select_one(&Pred::Eq("clu_id", clu_id.into()))
            {
                let cluster = state.db.cell("cluster", crow, "name").render();
                text.push_str(&cname(&mach, "cluster", &format!("{cluster}.cluster")));
            }
        }
        _ => {
            let pseudo = format!("{}-pseudo", mach.to_ascii_lowercase());
            for (label, data) in
                moira_core::queries::machines::cluster_data_for_machine(state, mach_id)
            {
                text.push_str(&unspeca(&pseudo, "cluster", &format!("{label} {data}")));
            }
            text.push_str(&cname(&mach, "cluster", &format!("{pseudo}.cluster")));
        }
    }
    Some(((row as i64, String::new()), text))
}

fn frag_filsys(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    let t = state.db.table("filesys");
    let label = t.cell(row, "label").as_str().to_owned();
    let fstype = t.cell(row, "type").as_str().to_owned();
    let name = t.cell(row, "name").as_str().to_owned();
    let machine = machine_name_upper(state, t.cell(row, "mach_id").as_int())
        .to_ascii_lowercase()
        .split('.')
        .next()
        .unwrap_or_default()
        .to_owned();
    let access = t.cell(row, "access").as_str().to_owned();
    let mount = t.cell(row, "mount").as_str().to_owned();
    let line = unspeca(
        &label,
        "filsys",
        &format!("{fstype} {name} {machine} {access} {mount}"),
    );
    // NUL joins (label, line) so the key sorts like the full builder's
    // tuple sort (labels are not unique across filesystems).
    Some(((0, format!("{label}\u{0}{line}")), line))
}

fn frag_gid(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    let t = state.db.table("list");
    if !(t.cell(row, "active").as_bool() && t.cell(row, "grouplist").as_bool()) {
        return None;
    }
    let name = t.cell(row, "name").as_str().to_owned();
    let gid = t.cell(row, "gid").as_int();
    let line = cname(&gid.to_string(), "gid", &format!("{name}.group"));
    Some(((0, name), line))
}

fn frag_group(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    let t = state.db.table("list");
    if !(t.cell(row, "active").as_bool() && t.cell(row, "grouplist").as_bool()) {
        return None;
    }
    let name = t.cell(row, "name").as_str().to_owned();
    let gid = t.cell(row, "gid").as_int();
    let line = unspeca(&name, "group", &format!("{name}:*:{gid}:"));
    Some(((0, name), line))
}

fn frag_grplist(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    if !user_active(state, row) {
        return None;
    }
    let t = state.db.table("users");
    let login = t.cell(row, "login").as_str().to_owned();
    let users_id = t.cell(row, "users_id").as_int();
    let mut entry = login.clone();
    for (gname, gid) in groups_of_user(state, users_id) {
        entry.push_str(&format!(":{gname}:{gid}"));
    }
    let line = unspeca(&login, "grplist", &entry);
    Some(((0, login), line))
}

fn frag_passwd(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    if !user_active(state, row) {
        return None;
    }
    let t = state.db.table("users");
    let login = t.cell(row, "login").as_str().to_owned();
    let line = unspeca(&login, "passwd", &passwd_line(state, row));
    Some(((0, login), line))
}

fn frag_pobox(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    if !user_active(state, row) {
        return None;
    }
    let t = state.db.table("users");
    if t.cell(row, "potype").as_str() != "POP" {
        return None;
    }
    let login = t.cell(row, "login").as_str().to_owned();
    let machine = machine_name_upper(state, t.cell(row, "pop_id").as_int());
    let line = unspeca(&login, "pobox", &format!("POP {machine} {login}"));
    Some(((0, login), line))
}

fn frag_printcap(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    let t = state.db.table("printcap");
    let name = t.cell(row, "name").as_str().to_owned();
    let rp = t.cell(row, "rp").as_str().to_owned();
    let rm = machine_name_upper(state, t.cell(row, "mach_id").as_int());
    let sd = t.cell(row, "dir").as_str().to_owned();
    let line = unspeca(&name, "pcap", &format!("{name}:rp={rp}:rm={rm}:sd={sd}"));
    Some(((0, line.clone()), line))
}

fn frag_service(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    let t = state.db.table("services");
    let name = t.cell(row, "name").as_str().to_owned();
    let proto = t.cell(row, "protocol").as_str().to_ascii_lowercase();
    let port = t.cell(row, "port").as_int();
    let line = unspeca(&name, "service", &format!("{name} {proto} {port}"));
    Some(((0, line.clone()), line))
}

fn frag_sloc(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    let t = state.db.table("serverhosts");
    let service = t.cell(row, "service").as_str().to_owned();
    let machine = machine_name_upper(state, t.cell(row, "mach_id").as_int());
    let line = format!("{service}.sloc\tHS UNSPECA\t{machine}\n");
    Some(((0, line.clone()), line))
}

fn frag_uid(state: &MoiraState, row: RowId) -> Option<(LineKey, String)> {
    if !user_active(state, row) {
        return None;
    }
    let t = state.db.table("users");
    let login = t.cell(row, "login").as_str().to_owned();
    let uid = t.cell(row, "uid").as_int();
    let line = cname(&uid.to_string(), "uid", &format!("{login}.passwd"));
    Some(((uid, login), line))
}

/// `cluster.db`: per-cluster data lines plus a CNAME per machine; machines
/// in several clusters get a pseudo-cluster holding the union.
pub fn cluster_db(state: &MoiraState) -> String {
    let mut out = String::new();
    let clusters = state.db.table("cluster");
    let mut cluster_rows: Vec<_> = clusters.iter().map(|(id, _)| id).collect();
    cluster_rows.sort_unstable();
    for row in cluster_rows {
        let name = clusters.cell(row, "name").as_str().to_owned();
        let clu_id = clusters.cell(row, "clu_id").as_int();
        for srow in state.db.select("svc", &Pred::Eq("clu_id", clu_id.into())) {
            let label = state.db.cell("svc", srow, "serv_label").render();
            let data = state.db.cell("svc", srow, "serv_cluster").render();
            out.push_str(&unspeca(&name, "cluster", &format!("{label} {data}")));
        }
    }
    // Machine CNAMEs (and pseudo-clusters for multi-cluster machines).
    let machines = state.db.table("machine");
    let mut mrows: Vec<_> = machines.iter().map(|(id, _)| id).collect();
    mrows.sort_unstable();
    for mrow in mrows {
        let mach = machines.cell(mrow, "name").as_str().to_owned();
        let mach_id = machines.cell(mrow, "mach_id").as_int();
        let memberships = state
            .db
            .select("mcmap", &Pred::Eq("mach_id", mach_id.into()));
        match memberships.len() {
            0 => {}
            1 => {
                let clu_id = state.db.cell("mcmap", memberships[0], "clu_id").as_int();
                if let Some(crow) = state
                    .db
                    .table("cluster")
                    .select_one(&Pred::Eq("clu_id", clu_id.into()))
                {
                    let cluster = state.db.cell("cluster", crow, "name").render();
                    out.push_str(&cname(&mach, "cluster", &format!("{cluster}.cluster")));
                }
            }
            _ => {
                // "A pseudo-cluster will be made by Moira which has as its
                // cluster data, the union of the data of each of the other
                // clusters this machine is in."
                let pseudo = format!("{}-pseudo", mach.to_ascii_lowercase());
                for (label, data) in
                    moira_core::queries::machines::cluster_data_for_machine(state, mach_id)
                {
                    out.push_str(&unspeca(&pseudo, "cluster", &format!("{label} {data}")));
                }
                out.push_str(&cname(&mach, "cluster", &format!("{pseudo}.cluster")));
            }
        }
    }
    out
}

/// `filsys.db`: every filesystem entry needed to find and attach lockers.
pub fn filsys_db(state: &MoiraState) -> String {
    let t = state.db.table("filesys");
    let mut entries: Vec<(String, String)> = t
        .iter()
        .map(|(id, row)| {
            let label = row[t.col("label")].as_str().to_owned();
            let fstype = row[t.col("type")].as_str().to_owned();
            let name = row[t.col("name")].as_str().to_owned();
            let machine = machine_name_upper(state, row[t.col("mach_id")].as_int())
                .to_ascii_lowercase()
                .split('.')
                .next()
                .unwrap_or_default()
                .to_owned();
            let access = row[t.col("access")].as_str().to_owned();
            let mount = row[t.col("mount")].as_str().to_owned();
            let _ = id;
            (
                label.clone(),
                unspeca(
                    &label,
                    "filsys",
                    &format!("{fstype} {name} {machine} {access} {mount}"),
                ),
            )
        })
        .collect();
    entries.sort();
    entries.into_iter().map(|(_, line)| line).collect()
}

/// `gid.db`: group ID numbers to group entries.
pub fn gid_db(state: &MoiraState) -> String {
    let mut out = String::new();
    for (_, name, gid) in active_groups(state) {
        out.push_str(&cname(&gid.to_string(), "gid", &format!("{name}.group")));
    }
    out
}

/// `group.db`: `/etc/group`-shaped entries (members never filled in).
pub fn group_db(state: &MoiraState) -> String {
    let mut out = String::new();
    for (_, name, gid) in active_groups(state) {
        out.push_str(&unspeca(&name, "group", &format!("{name}:*:{gid}:")));
    }
    out
}

/// `grplist.db`: per-user colon-separated (group, gid) pairs.
pub fn grplist_db(state: &MoiraState) -> String {
    let users = state.db.table("users");
    let groups = group_map(state);
    let mut out = String::new();
    for (row, login, _uid) in active_users(state) {
        let users_id = users.cell(row, "users_id").as_int();
        let mut entry = login.clone();
        if let Some(memberships) = groups.get(&users_id) {
            for (gname, gid) in memberships {
                entry.push_str(&format!(":{gname}:{gid}"));
            }
        }
        out.push_str(&unspeca(&login, "grplist", &entry));
    }
    out
}

fn passwd_line(state: &MoiraState, row: moira_db::RowId) -> String {
    let t = state.db.table("users");
    format!(
        "{}:*:{}:101:{},,,,:/mit/{}:{}",
        t.cell(row, "login").render(),
        t.cell(row, "uid").render(),
        t.cell(row, "fullname").render(),
        t.cell(row, "login").render(),
        t.cell(row, "shell").render(),
    )
}

/// `passwd.db`: `/etc/passwd`-shaped entries for active users.
pub fn passwd_db(state: &MoiraState) -> String {
    let mut out = String::new();
    for (row, login, _) in active_users(state) {
        out.push_str(&unspeca(&login, "passwd", &passwd_line(state, row)));
    }
    out
}

/// `pobox.db`: the location of each active POP user's post office box.
pub fn pobox_db(state: &MoiraState) -> String {
    let users = state.db.table("users");
    let mut out = String::new();
    for (row, login, _) in active_users(state) {
        if users.cell(row, "potype").as_str() != "POP" {
            continue;
        }
        let machine = machine_name_upper(state, users.cell(row, "pop_id").as_int());
        out.push_str(&unspeca(&login, "pobox", &format!("POP {machine} {login}")));
    }
    out
}

/// `printcap.db`: `/etc/printcap` entries.
pub fn printcap_db(state: &MoiraState) -> String {
    let t = state.db.table("printcap");
    let mut entries: Vec<String> = t
        .iter()
        .map(|(_, row)| {
            let name = row[t.col("name")].as_str().to_owned();
            let rp = row[t.col("rp")].as_str().to_owned();
            let rm = machine_name_upper(state, row[t.col("mach_id")].as_int());
            let sd = row[t.col("dir")].as_str().to_owned();
            unspeca(&name, "pcap", &format!("{name}:rp={rp}:rm={rm}:sd={sd}"))
        })
        .collect();
    entries.sort();
    entries.concat()
}

/// `service.db`: `/etc/services` entries.
pub fn service_db(state: &MoiraState) -> String {
    let t = state.db.table("services");
    let mut entries: Vec<String> = t
        .iter()
        .map(|(_, row)| {
            let name = row[t.col("name")].as_str().to_owned();
            let proto = row[t.col("protocol")].as_str().to_ascii_lowercase();
            let port = row[t.col("port")].as_int();
            unspeca(&name, "service", &format!("{name} {proto} {port}"))
        })
        .collect();
    entries.sort();
    entries.concat()
}

/// `sloc.db`: DCM service/host tuples, indexed by service.
pub fn sloc_db(state: &MoiraState) -> String {
    let t = state.db.table("serverhosts");
    let mut entries: Vec<String> = t
        .iter()
        .map(|(_, row)| {
            let service = row[t.col("service")].as_str().to_owned();
            let machine = machine_name_upper(state, row[t.col("mach_id")].as_int());
            format!("{service}.sloc\tHS UNSPECA\t{machine}\n")
        })
        .collect();
    entries.sort();
    entries.concat()
}

/// `uid.db`: unix UIDs to password entries.
pub fn uid_db(state: &MoiraState) -> String {
    let mut out = String::new();
    let mut users = active_users(state);
    users.sort_by_key(|(_, _, uid)| *uid);
    for (_, login, uid) in users {
        out.push_str(&cname(&uid.to_string(), "uid", &format!("{login}.passwd")));
    }
    out
}

pub(crate) fn machine_name_upper(state: &MoiraState, mach_id: i64) -> String {
    state
        .db
        .table("machine")
        .select_one(&Pred::Eq("mach_id", mach_id.into()))
        .map(|r| state.db.cell("machine", r, "name").render())
        .unwrap_or_else(|| format!("#{mach_id}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use moira_core::queries::testutil::state_with_admin;
    use moira_core::registry::Registry;
    use moira_core::state::Caller;

    fn setup() -> MoiraState {
        let (mut s, _) = state_with_admin("ops");
        let r = Registry::standard();
        let ops = Caller::new("ops", "test");
        let run = |s: &mut MoiraState, q: &str, args: &[&str]| {
            let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
            r.execute(s, &ops, q, &args).unwrap()
        };
        run(&mut s, "add_machine", &["CHARON", "VAX"]);
        run(&mut s, "add_machine", &["ATHENA-PO-2.MIT.EDU", "VAX"]);
        run(&mut s, "add_machine", &["BLANKET.MIT.EDU", "VAX"]);
        run(
            &mut s,
            "add_user",
            &[
                "babette", "6530", "/bin/csh", "Fowler", "Harmon", "C", "1", "x1", "1990",
            ],
        );
        run(
            &mut s,
            "update_finger_by_login",
            &["babette", "Harmon C Fowler", "", "", "", "", "", "", ""],
        );
        run(
            &mut s,
            "add_user",
            &[
                "ghost", "6599", "/bin/csh", "Gone", "Al", "", "0", "x2", "1990",
            ],
        );
        run(
            &mut s,
            "set_pobox",
            &["babette", "POP", "ATHENA-PO-2.MIT.EDU"],
        );
        run(
            &mut s,
            "add_list",
            &[
                "babette", "1", "0", "0", "0", "1", "10914", "NONE", "NONE", "",
            ],
        );
        run(
            &mut s,
            "add_member_to_list",
            &["babette", "USER", "babette"],
        );
        run(
            &mut s,
            "add_nfsphys",
            &["CHARON", "/u1/lockers", "ra0c", "1", "0", "99999"],
        );
        run(
            &mut s,
            "add_filesys",
            &[
                "aab",
                "NFS",
                "CHARON",
                "/u1/lockers/aab",
                "/mit/aab",
                "w",
                "",
                "babette",
                "babette",
                "1",
                "HOMEDIR",
            ],
        );
        run(
            &mut s,
            "add_printcap",
            &[
                "linus",
                "BLANKET.MIT.EDU",
                "/usr/spool/printer/linus",
                "linus",
                "",
            ],
        );
        run(&mut s, "add_service", &["smtp", "TCP", "25", "mail"]);
        run(
            &mut s,
            "add_server_info",
            &[
                "HESIOD",
                "360",
                "/tmp/hesiod.out",
                "hes.sh",
                "REPLICAT",
                "1",
                "NONE",
                "NONE",
            ],
        );
        run(
            &mut s,
            "add_server_host_info",
            &["HESIOD", "CHARON", "1", "0", "0", ""],
        );
        run(&mut s, "add_cluster", &["bldge40-vs", "", "E40"]);
        run(&mut s, "add_cluster", &["bldge40-rt", "", "E40"]);
        run(
            &mut s,
            "add_cluster_data",
            &["bldge40-vs", "zephyr", "neskaya.mit.edu"],
        );
        run(&mut s, "add_cluster_data", &["bldge40-rt", "lpr", "e40"]);
        run(&mut s, "add_machine", &["TOTO", "RT"]);
        run(&mut s, "add_machine", &["SCARECROW", "RT"]);
        run(&mut s, "add_machine_to_cluster", &["TOTO", "bldge40-rt"]);
        run(
            &mut s,
            "add_machine_to_cluster",
            &["SCARECROW", "bldge40-rt"],
        );
        run(
            &mut s,
            "add_machine_to_cluster",
            &["SCARECROW", "bldge40-vs"],
        );
        s
    }

    #[test]
    fn passwd_and_uid_cross_reference() {
        let s = setup();
        let passwd = passwd_db(&s);
        assert!(passwd.contains(
            "babette.passwd\tHS UNSPECA\t\"babette:*:6530:101:Harmon C Fowler,,,,:/mit/babette:/bin/csh\""
        ));
        // Inactive users excluded.
        assert!(!passwd.contains("ghost"));
        let uid = uid_db(&s);
        assert!(uid.contains("6530.uid\tHS CNAME\tbabette.passwd"));
        assert!(!uid.contains("6599"));
        // Every uid entry points at a passwd entry.
        for line in uid.lines() {
            let target = line.rsplit('\t').next().unwrap();
            assert!(passwd.contains(&format!("{target}\t")), "{target}");
        }
    }

    #[test]
    fn pobox_entries() {
        let s = setup();
        let pobox = pobox_db(&s);
        assert!(pobox.contains("babette.pobox\tHS UNSPECA\t\"POP ATHENA-PO-2.MIT.EDU babette\""));
        assert_eq!(pobox.lines().count(), 1);
    }

    #[test]
    fn group_files_consistent() {
        let s = setup();
        let group = group_db(&s);
        let gid = gid_db(&s);
        let grplist = grplist_db(&s);
        assert!(group.contains("babette.group\tHS UNSPECA\t\"babette:*:10914:\""));
        assert!(gid.contains("10914.gid\tHS CNAME\tbabette.group"));
        assert!(grplist.contains("\"babette:babette:10914\""));
    }

    #[test]
    fn filsys_format() {
        let s = setup();
        let f = filsys_db(&s);
        assert!(
            f.contains("aab.filsys\tHS UNSPECA\t\"NFS /u1/lockers/aab charon w /mit/aab\""),
            "{f}"
        );
    }

    #[test]
    fn printcap_service_sloc() {
        let s = setup();
        assert!(printcap_db(&s).contains(
            "linus.pcap\tHS UNSPECA\t\"linus:rp=linus:rm=BLANKET.MIT.EDU:sd=/usr/spool/printer/linus\""
        ));
        assert!(service_db(&s).contains("smtp.service\tHS UNSPECA\t\"smtp tcp 25\""));
        assert!(sloc_db(&s).contains("HESIOD.sloc\tHS UNSPECA\tCHARON"));
    }

    #[test]
    fn cluster_pseudo_union() {
        let s = setup();
        let c = cluster_db(&s);
        assert!(c.contains("bldge40-vs.cluster\tHS UNSPECA\t\"zephyr neskaya.mit.edu\""));
        assert!(c.contains("TOTO.cluster\tHS CNAME\tbldge40-rt.cluster"));
        // SCARECROW is in both clusters: pseudo-cluster with the union.
        assert!(c.contains("SCARECROW.cluster\tHS CNAME\tscarecrow-pseudo.cluster"));
        assert!(c.contains("scarecrow-pseudo.cluster\tHS UNSPECA\t\"lpr e40\""));
        assert!(c.contains("scarecrow-pseudo.cluster\tHS UNSPECA\t\"zephyr neskaya.mit.edu\""));
    }

    #[test]
    fn archive_has_eleven_files() {
        let s = setup();
        let archive = HesiodGenerator.generate(&s, "").unwrap();
        assert_eq!(archive.len(), 11);
        assert_eq!(
            archive.member_names(),
            vec![
                "cluster.db",
                "filsys.db",
                "gid.db",
                "group.db",
                "grplist.db",
                "passwd.db",
                "pobox.db",
                "printcap.db",
                "service.db",
                "sloc.db",
                "uid.db"
            ]
        );
    }

    #[test]
    fn no_change_detection() {
        use crate::generators::check_no_change;
        let mut s = setup();
        let cursor = s.generation_cursor(HesiodGenerator.depends_on());
        assert!(
            check_no_change(&HesiodGenerator, &s, &cursor).is_err(),
            "nothing changed"
        );
        // A same-second mutation (no clock advance) must still register —
        // the retired modtime comparison missed exactly this case.
        let r = Registry::standard();
        r.execute(
            &mut s,
            &Caller::new("ops", "t"),
            "add_machine",
            &["NEWBOX".into(), "VAX".into()],
        )
        .unwrap();
        assert!(
            check_no_change(&HesiodGenerator, &s, &cursor).is_ok(),
            "machine changed"
        );
    }
}
