//! Per-service file generators (§5.8).
//!
//! "To date, the DCM uses c programs, not SDFs, to implement the
//! construction of the server specific files. … The DCM then calls the
//! appropriate module when the update interval is reached." Each generator
//! extracts Moira data and converts it to the server-dependent format; a
//! common "error" is `MR_NO_CHANGE`, "indicating that nothing in the
//! database has changed and the data files were not re-built".

pub mod hesiod;
pub mod hostaccess;
pub mod mail;
pub mod nfs;
pub mod zephyr;

use moira_common::errors::{MrError, MrResult};
use moira_core::state::MoiraState;

use crate::archive::Archive;

/// A service-file generator.
pub trait Generator: Send + Sync {
    /// The DCM service name this generator serves (uppercase).
    fn service(&self) -> &'static str;

    /// The relations whose modification forces regeneration; if none of
    /// them changed since `dfgen`, the generator reports `MR_NO_CHANGE`.
    fn depends_on(&self) -> &'static [&'static str];

    /// Builds the archive of files for this service (the per-host variant
    /// receives the serverhost's `value3`; services with identical files
    /// everywhere ignore it).
    fn generate(&self, state: &MoiraState, value3: &str) -> MrResult<Archive>;

    /// True when the files are per-host rather than shared: the DCM must
    /// regenerate per target instead of reusing one archive.
    fn per_host(&self) -> bool {
        false
    }
}

/// Applies the incremental check: `Err(MR_NO_CHANGE)` when none of the
/// generator's dependency relations changed since `dfgen`.
pub fn check_no_change(generator: &dyn Generator, state: &MoiraState, dfgen: i64) -> MrResult<()> {
    let changed = generator
        .depends_on()
        .iter()
        .any(|table| state.db.table(table).stats().modtime > dfgen);
    if changed {
        Ok(())
    } else {
        Err(MrError::NoChange)
    }
}

/// The standard generator set for the four supported services.
pub fn standard_generators() -> Vec<Box<dyn Generator>> {
    vec![
        Box::new(hesiod::HesiodGenerator),
        Box::new(nfs::NfsGenerator),
        Box::new(mail::MailGenerator),
        Box::new(zephyr::ZephyrGenerator),
        Box::new(hostaccess::HostAccessGenerator),
    ]
}

/// Shared helper: iterate active users as `(row id, login, uid)`.
pub(crate) fn active_users(state: &MoiraState) -> Vec<(moira_db::RowId, String, i64)> {
    let t = state.db.table("users");
    let mut out: Vec<(moira_db::RowId, String, i64)> = t
        .iter()
        .filter(|(_, row)| row[t.col("status")] == moira_db::Value::Int(1))
        .map(|(id, row)| {
            (
                id,
                row[t.col("login")].as_str().to_owned(),
                row[t.col("uid")].as_int(),
            )
        })
        .collect();
    out.sort_by(|a, b| a.1.cmp(&b.1));
    out
}

/// Shared helper: active unix groups as `(list_id, name, gid)` sorted by
/// name.
pub(crate) fn active_groups(state: &MoiraState) -> Vec<(i64, String, i64)> {
    let t = state.db.table("list");
    let mut out: Vec<(i64, String, i64)> = t
        .iter()
        .filter(|(_, row)| row[t.col("active")].as_bool() && row[t.col("grouplist")].as_bool())
        .map(|(_, row)| {
            (
                row[t.col("list_id")].as_int(),
                row[t.col("name")].as_str().to_owned(),
                row[t.col("gid")].as_int(),
            )
        })
        .collect();
    out.sort_by(|a, b| a.1.cmp(&b.1));
    out
}

/// Shared helper: one pass over the membership graph building
/// `users_id -> [(group name, gid)]` for every active group, expanding
/// nested lists. Built once per generation; O(membership edges), not
/// O(users × groups).
pub(crate) fn group_map(state: &MoiraState) -> std::collections::HashMap<i64, Vec<(String, i64)>> {
    let mut map: std::collections::HashMap<i64, Vec<(String, i64)>> =
        std::collections::HashMap::new();
    for (list_id, name, gid) in active_groups(state) {
        let (users, _strings) =
            moira_core::queries::lists::expand_member_ids_recursive(state, list_id);
        for users_id in users {
            map.entry(users_id).or_default().push((name.clone(), gid));
        }
    }
    for groups in map.values_mut() {
        groups.sort();
        groups.dedup();
    }
    map
}
