//! Per-service file generators (§5.8).
//!
//! "To date, the DCM uses c programs, not SDFs, to implement the
//! construction of the server specific files. … The DCM then calls the
//! appropriate module when the update interval is reached." Each generator
//! extracts Moira data and converts it to the server-dependent format; a
//! common "error" is `MR_NO_CHANGE`, "indicating that nothing in the
//! database has changed and the data files were not re-built".

pub mod hesiod;
pub mod hostaccess;
pub mod incremental;
pub mod mail;
pub mod nfs;
pub mod zephyr;

use moira_common::errors::{MrError, MrResult};
use moira_core::state::MoiraState;
use moira_db::{GenCursor, RowId};

use crate::archive::Archive;
use incremental::DeltaPlan;

/// A service-file generator.
pub trait Generator: Send + Sync {
    /// The DCM service name this generator serves (uppercase).
    fn service(&self) -> &'static str;

    /// The relations whose modification forces regeneration; if none of
    /// them changed since the cached cursor, the cycle reports
    /// `MR_NO_CHANGE`.
    fn depends_on(&self) -> &'static [&'static str];

    /// Builds the archive of files for this service (the per-host variant
    /// receives the serverhost's `value3`; services with identical files
    /// everywhere ignore it).
    fn generate(&self, state: &MoiraState, value3: &str) -> MrResult<Archive>;

    /// The incremental maintenance plan for the shared (`value3 = ""`)
    /// form of this generator's output. The default — no sections — makes
    /// [`incremental::refresh`] fall back to a full `generate` every cycle,
    /// which is always correct; generators opt in by describing their files
    /// as delta-maintainable sections.
    fn delta_plan(&self) -> DeltaPlan {
        DeltaPlan::none()
    }

    /// True when the files are per-host rather than shared: the DCM must
    /// regenerate per target instead of reusing one archive.
    fn per_host(&self) -> bool {
        false
    }
}

/// Applies the staleness check against a previously cut generation cursor:
/// `Err(MR_NO_CHANGE)` when none of the generator's dependency relations
/// mutated since the cursor. Mutation generations, unlike the retired
/// `modtime > dfgen` comparison, never miss a write landing in the same
/// second the cursor was cut.
pub fn check_no_change(
    generator: &dyn Generator,
    state: &MoiraState,
    cursor: &GenCursor,
) -> MrResult<()> {
    debug_assert!(
        generator
            .depends_on()
            .iter()
            .all(|t| cursor.gens.contains_key(t)),
        "cursor must cover every dependency of {}",
        generator.service()
    );
    if cursor.unchanged_in(&state.db) {
        Err(MrError::NoChange)
    } else {
        Ok(())
    }
}

/// The explicit full-rebuild fallback of the incremental engine: the row ids
/// a full section rebuild visits. This is the only place the incremental
/// path is allowed to touch every row of a dependency table (CI greps for
/// it), and it funnels through `changed_since(0)` so the enumeration matches
/// what the delta path would see from a zero cursor.
pub(crate) fn full_rebuild_rows(state: &MoiraState, table: &str) -> Vec<RowId> {
    state
        .db
        .table(table)
        .changed_since(0)
        .iter()
        .filter_map(|c| match c {
            moira_db::RowChange::Upserted(id) => Some(*id),
            moira_db::RowChange::Deleted(_) => None,
        })
        .collect()
}

/// Reverse membership: every active unix group (active && grouplist) that
/// transitively contains user `users_id`, as sorted, deduplicated
/// `(name, gid)` — the per-user slice of [`group_map`], computed by climbing
/// the membership graph upward from the user instead of expanding every
/// group. O(ancestor edges) per user, which is what makes per-user delta
/// maintenance cheaper than a full `group_map` pass.
pub(crate) fn groups_of_user(state: &MoiraState, users_id: i64) -> Vec<(String, i64)> {
    use moira_db::Pred;
    let members = state.db.table("members");
    let mut seen: std::collections::HashSet<i64> = std::collections::HashSet::new();
    let mut frontier: Vec<(&'static str, i64)> = vec![("USER", users_id)];
    while let Some((ty, id)) = frontier.pop() {
        let pred = Pred::And(vec![
            Pred::Eq("member_id", id.into()),
            Pred::Eq("member_type", ty.into()),
        ]);
        for row in members.select(&pred) {
            let list_id = members.cell(row, "list_id").as_int();
            if seen.insert(list_id) {
                frontier.push(("LIST", list_id));
            }
        }
    }
    let lists = state.db.table("list");
    let mut out: Vec<(String, i64)> =
        seen.into_iter()
            .filter_map(|list_id| {
                let row = lists.select_one(&Pred::Eq("list_id", list_id.into()))?;
                (lists.cell(row, "active").as_bool() && lists.cell(row, "grouplist").as_bool())
                    .then(|| {
                        (
                            lists.cell(row, "name").as_str().to_owned(),
                            lists.cell(row, "gid").as_int(),
                        )
                    })
            })
            .collect();
    out.sort();
    out.dedup();
    out
}

/// The standard generator set for the four supported services.
pub fn standard_generators() -> Vec<Box<dyn Generator>> {
    vec![
        Box::new(hesiod::HesiodGenerator),
        Box::new(nfs::NfsGenerator),
        Box::new(mail::MailGenerator),
        Box::new(zephyr::ZephyrGenerator),
        Box::new(hostaccess::HostAccessGenerator),
    ]
}

/// Shared helper: iterate active users as `(row id, login, uid)`.
pub(crate) fn active_users(state: &MoiraState) -> Vec<(moira_db::RowId, String, i64)> {
    let t = state.db.table("users");
    let mut out: Vec<(moira_db::RowId, String, i64)> = t
        .iter()
        .filter(|(_, row)| row[t.col("status")] == moira_db::Value::Int(1))
        .map(|(id, row)| {
            (
                id,
                row[t.col("login")].as_str().to_owned(),
                row[t.col("uid")].as_int(),
            )
        })
        .collect();
    out.sort_by(|a, b| a.1.cmp(&b.1));
    out
}

/// Shared helper: active unix groups as `(list_id, name, gid)` sorted by
/// name.
pub(crate) fn active_groups(state: &MoiraState) -> Vec<(i64, String, i64)> {
    let t = state.db.table("list");
    let mut out: Vec<(i64, String, i64)> = t
        .iter()
        .filter(|(_, row)| row[t.col("active")].as_bool() && row[t.col("grouplist")].as_bool())
        .map(|(_, row)| {
            (
                row[t.col("list_id")].as_int(),
                row[t.col("name")].as_str().to_owned(),
                row[t.col("gid")].as_int(),
            )
        })
        .collect();
    out.sort_by(|a, b| a.1.cmp(&b.1));
    out
}

/// Shared helper: one pass over the membership graph building
/// `users_id -> [(group name, gid)]` for every active group, expanding
/// nested lists. Built once per generation; O(membership edges), not
/// O(users × groups).
pub(crate) fn group_map(state: &MoiraState) -> std::collections::HashMap<i64, Vec<(String, i64)>> {
    let mut map: std::collections::HashMap<i64, Vec<(String, i64)>> =
        std::collections::HashMap::new();
    for (list_id, name, gid) in active_groups(state) {
        let (users, _strings) =
            moira_core::queries::lists::expand_member_ids_recursive(state, list_id);
        for users_id in users {
            map.entry(users_id).or_default().push((name.clone(), gid));
        }
    }
    for groups in map.values_mut() {
        groups.sort();
        groups.dedup();
    }
    map
}
