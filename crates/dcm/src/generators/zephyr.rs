//! The Zephyr generator: per-class ACL files (§5.8.2).
//!
//! "For each existing ACE (even if it is empty), the membership will be
//! output, one entry per line. Recursive lists will be expanded." A `NONE`
//! ACE renders as the open wildcard `*.*@*`, matching the paper's example.

use moira_common::errors::MrResult;
use moira_core::queries::lists::expand_members_recursive;
use moira_core::state::MoiraState;
use moira_db::Pred;

use crate::archive::Archive;

use super::incremental::{DeltaPlan, Section, SectionKind};
use super::Generator;

/// Generator for the ZEPHYR service.
pub struct ZephyrGenerator;

/// The four ACL slots of a class, with their file suffixes.
pub const ACL_SLOTS: &[(&str, &str, &str)] = &[
    ("xmt_type", "xmt_id", "xmt"),
    ("sub_type", "sub_id", "sub"),
    ("iws_type", "iws_id", "iws"),
    ("iui_type", "iui_id", "iui"),
];

impl Generator for ZephyrGenerator {
    fn service(&self) -> &'static str {
        "ZEPHYR"
    }

    fn depends_on(&self) -> &'static [&'static str] {
        &["zephyr", "list", "members", "users", "strings"]
    }

    fn generate(&self, state: &MoiraState, _value3: &str) -> MrResult<Archive> {
        let mut archive = Archive::new();
        let t = state.db.table("zephyr");
        let mut rows: Vec<_> = t.iter().map(|(id, _)| id).collect();
        rows.sort_unstable();
        for row in rows {
            let class = t.cell(row, "class").render();
            for (type_col, id_col, suffix) in ACL_SLOTS {
                let ace_type = t.cell(row, type_col).as_str().to_owned();
                // "For each existing ACE (even if it is empty), the
                // membership will be output" — NONE slots have no ACE and
                // produce no file (the server treats absence as open).
                if ace_type == "NONE" {
                    continue;
                }
                let content = acl_file(state, &ace_type, t.cell(row, id_col).as_int());
                archive.add(&format!("{class}.{suffix}.acl"), content)?;
            }
        }
        Ok(archive)
    }

    fn delta_plan(&self) -> DeltaPlan {
        DeltaPlan {
            sections: vec![Section {
                file: "acls",
                driver: "zephyr",
                lookups: &["list", "members", "users", "strings"],
                kind: SectionKind::Members(frag_class),
                affected: None,
            }],
        }
    }
}

/// One class's ACL files, in [`ACL_SLOTS`] order.
fn frag_class(state: &MoiraState, row: moira_db::RowId) -> Vec<(String, Vec<u8>)> {
    let t = state.db.table("zephyr");
    let class = t.cell(row, "class").render();
    let mut out = Vec::new();
    for (type_col, id_col, suffix) in ACL_SLOTS {
        let ace_type = t.cell(row, type_col).as_str().to_owned();
        if ace_type == "NONE" {
            continue;
        }
        let content = acl_file(state, &ace_type, t.cell(row, id_col).as_int());
        out.push((format!("{class}.{suffix}.acl"), content.into_bytes()));
    }
    out
}

/// Renders one ACL file from an ACE.
pub fn acl_file(state: &MoiraState, ace_type: &str, ace_id: i64) -> String {
    match ace_type {
        "USER" => {
            let login = state
                .db
                .table("users")
                .select_one(&Pred::Eq("users_id", ace_id.into()))
                .map(|r| state.db.cell("users", r, "login").render())
                .unwrap_or_else(|| format!("#{ace_id}"));
            format!("{login}@ATHENA.MIT.EDU\n")
        }
        "LIST" => {
            let (users, strings) = expand_members_recursive(state, ace_id);
            let mut out = String::new();
            for u in users {
                out.push_str(&format!("{u}@ATHENA.MIT.EDU\n"));
            }
            for s in strings {
                out.push_str(&format!("{s}\n"));
            }
            out
        }
        // An unrestricted slot: the open wildcard of the paper's example.
        _ => "*.*@*\n".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moira_core::queries::testutil::state_with_admin;
    use moira_core::registry::Registry;
    use moira_core::state::Caller;

    fn setup() -> MoiraState {
        let (mut s, _) = state_with_admin("ops");
        let r = Registry::standard();
        let ops = Caller::new("ops", "test");
        let run = |s: &mut MoiraState, q: &str, args: &[&str]| {
            let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
            r.execute(s, &ops, q, &args).unwrap()
        };
        run(
            &mut s,
            "add_user",
            &["wheel", "7600", "/bin/csh", "W", "H", "", "1", "x", "STAFF"],
        );
        run(
            &mut s,
            "add_list",
            &["zctl", "1", "0", "0", "0", "0", "-1", "NONE", "NONE", ""],
        );
        run(
            &mut s,
            "add_list",
            &["zsub", "1", "0", "0", "0", "0", "-1", "NONE", "NONE", ""],
        );
        run(&mut s, "add_member_to_list", &["zctl", "USER", "wheel"]);
        run(&mut s, "add_member_to_list", &["zctl", "LIST", "zsub"]);
        run(&mut s, "add_member_to_list", &["zsub", "USER", "ops"]);
        run(
            &mut s,
            "add_zephyr_class",
            &[
                "MOIRA", "LIST", "zctl", "NONE", "NONE", "USER", "wheel", "NONE", "NONE",
            ],
        );
        s
    }

    #[test]
    fn only_existing_aces_produce_files() {
        let s = setup();
        let archive = ZephyrGenerator.generate(&s, "").unwrap();
        assert_eq!(
            archive.member_names(),
            vec!["MOIRA.xmt.acl", "MOIRA.iws.acl"]
        );
    }

    #[test]
    fn list_ace_expands_recursively() {
        let s = setup();
        let archive = ZephyrGenerator.generate(&s, "").unwrap();
        let xmt = String::from_utf8(archive.get("MOIRA.xmt.acl").unwrap().to_vec()).unwrap();
        assert!(xmt.contains("wheel@ATHENA.MIT.EDU\n"));
        assert!(
            xmt.contains("ops@ATHENA.MIT.EDU\n"),
            "recursive through zsub: {xmt}"
        );
    }

    #[test]
    fn user_ace_and_open_slots() {
        let s = setup();
        let archive = ZephyrGenerator.generate(&s, "").unwrap();
        let iws = String::from_utf8(archive.get("MOIRA.iws.acl").unwrap().to_vec()).unwrap();
        assert_eq!(iws, "wheel@ATHENA.MIT.EDU\n");
        // NONE slots produce no file; the server treats absence as open.
        assert!(archive.get("MOIRA.sub.acl").is_none());
        // The raw renderer still produces the open wildcard for NONE.
        assert_eq!(acl_file(&s, "NONE", 0), "*.*@*\n");
    }
}
