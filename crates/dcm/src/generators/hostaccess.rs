//! The per-machine password-file generator driven by HOSTACCESS.
//!
//! §6 (HOSTACCESS): "This table provides the necessary information for
//! Moira to be generating machine specific /etc/passwd files. It
//! associates an access control entity with a machine." And §7.0.7
//! (`get_server_host_access`): "This will be used to load the /.klogin
//! file on that machine."
//!
//! The paper describes the data but not the generator; this module
//! completes the design: a per-host `PASSWD` service whose archive carries
//! an `/etc/passwd` restricted to the machine's ACE (or all active users
//! when the machine has no HOSTACCESS entry) plus the `/.klogin` file
//! listing the Kerberos principals allowed in as root.

use moira_common::errors::MrResult;
use moira_core::queries::lists::expand_member_ids_recursive;
use moira_core::state::MoiraState;
use moira_db::Pred;

use crate::archive::Archive;

use super::incremental::{DeltaPlan, LineKey, Section, SectionKind};
use super::{active_users, Generator};

/// Generator for the PASSWD service (per host).
pub struct HostAccessGenerator;

impl Generator for HostAccessGenerator {
    fn service(&self) -> &'static str {
        "PASSWD"
    }

    fn depends_on(&self) -> &'static [&'static str] {
        &["users", "hostaccess", "list", "members"]
    }

    fn generate(&self, state: &MoiraState, _value3: &str) -> MrResult<Archive> {
        // Host-independent form: the unrestricted password file.
        let mut archive = Archive::new();
        archive.add("passwd", passwd_file(state, None))?;
        Ok(archive)
    }

    fn delta_plan(&self) -> DeltaPlan {
        DeltaPlan {
            sections: vec![Section {
                file: "passwd",
                driver: "users",
                lookups: &[],
                kind: SectionKind::Lines(frag_passwd),
                affected: None,
            }],
        }
    }

    fn per_host(&self) -> bool {
        true
    }
}

impl HostAccessGenerator {
    /// Builds the archive for one machine: its restricted `/etc/passwd`
    /// and its `/.klogin`.
    pub fn for_host(state: &MoiraState, mach_id: i64) -> MrResult<Archive> {
        let restriction = hostaccess_users(state, mach_id);
        let mut archive = Archive::new();
        archive.add("passwd", passwd_file(state, restriction.as_deref()))?;
        archive.add("klogin", klogin_file(state, mach_id))?;
        Ok(archive)
    }
}

/// One active user's line of the unrestricted password file.
fn frag_passwd(state: &MoiraState, row: moira_db::RowId) -> Option<(LineKey, String)> {
    let users = state.db.table("users");
    if users.cell(row, "status").as_int() != 1 {
        return None;
    }
    let login = users.cell(row, "login").as_str().to_owned();
    let uid = users.cell(row, "uid").as_int();
    let line = format!(
        "{login}:*:{uid}:101:{},,,:/mit/{login}:{}\n",
        users.cell(row, "fullname").render(),
        users.cell(row, "shell").render(),
    );
    Some(((0, login), line))
}

/// The `users_id` set admitted by a machine's HOSTACCESS ACE, or `None`
/// when the machine is unrestricted.
fn hostaccess_users(state: &MoiraState, mach_id: i64) -> Option<Vec<i64>> {
    let row = state
        .db
        .table("hostaccess")
        .select_one(&Pred::Eq("mach_id", mach_id.into()))?;
    let ace_type = state
        .db
        .cell("hostaccess", row, "acl_type")
        .as_str()
        .to_owned();
    let ace_id = state.db.cell("hostaccess", row, "acl_id").as_int();
    match ace_type.as_str() {
        "USER" => Some(vec![ace_id]),
        "LIST" => {
            let (users, _strings) = expand_member_ids_recursive(state, ace_id);
            Some(users)
        }
        // A NONE ACE admits nobody beyond root.
        _ => Some(Vec::new()),
    }
}

/// Renders a standard-format password file, optionally restricted to a
/// users_id set.
pub fn passwd_file(state: &MoiraState, restrict: Option<&[i64]>) -> String {
    let users = state.db.table("users");
    let mut out = String::new();
    for (row, login, uid) in active_users(state) {
        let users_id = users.cell(row, "users_id").as_int();
        if let Some(allowed) = restrict {
            if !allowed.contains(&users_id) {
                continue;
            }
        }
        out.push_str(&format!(
            "{login}:*:{uid}:101:{},,,:/mit/{login}:{}\n",
            users.cell(row, "fullname").render(),
            users.cell(row, "shell").render(),
        ));
    }
    out
}

/// Renders the `/.klogin` file: one `principal.root@REALM`-style line per
/// admitted administrator.
pub fn klogin_file(state: &MoiraState, mach_id: i64) -> String {
    let Some(users) = hostaccess_users(state, mach_id) else {
        return String::new();
    };
    let mut logins: Vec<String> = users
        .iter()
        .filter_map(|&users_id| {
            state
                .db
                .table("users")
                .select_one(&Pred::Eq("users_id", users_id.into()))
                .map(|r| state.db.cell("users", r, "login").render())
        })
        .collect();
    logins.sort();
    logins
        .into_iter()
        .map(|l| format!("{l}.root@ATHENA.MIT.EDU\n"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moira_core::queries::testutil::{add_test_machine, state_with_admin};
    use moira_core::registry::Registry;
    use moira_core::state::Caller;

    fn setup() -> (MoiraState, i64, i64) {
        let (mut s, _) = state_with_admin("ops");
        let r = Registry::standard();
        let root = Caller::root("t");
        let run = |s: &mut MoiraState, q: &str, args: &[&str]| {
            let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
            r.execute(s, &root, q, &args).unwrap()
        };
        let restricted = add_test_machine(&mut s, "DIALUP.MIT.EDU");
        let open = add_test_machine(&mut s, "PUBLIC.MIT.EDU");
        for (login, uid) in [("alice", "7001"), ("bob", "7002"), ("carol", "7003")] {
            run(
                &mut s,
                "add_user",
                &[login, uid, "/bin/csh", "L", "F", "", "1", "x", "STAFF"],
            );
        }
        run(
            &mut s,
            "add_list",
            &[
                "dialup-ok",
                "1",
                "0",
                "0",
                "0",
                "0",
                "-1",
                "NONE",
                "NONE",
                "",
            ],
        );
        run(
            &mut s,
            "add_member_to_list",
            &["dialup-ok", "USER", "alice"],
        );
        run(&mut s, "add_member_to_list", &["dialup-ok", "USER", "bob"]);
        run(
            &mut s,
            "add_server_host_access",
            &["DIALUP.MIT.EDU", "LIST", "dialup-ok"],
        );
        (s, restricted, open)
    }

    #[test]
    fn restricted_host_gets_only_its_ace() {
        let (s, restricted, _) = setup();
        let archive = HostAccessGenerator::for_host(&s, restricted).unwrap();
        let passwd = String::from_utf8(archive.get("passwd").unwrap().to_vec()).unwrap();
        assert!(passwd.contains("alice:*:7001"));
        assert!(passwd.contains("bob:*:7002"));
        assert!(!passwd.contains("carol"));
        assert!(!passwd.contains("ops"));
        let klogin = String::from_utf8(archive.get("klogin").unwrap().to_vec()).unwrap();
        assert_eq!(
            klogin,
            "alice.root@ATHENA.MIT.EDU\nbob.root@ATHENA.MIT.EDU\n"
        );
    }

    #[test]
    fn unrestricted_host_gets_everyone_and_empty_klogin() {
        let (s, _, open) = setup();
        let archive = HostAccessGenerator::for_host(&s, open).unwrap();
        let passwd = String::from_utf8(archive.get("passwd").unwrap().to_vec()).unwrap();
        for login in ["alice", "bob", "carol", "ops"] {
            assert!(passwd.contains(&format!("{login}:*:")), "{login}");
        }
        let klogin = String::from_utf8(archive.get("klogin").unwrap().to_vec()).unwrap();
        assert!(klogin.is_empty());
    }

    #[test]
    fn none_ace_admits_nobody() {
        let (mut s, restricted, _) = setup();
        let r = Registry::standard();
        r.execute(
            &mut s,
            &Caller::root("t"),
            "update_server_host_access",
            &["DIALUP.MIT.EDU".into(), "NONE".into(), "NONE".into()],
        )
        .unwrap();
        let archive = HostAccessGenerator::for_host(&s, restricted).unwrap();
        let passwd = String::from_utf8(archive.get("passwd").unwrap().to_vec()).unwrap();
        assert!(passwd.is_empty());
    }

    #[test]
    fn generate_without_host_is_unrestricted() {
        let (s, _, _) = setup();
        let archive = HostAccessGenerator.generate(&s, "").unwrap();
        let passwd = String::from_utf8(archive.get("passwd").unwrap().to_vec()).unwrap();
        assert!(passwd.contains("carol"));
    }
}
