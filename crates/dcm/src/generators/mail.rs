//! The mail generator: `/usr/lib/aliases` and the mail-hub password file
//! (§5.8.2).
//!
//! "This file contains both mailing lists and post office boxes. Mailing
//! lists are output only if the list is marked active…; Poboxes are only
//! output if the user's account is active." A second file, a complete
//! password file, keeps the mail hub's finger server informed.

use moira_common::errors::MrResult;
use moira_core::queries::lists::expand_members_recursive;
use moira_core::state::MoiraState;
use moira_db::Pred;

use crate::archive::Archive;

use super::incremental::{DeltaPlan, LineKey, Section, SectionKind};
use super::{active_users, Generator};

/// Generator for the MAIL service.
pub struct MailGenerator;

impl Generator for MailGenerator {
    fn service(&self) -> &'static str {
        "MAIL"
    }

    fn depends_on(&self) -> &'static [&'static str] {
        &["users", "list", "members", "strings", "machine"]
    }

    fn generate(&self, state: &MoiraState, _value3: &str) -> MrResult<Archive> {
        let mut archive = Archive::new();
        archive.add("aliases", aliases(state))?;
        archive.add("passwd", passwd(state))?;
        Ok(archive)
    }

    fn delta_plan(&self) -> DeltaPlan {
        DeltaPlan {
            sections: vec![
                // aliases = maillist blocks, then pobox routing lines; two
                // sections, same file. The list section names its own
                // driver as a lookup because `render_ace` and list
                // expansion read *other* list rows, so any list change
                // rebuilds the whole section rather than replaying rows.
                Section {
                    file: "aliases",
                    driver: "list",
                    lookups: &["list", "members", "users", "strings"],
                    kind: SectionKind::Lines(frag_maillist),
                    // A user edit only re-renders the lists that reach that
                    // user (by membership or ACE); list/member/string
                    // changes still rebuild the whole section.
                    affected: Some(lists_affected_by_user_changes),
                },
                Section {
                    file: "aliases",
                    driver: "users",
                    lookups: &["machine", "strings"],
                    kind: SectionKind::Lines(frag_pobox_routing),
                    affected: None,
                },
                Section {
                    file: "passwd",
                    driver: "users",
                    lookups: &[],
                    kind: SectionKind::Lines(frag_passwd),
                    affected: None,
                },
            ],
        }
    }
}

/// Narrows changed `users` rows to the `list` rows whose aliases block can
/// render differently: every list reachable upward through the membership
/// graph from a changed user, plus lists whose ACE names the user. Climbing
/// from the changed rows keeps a 1%-of-users edit from re-expanding every
/// mailing list. Deleted users fall back to a full section rebuild (their
/// membership rows are gone with them, so the climb has nothing to stand
/// on).
fn lists_affected_by_user_changes(
    state: &MoiraState,
    table: &'static str,
    changes: &[moira_db::RowChange],
) -> Option<Vec<moira_db::RowId>> {
    use std::collections::HashSet;
    if table != "users" {
        return None;
    }
    let users = state.db.table("users");
    let mut user_ids = Vec::with_capacity(changes.len());
    for change in changes {
        match change {
            moira_db::RowChange::Upserted(id) => {
                user_ids.push(users.cell(*id, "users_id").as_int())
            }
            moira_db::RowChange::Deleted(_) => return None,
        }
    }
    // Climb the membership graph from each changed user through the
    // indexed `member_id` column: per-entity selects, never a whole-table
    // pass (the delta-scan gate; E14 depends on this staying sublinear).
    let members = state.db.table("members");
    let mut affected: HashSet<i64> = HashSet::new();
    let mut frontier: Vec<(&str, i64)> = user_ids.iter().map(|&id| ("USER", id)).collect();
    while let Some((member_type, member_id)) = frontier.pop() {
        for row in state
            .db
            .select("members", &Pred::Eq("member_id", member_id.into()))
        {
            if members.cell(row, "member_type").as_str() != member_type {
                continue;
            }
            let list_id = members.cell(row, "list_id").as_int();
            if affected.insert(list_id) {
                frontier.push(("LIST", list_id));
            }
        }
    }
    let lists = state.db.table("list");
    let mut rows: HashSet<moira_db::RowId> = HashSet::new();
    for &list_id in &affected {
        rows.extend(
            state
                .db
                .select("list", &Pred::Eq("list_id", list_id.into())),
        );
    }
    // Lists whose ACE names a changed user render a different owner line.
    for &uid in &user_ids {
        for row in state.db.select("list", &Pred::Eq("acl_id", uid.into())) {
            if lists.cell(row, "acl_type").as_str() == "USER" {
                rows.insert(row);
            }
        }
    }
    Some(rows.into_iter().collect())
}

/// One maillist's aliases block (comment, owner alias, member line).
fn frag_maillist(state: &MoiraState, row: moira_db::RowId) -> Option<(LineKey, String)> {
    let lists = state.db.table("list");
    if !(lists.cell(row, "active").as_bool() && lists.cell(row, "maillist").as_bool()) {
        return None;
    }
    let name = lists.cell(row, "name").render();
    let desc = lists.cell(row, "desc").render();
    let list_id = lists.cell(row, "list_id").as_int();
    let mut text = String::new();
    if !desc.is_empty() {
        text.push_str(&format!("# {desc}\n"));
    }
    let (ace_type, ace_name) = moira_core::ace::render_ace(
        &state.db,
        lists.cell(row, "acl_type").as_str(),
        lists.cell(row, "acl_id").as_int(),
    );
    if ace_type != "NONE" {
        text.push_str(&format!("owner-{name}: {ace_name}\n"));
    }
    let (users, strings) = expand_members_recursive(state, list_id);
    let mut members = users;
    members.extend(strings);
    if members.is_empty() {
        text.push_str(&format!("{name}: /dev/null\n"));
    } else {
        text.push_str(&format!("{name}: {}\n", members.join(", ")));
    }
    Some(((0, name), text))
}

/// One active user's pobox routing line.
fn frag_pobox_routing(state: &MoiraState, row: moira_db::RowId) -> Option<(LineKey, String)> {
    let users = state.db.table("users");
    if users.cell(row, "status").as_int() != 1 {
        return None;
    }
    let login = users.cell(row, "login").as_str().to_owned();
    let line = match users.cell(row, "potype").as_str() {
        "POP" => {
            let po = po_shortname(state, users.cell(row, "pop_id").as_int());
            let short = po.split('.').next().unwrap_or(&po).to_owned();
            format!("{login}: {login}@{short}.LOCAL\n")
        }
        "SMTP" => {
            let addr =
                moira_core::queries::helpers::string_of(state, users.cell(row, "box_id").as_int());
            format!("{login}: {addr}\n")
        }
        _ => return None,
    };
    Some(((0, login), line))
}

/// One active user's mail-hub passwd line.
fn frag_passwd(state: &MoiraState, row: moira_db::RowId) -> Option<(LineKey, String)> {
    let users = state.db.table("users");
    if users.cell(row, "status").as_int() != 1 {
        return None;
    }
    let login = users.cell(row, "login").as_str().to_owned();
    let uid = users.cell(row, "uid").as_int();
    let line = format!(
        "{login}:*:{uid}:101:{},,,:/mit/{login}:{}\n",
        users.cell(row, "fullname").render(),
        users.cell(row, "shell").render(),
    );
    Some(((0, login), line))
}

/// Short host name for `@<po>.LOCAL` routing.
fn po_shortname(state: &MoiraState, mach_id: i64) -> String {
    state
        .db
        .table("machine")
        .select_one(&Pred::Eq("mach_id", mach_id.into()))
        .map(|r| state.db.cell("machine", r, "name").render())
        .unwrap_or_else(|| format!("#{mach_id}"))
}

/// The `/usr/lib/aliases` file.
pub fn aliases(state: &MoiraState) -> String {
    let mut out = String::new();
    // Active mailing lists first, with owner- aliases from their ACEs.
    let lists = state.db.table("list");
    let mut list_rows: Vec<_> = lists
        .iter()
        .filter(|(_, row)| {
            row[lists.col("active")].as_bool() && row[lists.col("maillist")].as_bool()
        })
        .map(|(id, _)| id)
        .collect();
    list_rows.sort_by_key(|&id| lists.cell(id, "name").as_str().to_owned());
    for row in list_rows {
        let name = lists.cell(row, "name").render();
        let desc = lists.cell(row, "desc").render();
        let list_id = lists.cell(row, "list_id").as_int();
        if !desc.is_empty() {
            out.push_str(&format!("# {desc}\n"));
        }
        let (ace_type, ace_name) = moira_core::ace::render_ace(
            &state.db,
            lists.cell(row, "acl_type").as_str(),
            lists.cell(row, "acl_id").as_int(),
        );
        if ace_type != "NONE" {
            out.push_str(&format!("owner-{name}: {ace_name}\n"));
        }
        let (users, strings) = expand_members_recursive(state, list_id);
        let mut members = users;
        members.extend(strings);
        if members.is_empty() {
            out.push_str(&format!("{name}: /dev/null\n"));
        } else {
            out.push_str(&format!("{name}: {}\n", members.join(", ")));
        }
    }
    // Pobox routing for active users.
    let users = state.db.table("users");
    for (row, login, _) in active_users(state) {
        match users.cell(row, "potype").as_str() {
            "POP" => {
                let po = po_shortname(state, users.cell(row, "pop_id").as_int());
                let short = po.split('.').next().unwrap_or(&po).to_owned();
                out.push_str(&format!("{login}: {login}@{short}.LOCAL\n"));
            }
            "SMTP" => {
                let addr = moira_core::queries::helpers::string_of(
                    state,
                    users.cell(row, "box_id").as_int(),
                );
                out.push_str(&format!("{login}: {addr}\n"));
            }
            _ => {}
        }
    }
    out
}

/// The standard-format password file for the mail hub's finger server —
/// "an entry for every active account at Athena".
pub fn passwd(state: &MoiraState) -> String {
    let users = state.db.table("users");
    let mut out = String::new();
    for (row, login, uid) in active_users(state) {
        out.push_str(&format!(
            "{login}:*:{uid}:101:{},,,:/mit/{login}:{}\n",
            users.cell(row, "fullname").render(),
            users.cell(row, "shell").render(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use moira_core::queries::testutil::state_with_admin;
    use moira_core::registry::Registry;
    use moira_core::state::Caller;

    fn setup() -> MoiraState {
        let (mut s, _) = state_with_admin("ops");
        let r = Registry::standard();
        let ops = Caller::new("ops", "test");
        let run = |s: &mut MoiraState, q: &str, args: &[&str]| {
            let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
            r.execute(s, &ops, q, &args).unwrap()
        };
        run(&mut s, "add_machine", &["ATHENA-PO-2.MIT.EDU", "VAX"]);
        for (login, uid) in [("babette", "6530"), ("paul", "6531"), ("smyser", "6532")] {
            run(
                &mut s,
                "add_user",
                &[
                    login, uid, "/bin/csh", "Last", "First", "", "1", login, "1990",
                ],
            );
        }
        run(
            &mut s,
            "set_pobox",
            &["babette", "POP", "ATHENA-PO-2.MIT.EDU"],
        );
        run(
            &mut s,
            "set_pobox",
            &["smyser", "SMTP", "smyser@media-lab.mit.edu"],
        );
        run(
            &mut s,
            "add_list",
            &[
                "video-users",
                "1",
                "1",
                "0",
                "1",
                "0",
                "-1",
                "USER",
                "paul",
                "Video Users",
            ],
        );
        run(
            &mut s,
            "add_member_to_list",
            &["video-users", "USER", "smyser"],
        );
        run(
            &mut s,
            "add_member_to_list",
            &["video-users", "USER", "paul"],
        );
        run(
            &mut s,
            "add_member_to_list",
            &["video-users", "STRING", "rubin@media-lab.mit.edu"],
        );
        // An inactive maillist must not be extracted.
        run(
            &mut s,
            "add_list",
            &[
                "dead-list",
                "0",
                "0",
                "0",
                "1",
                "0",
                "-1",
                "NONE",
                "NONE",
                "",
            ],
        );
        s
    }

    #[test]
    fn aliases_contents() {
        let s = setup();
        let a = aliases(&s);
        assert!(a.contains("# Video Users\n"));
        assert!(a.contains("owner-video-users: paul\n"));
        assert!(a.contains("video-users: paul, smyser, rubin@media-lab.mit.edu\n"));
        assert!(!a.contains("dead-list"));
        assert!(a.contains("babette: babette@ATHENA-PO-2.LOCAL\n"));
        assert!(a.contains("smyser: smyser@media-lab.mit.edu\n"));
        // paul has no pobox: no routing line "paul: ".
        assert!(!a.contains("\npaul: "));
    }

    #[test]
    fn nested_lists_expand() {
        let mut s = setup();
        let r = Registry::standard();
        let ops = Caller::new("ops", "t");
        let run = |s: &mut MoiraState, q: &str, args: &[&str]| {
            let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
            r.execute(s, &ops, q, &args).unwrap()
        };
        run(
            &mut s,
            "add_list",
            &[
                "umbrella", "1", "0", "0", "1", "0", "-1", "NONE", "NONE", "",
            ],
        );
        run(
            &mut s,
            "add_member_to_list",
            &["umbrella", "LIST", "video-users"],
        );
        run(
            &mut s,
            "add_member_to_list",
            &["umbrella", "USER", "babette"],
        );
        let a = aliases(&s);
        assert!(a.contains("umbrella: babette, paul, smyser, rubin@media-lab.mit.edu\n"));
    }

    #[test]
    fn passwd_file_standard_format() {
        let s = setup();
        let p = passwd(&s);
        assert!(p.contains("babette:*:6530:101:First  Last,,,:/mit/babette:/bin/csh\n"));
        assert_eq!(p.lines().count(), 4, "ops + three users");
    }

    #[test]
    fn generator_archive() {
        let s = setup();
        let archive = MailGenerator.generate(&s, "").unwrap();
        assert_eq!(archive.member_names(), vec!["aliases", "passwd"]);
    }
}
