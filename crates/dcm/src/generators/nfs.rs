//! The NFS generator: credentials, quotas, and directories files (§5.8.2).
//!
//! Unlike Hesiod, NFS files are per-host: each server gets the quotas and
//! directories for the partitions it exports, plus a credentials file whose
//! membership is either all active users or, when the serverhost's `value3`
//! names a list, that list's membership.

use moira_common::errors::MrResult;
use moira_core::ace::user_in_list;
use moira_core::state::MoiraState;
use moira_db::Pred;

use crate::archive::Archive;

use super::incremental::{DeltaPlan, LineKey, Section, SectionKind};
use super::{active_users, group_map, groups_of_user, Generator};

/// Generator for the NFS service. Host-specific: build with
/// [`NfsGenerator::for_host`] inside the DCM.
pub struct NfsGenerator;

impl Generator for NfsGenerator {
    fn service(&self) -> &'static str {
        "NFS"
    }

    fn depends_on(&self) -> &'static [&'static str] {
        &["users", "nfsquota", "nfsphys", "filesys", "list", "members"]
    }

    fn generate(&self, state: &MoiraState, value3: &str) -> MrResult<Archive> {
        // Without a host context only the shared credentials file exists.
        let mut archive = Archive::new();
        archive.add("credentials", credentials(state, value3))?;
        Ok(archive)
    }

    fn delta_plan(&self) -> DeltaPlan {
        DeltaPlan {
            sections: vec![Section {
                file: "credentials",
                driver: "users",
                lookups: &["list", "members"],
                kind: SectionKind::Lines(frag_credentials),
                affected: None,
            }],
        }
    }

    fn per_host(&self) -> bool {
        true
    }
}

impl NfsGenerator {
    /// Builds the archive for one NFS server host: credentials plus a
    /// `.quotas` and `.dirs` file per exported partition. Fails with
    /// `MR_EXISTS` when two partitions' directories collapse to the same
    /// member stem.
    pub fn for_host(state: &MoiraState, mach_id: i64, value3: &str) -> MrResult<Archive> {
        let mut archive = Archive::new();
        archive.add("credentials", credentials(state, value3))?;
        for prow in state
            .db
            .select("nfsphys", &Pred::Eq("mach_id", mach_id.into()))
        {
            let dir = state.db.cell("nfsphys", prow, "dir").render();
            let phys_id = state.db.cell("nfsphys", prow, "nfsphys_id").as_int();
            let stem = dir.trim_matches('/').replace('/', "_");
            archive.add(&format!("{stem}.quotas"), quotas_file(state, phys_id))?;
            archive.add(&format!("{stem}.dirs"), dirs_file(state, phys_id))?;
        }
        Ok(archive)
    }
}

/// Per-user credentials line for the shared (`value3 = ""`) form.
fn frag_credentials(state: &MoiraState, row: moira_db::RowId) -> Option<(LineKey, String)> {
    let users = state.db.table("users");
    if users.cell(row, "status").as_int() != 1 {
        return None;
    }
    let login = users.cell(row, "login").as_str().to_owned();
    let uid = users.cell(row, "uid").as_int();
    let users_id = users.cell(row, "users_id").as_int();
    let mut line = format!("{login}:{uid}");
    for (_, gid) in groups_of_user(state, users_id) {
        line.push_str(&format!(":{gid}"));
    }
    line.push('\n');
    Some(((0, login), line))
}

/// The credentials file: `login:uid:gid:gid…`, one line per user. "If this
/// field \[value3\] is non-blank, it specifies the list whose membership
/// will appear in the credentials file."
pub fn credentials(state: &MoiraState, value3: &str) -> String {
    let restrict = if value3.trim().is_empty() {
        None
    } else {
        state
            .db
            .table("list")
            .select_one(&Pred::Eq("name", value3.trim().into()))
            .map(|row| state.db.cell("list", row, "list_id").as_int())
    };
    let users = state.db.table("users");
    let groups = group_map(state);
    let mut out = String::new();
    for (row, login, uid) in active_users(state) {
        let users_id = users.cell(row, "users_id").as_int();
        if let Some(list_id) = restrict {
            if !user_in_list(&state.db, users_id, list_id) {
                continue;
            }
        }
        out.push_str(&login);
        out.push(':');
        out.push_str(&uid.to_string());
        if let Some(memberships) = groups.get(&users_id) {
            for (_, gid) in memberships {
                out.push_str(&format!(":{gid}"));
            }
        }
        out.push('\n');
    }
    out
}

/// The quotas file for one partition: `uid quota` per line.
pub fn quotas_file(state: &MoiraState, phys_id: i64) -> String {
    let mut lines: Vec<(i64, i64)> = Vec::new();
    for qrow in state
        .db
        .select("nfsquota", &Pred::Eq("phys_id", phys_id.into()))
    {
        let users_id = state.db.cell("nfsquota", qrow, "users_id").as_int();
        let quota = state.db.cell("nfsquota", qrow, "quota").as_int();
        if let Some(urow) = state
            .db
            .table("users")
            .select_one(&Pred::Eq("users_id", users_id.into()))
        {
            lines.push((state.db.cell("users", urow, "uid").as_int(), quota));
        }
    }
    lines.sort_unstable();
    lines
        .into_iter()
        .map(|(uid, q)| format!("{uid} {q}\n"))
        .collect()
}

/// The directories file: `name uid gid type` for autocreate lockers on the
/// partition.
pub fn dirs_file(state: &MoiraState, phys_id: i64) -> String {
    let mut lines = Vec::new();
    for frow in state
        .db
        .select("filesys", &Pred::Eq("phys_id", phys_id.into()))
    {
        let t = state.db.table("filesys");
        if !t.cell(frow, "createflg").as_bool() {
            continue;
        }
        let name = t.cell(frow, "name").render();
        let owner = t.cell(frow, "owner").as_int();
        let owners = t.cell(frow, "owners").as_int();
        let lockertype = t.cell(frow, "lockertype").render();
        let uid = state
            .db
            .table("users")
            .select_one(&Pred::Eq("users_id", owner.into()))
            .map(|r| state.db.cell("users", r, "uid").as_int())
            .unwrap_or(0);
        let gid = state
            .db
            .table("list")
            .select_one(&Pred::Eq("list_id", owners.into()))
            .map(|r| state.db.cell("list", r, "gid").as_int())
            .unwrap_or(0);
        lines.push(format!("{name} {uid} {gid} {lockertype}\n"));
    }
    lines.sort();
    lines.concat()
}

#[cfg(test)]
mod tests {
    use super::*;
    use moira_core::queries::testutil::state_with_admin;
    use moira_core::registry::Registry;
    use moira_core::state::Caller;

    fn setup() -> (MoiraState, i64) {
        let (mut s, _) = state_with_admin("ops");
        let r = Registry::standard();
        let ops = Caller::new("ops", "test");
        let run = |s: &mut MoiraState, q: &str, args: &[&str]| {
            let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
            r.execute(s, &ops, q, &args).unwrap()
        };
        run(&mut s, "add_machine", &["CHARON", "VAX"]);
        run(
            &mut s,
            "add_user",
            &[
                "mstai", "9296", "/bin/csh", "Stai", "M", "", "1", "x1", "1990",
            ],
        );
        run(
            &mut s,
            "add_user",
            &[
                "mtalford", "14956", "/bin/csh", "Talford", "M", "", "1", "x2", "1990",
            ],
        );
        run(
            &mut s,
            "add_user",
            &[
                "inactive", "9999", "/bin/csh", "Gone", "A", "", "0", "x3", "1990",
            ],
        );
        run(
            &mut s,
            "add_list",
            &[
                "mtalford", "1", "0", "0", "0", "1", "5904", "NONE", "NONE", "",
            ],
        );
        run(
            &mut s,
            "add_member_to_list",
            &["mtalford", "USER", "mtalford"],
        );
        run(
            &mut s,
            "add_list",
            &[
                "staff-cred",
                "1",
                "0",
                "0",
                "0",
                "0",
                "-1",
                "NONE",
                "NONE",
                "",
            ],
        );
        run(
            &mut s,
            "add_member_to_list",
            &["staff-cred", "USER", "mstai"],
        );
        run(
            &mut s,
            "add_nfsphys",
            &["CHARON", "/u1/lockers", "ra0c", "1", "0", "99999"],
        );
        run(
            &mut s,
            "add_filesys",
            &[
                "mtalford",
                "NFS",
                "CHARON",
                "/u1/lockers/mtalford",
                "/mit/mtalford",
                "w",
                "",
                "mtalford",
                "mtalford",
                "1",
                "HOMEDIR",
            ],
        );
        run(&mut s, "add_nfs_quota", &["mtalford", "mtalford", "300"]);
        let mach_id =
            s.db.cell(
                "machine",
                s.db.table("machine")
                    .select_one(&Pred::Eq("name", "CHARON".into()))
                    .unwrap(),
                "mach_id",
            )
            .as_int();
        (s, mach_id)
    }

    #[test]
    fn credentials_all_active() {
        let (s, _) = setup();
        let cred = credentials(&s, "");
        assert!(cred.contains("mtalford:14956:5904\n"));
        assert!(cred.contains("mstai:9296\n"));
        assert!(!cred.contains("inactive"));
    }

    #[test]
    fn credentials_restricted_by_value3() {
        let (s, _) = setup();
        let cred = credentials(&s, "staff-cred");
        assert!(cred.contains("mstai"));
        assert!(!cred.contains("mtalford"));
        // Unknown list name falls back to everyone.
        let cred = credentials(&s, "no-such-list");
        assert!(cred.contains("mtalford"));
    }

    #[test]
    fn quotas_and_dirs() {
        let (s, mach_id) = setup();
        let archive = NfsGenerator::for_host(&s, mach_id, "").unwrap();
        assert_eq!(
            archive.member_names(),
            vec!["credentials", "u1_lockers.quotas", "u1_lockers.dirs"]
        );
        let quotas = String::from_utf8(archive.get("u1_lockers.quotas").unwrap().to_vec()).unwrap();
        assert_eq!(quotas, "14956 300\n");
        let dirs = String::from_utf8(archive.get("u1_lockers.dirs").unwrap().to_vec()).unwrap();
        assert_eq!(dirs, "/u1/lockers/mtalford 14956 5904 HOMEDIR\n");
    }

    #[test]
    fn non_autocreate_lockers_excluded() {
        let (mut s, mach_id) = setup();
        let r = Registry::standard();
        r.execute(
            &mut s,
            &Caller::new("ops", "t"),
            "add_filesys",
            &[
                "noauto".into(),
                "NFS".into(),
                "CHARON".into(),
                "/u1/lockers/noauto".into(),
                "/mit/noauto".into(),
                "w".into(),
                "".into(),
                "mstai".into(),
                "mtalford".into(),
                "0".into(),
                "PROJECT".into(),
            ],
        )
        .unwrap();
        let archive = NfsGenerator::for_host(&s, mach_id, "").unwrap();
        let dirs = String::from_utf8(archive.get("u1_lockers.dirs").unwrap().to_vec()).unwrap();
        assert!(!dirs.contains("noauto"));
    }
}
