//! The DCM scan algorithm (§5.7.1).
//!
//! Each invocation: check the disable file, check `dcm_enable`, scan the
//! services table generating data files for services whose interval has
//! elapsed (with `MR_NO_CHANGE` suppression), then scan server-hosts and
//! push updates to every enabled host that has not been updated since the
//! data files were generated (or has `override` set). Locking, inprogress
//! flags, soft/hard error bookkeeping, and Zephyr/mail notification follow
//! the paper.
//!
//! Past the paper's ~20 hosts, the host scan runs hierarchically: update
//! legs execute on a bounded worker pool (`fanout_width`), and a
//! [`RackTopology`] splits each cycle into an *origin* wave (rack relays
//! and direct hosts) followed by a *leaf* wave gated on each rack's relay
//! — see [`crate::relay`]. Each leg is three phases: *prepare* (locks, DB
//! writes, archive, credentials — serial), *transfer* (network only — on
//! the pool), *record* (stats, cursor, retry ledger, DB — serial, in todo
//! order). With width 1 and no racks the composition is exactly the
//! legacy serial scan.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use moira_common::errors::MrResult;
use moira_core::registry::Registry;
use moira_core::state::{Caller, MoiraState, SharedState};
use moira_db::lock::LockMode;
use moira_db::Pred;
use parking_lot::Mutex;

use crate::archive::Archive;
use crate::generators::incremental::{self, CachedBuild};
use crate::generators::nfs::NfsGenerator;
use crate::generators::Generator;
use crate::host::SimHost;
use crate::net::{Network, PerfectNetwork};
use crate::relay::{CursorStore, RackTopology};
use crate::retry::{RetryBook, RetryPolicy, SoftOutcome};
use crate::update::{
    run_update_instrumented, Script, TransferStats, UpdateCredentials, UpdateError,
};

/// A notification emitted on hard failures — "a zephyr message is sent to
/// class MOIRA instance DCM", and for host failures "a zephyrgram and mail
/// are sent about it".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notice {
    /// `"zephyr"` or `"mail"`.
    pub kind: &'static str,
    /// Zephyr class / mail recipient.
    pub target: String,
    /// Zephyr instance (empty for mail).
    pub instance: String,
    /// Message body.
    pub message: String,
}

/// Counters across the DCM's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DcmStats {
    /// run_once invocations that actually scanned.
    pub scans: u64,
    /// Services whose files were (re)generated.
    pub generations: u64,
    /// Generation attempts suppressed by `MR_NO_CHANGE`.
    pub no_changes: u64,
    /// Refreshes that took the full-rebuild path (first run or cursor
    /// invalidation — restore, replay, plan-less generator).
    pub full_rebuilds: u64,
    /// Refreshes that replayed row deltas against a cached build.
    pub delta_builds: u64,
    /// Host updates attempted.
    pub updates_attempted: u64,
    /// Host updates confirmed successful.
    pub updates_succeeded: u64,
    /// Soft failures (retried later).
    pub soft_failures: u64,
    /// Hard failures (need operator reset).
    pub hard_failures: u64,
    /// Updates skipped because the backoff gate had not reopened (or the
    /// per-pass retry budget was spent).
    pub retries_deferred: u64,
    /// Soft-failure streaks escalated to operator-visible hard errors.
    pub escalations: u64,
    /// Updates refused because another update of the host was in progress.
    pub busy_conflicts: u64,
    /// Leaf legs deferred because their rack's relay failed or was
    /// unreachable — the rack retries next cycle; no streak is charged.
    pub relay_deferrals: u64,
}

/// What one `run_once` did.
#[derive(Debug, Clone, Default)]
pub struct DcmReport {
    /// DCM exited immediately (disable file or `dcm_enable` = 0).
    pub disabled: bool,
    /// Services whose data files were regenerated, with file count and
    /// total bytes.
    pub generated: Vec<(String, usize, usize)>,
    /// Services skipped as unchanged.
    pub unchanged: Vec<String>,
    /// Per-host update outcomes: `(service, host, result)`.
    pub updates: Vec<(String, String, Result<(), UpdateError>)>,
}

/// The Data Control Manager.
pub struct Dcm {
    state: SharedState,
    registry: Arc<Registry>,
    generators: HashMap<&'static str, Box<dyn Generator>>,
    /// The generated data files held on Moira's disk between runs, together
    /// with the section caches and generation cursor that keep the next
    /// refresh incremental.
    prepared: HashMap<String, CachedBuild>,
    /// Per-`(service, host)` delta cursors: the archive each host last
    /// confirmed installing — the patch base for the update protocol's
    /// line-level partial transfer — with its generation and base-CRC
    /// manifest. Dropping an entry only costs bytes (the next push ships
    /// whole members), never correctness.
    cursors: CursorStore,
    /// Reachable server hosts by canonical machine name.
    pub hosts: HashMap<String, Arc<Mutex<SimHost>>>,
    /// Notices sent (Zephyr + mail).
    pub notices: Vec<Notice>,
    /// The `/etc/nodcm` disable file.
    pub nodcm_file: bool,
    /// Lifetime counters.
    pub stats: DcmStats,
    /// Kerberos identity for update connections: `(kdc, client principal,
    /// client srvtab key)`, plus the authenticator nonce counter.
    kerberos: Option<(Arc<moira_krb::realm::Kdc>, String, moira_krb::cipher::Key)>,
    auth_nonce: u64,
    /// The network every update connection crosses (perfect by default;
    /// the simulator substitutes its fault-injecting fabric).
    net: Arc<dyn Network>,
    /// Soft-failure streak ledger driving the backoff gate.
    retry: RetryBook,
    /// Bounded concurrency of the host fan-out (1 = legacy serial scan).
    fanout_width: usize,
    /// Rack grouping driving relay election (empty = every host direct).
    topology: RackTopology,
}

impl Dcm {
    /// Creates a DCM with the standard generator set.
    pub fn new(state: SharedState, registry: Arc<Registry>) -> Dcm {
        let mut generators: HashMap<&'static str, Box<dyn Generator>> = HashMap::new();
        for g in crate::generators::standard_generators() {
            generators.insert(g.service(), g);
        }
        Dcm {
            state,
            registry,
            generators,
            prepared: HashMap::new(),
            cursors: CursorStore::new(),
            hosts: HashMap::new(),
            notices: Vec::new(),
            nodcm_file: false,
            stats: DcmStats::default(),
            kerberos: None,
            auth_nonce: 0,
            net: Arc::new(PerfectNetwork),
            retry: RetryBook::default(),
            fanout_width: 1,
            topology: RackTopology::new(),
        }
    }

    /// Routes every update connection through `net` — the simulator's hook
    /// for partition/drop/latency injection.
    pub fn set_network(&mut self, net: Arc<dyn Network>) {
        self.net = net;
    }

    /// Replaces the soft-failure retry policy (open streaks keep their
    /// scheduled retry times).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry.set_policy(policy);
    }

    /// The soft-failure retry ledger (inspection and operator resets).
    pub fn retry_book(&mut self) -> &mut RetryBook {
        &mut self.retry
    }

    /// Sets the bounded concurrency of the host fan-out (clamped to ≥ 1).
    /// Width 1 with no racks is exactly the legacy serial scan.
    pub fn set_fanout_width(&mut self, width: usize) {
        self.fanout_width = width.max(1);
    }

    /// The configured fan-out width.
    pub fn fanout_width(&self) -> usize {
        self.fanout_width
    }

    /// Installs the rack topology driving relay election.
    pub fn set_topology(&mut self, topology: RackTopology) {
        self.topology = topology;
    }

    /// The installed rack topology.
    pub fn topology(&self) -> &RackTopology {
        &self.topology
    }

    /// The per-host delta cursor store.
    pub fn cursors(&self) -> &CursorStore {
        &self.cursors
    }

    /// Mutable cursor access (operator resets; the fault-matrix tests'
    /// stale-cursor injection).
    pub fn cursors_mut(&mut self) -> &mut CursorStore {
        &mut self.cursors
    }

    /// Enables Kerberos mutual authentication for update connections
    /// (§5.9.2): the DCM authenticates to each host's `rcmd.<host>` service
    /// with its own srvtab identity.
    pub fn enable_kerberos(
        &mut self,
        kdc: Arc<moira_krb::realm::Kdc>,
        client: &str,
        key: moira_krb::cipher::Key,
    ) {
        self.kerberos = Some((kdc, client.to_owned(), key));
    }

    /// Obtains fresh credentials for one host, if Kerberos is enabled.
    fn credentials_for(&mut self, mach_name: &str) -> Option<UpdateCredentials> {
        let (kdc, client, key) = self.kerberos.as_ref()?;
        self.auth_nonce += 1;
        let service = format!("rcmd.{mach_name}");
        let (ticket, session) = kdc.srvtab_ticket(client, *key, &service).ok()?;
        let authenticator = moira_krb::ticket::make_authenticator(
            session,
            client,
            kdc.clock().now(),
            self.auth_nonce,
        );
        Some(UpdateCredentials {
            ticket,
            authenticator,
        })
    }

    /// Registers a target host.
    pub fn add_host(&mut self, host: Arc<Mutex<SimHost>>) {
        let name = host.lock().name.clone();
        self.hosts.insert(name, host);
    }

    /// Registers an additional (non-standard) generator.
    pub fn add_generator(&mut self, generator: Box<dyn Generator>) {
        self.generators.insert(generator.service(), generator);
    }

    /// The prepared archive for a service, if generated.
    pub fn prepared(&self, service: &str) -> Option<&Archive> {
        self.prepared.get(service).map(|b| b.archive())
    }

    /// Drops a service's cached build (tests exercising the rebuild path).
    pub fn drop_prepared(&mut self, service: &str) {
        self.prepared.remove(service);
    }

    fn caller() -> Caller {
        // "It connects to the database and authenticates as root."
        Caller::root("dcm")
    }

    fn exec(&self, state: &mut MoiraState, query: &str, args: &[String]) -> MrResult<()> {
        self.registry.execute(state, &Self::caller(), query, args)?;
        Ok(())
    }

    fn notify(&mut self, kind: &'static str, target: &str, instance: &str, message: String) {
        self.notices.push(Notice {
            kind,
            target: target.to_owned(),
            instance: instance.to_owned(),
            message,
        });
    }

    /// One DCM invocation (normally fired by cron).
    pub fn run_once(&mut self) -> DcmReport {
        let mut report = DcmReport::default();
        // "On startup, the DCM first checks for the existance of the
        // disable file /etc/nodcm; if this file exists, it exits quietly."
        if self.nodcm_file {
            report.disabled = true;
            return report;
        }
        // "Then it retrieves the value of dcm_enable…; if this value is
        // zero, it will exit, logging this action."
        let enabled = self.state.read().get_value("dcm_enable").unwrap_or(0);
        if enabled == 0 {
            report.disabled = true;
            self.notify("zephyr", "MOIRA", "DCM", "dcm_enable is 0; exiting".into());
            return report;
        }
        self.stats.scans += 1;
        // A DCM that crashed mid-run holds no locks after restart; the
        // inprogress flags it left behind are advisory only ("It is not
        // relyed upon for locking", §5.7.1).
        self.state.write().locks.release_all("dcm");

        // Snapshot the services passing the initial check.
        let services = self.eligible_services();
        for svc in &services {
            self.generation_phase(svc, &mut report);
        }
        for svc in &services {
            self.host_phase(svc, &mut report);
        }
        report
    }

    /// Services that are enabled, have no hard errors, a non-zero interval,
    /// and a generator module.
    fn eligible_services(&self) -> Vec<ServiceInfo> {
        let state = self.state.read();
        let t = state.db.table("servers");
        let mut out = Vec::new();
        for (row, _) in t.iter() {
            let name = t.cell(row, "name").as_str().to_owned();
            let info = ServiceInfo {
                interval_secs: t.cell(row, "update_int").as_int() * 60,
                target: t.cell(row, "target_file").as_str().to_owned(),
                script: t.cell(row, "script").as_str().to_owned(),
                replicated: t.cell(row, "type").as_str() == "REPLICAT",
                enabled: t.cell(row, "enable").as_bool(),
                harderror: t.cell(row, "harderror").as_int(),
                dfgen: t.cell(row, "dfgen").as_int(),
                dfcheck: t.cell(row, "dfcheck").as_int(),
                name,
            };
            if info.enabled
                && info.harderror == 0
                && info.interval_secs > 0
                && self.generators.contains_key(info.name.as_str())
            {
                out.push(info);
            }
        }
        out
    }

    fn generation_phase(&mut self, svc: &ServiceInfo, report: &mut DcmReport) {
        let now = self.state.read().now();
        // "it compares dfcheck and the update interval against the current
        // time."
        if now < svc.dfcheck + svc.interval_secs {
            return;
        }
        // "it will obtain an exclusive lock on the service, set the
        // inprogress flag, then run the generator."
        {
            let mut state = self.state.write();
            if state
                .locks
                .acquire("dcm", &format!("svc:{}", svc.name), LockMode::Exclusive)
                .is_err()
            {
                return;
            }
            let _ = self.exec(
                &mut state,
                "set_server_internal_flags",
                &[
                    svc.name.clone(),
                    svc.dfgen.to_string(),
                    svc.dfcheck.to_string(),
                    "1".into(),
                    "0".into(),
                    String::new(),
                ],
            );
        }
        let generator = self.generators.get(svc.name.as_str()).expect("eligible");
        // Refresh the cached build under one read guard: the cursor cut and
        // the delta reads describe a single database version.
        let prev = self.prepared.remove(&svc.name);
        let result = {
            let state = self.state.read();
            incremental::refresh(generator.as_ref(), &state, prev)
        };
        let (dfgen, dfcheck, harderr, errmsg) = match result {
            Ok(refresh) => {
                let outcome = if refresh.changed {
                    self.stats.generations += 1;
                    if refresh.full {
                        self.stats.full_rebuilds += 1;
                    } else {
                        self.stats.delta_builds += 1;
                    }
                    report.generated.push((
                        svc.name.clone(),
                        refresh.build.archive().len(),
                        refresh.build.archive().payload_size(),
                    ));
                    (now, now, 0, String::new())
                } else {
                    self.stats.no_changes += 1;
                    report.unchanged.push(svc.name.clone());
                    // "If the generator exits indicating that nothing has
                    // changed, only dfcheck is updated."
                    (svc.dfgen, now, 0, String::new())
                };
                self.prepared.insert(svc.name.clone(), refresh.build);
                outcome
            }
            Err(e) => {
                self.notify(
                    "zephyr",
                    "MOIRA",
                    "DCM",
                    format!("{}: generator hard error: {}", svc.name, e),
                );
                (svc.dfgen, svc.dfcheck, e.code(), e.to_string())
            }
        };
        let mut state = self.state.write();
        let _ = self.exec(
            &mut state,
            "set_server_internal_flags",
            &[
                svc.name.clone(),
                dfgen.to_string(),
                dfcheck.to_string(),
                "0".into(),
                harderr.to_string(),
                errmsg,
            ],
        );
        state.locks.release("dcm", &format!("svc:{}", svc.name));
    }

    fn host_phase(&mut self, svc: &ServiceInfo, report: &mut DcmReport) {
        // Re-read dfgen: generation may just have happened.
        let dfgen = {
            let state = self.state.read();
            state
                .db
                .table("servers")
                .select_one(&Pred::Eq("name", svc.name.clone().into()))
                .map(|row| state.db.cell("servers", row, "dfgen").as_int())
                .unwrap_or(0)
        };
        let per_host = svc.name == "NFS" || svc.name == "PASSWD";
        if !self.prepared.contains_key(&svc.name) && !per_host {
            if dfgen == 0 {
                // Never generated; nothing to push.
                return;
            }
            // Data files recorded as generated but missing (a Moira crash
            // lost them): rebuild from the database rather than ever
            // pushing an empty archive. "Crashes of the Moira machine will
            // result in (at worst) delays in updates."
            let generator = self.generators.get(svc.name.as_str()).expect("eligible");
            let rebuilt = {
                let state = self.state.read();
                incremental::refresh(generator.as_ref(), &state, None)
            };
            match rebuilt {
                Ok(refresh) => {
                    self.stats.full_rebuilds += 1;
                    self.prepared.insert(svc.name.clone(), refresh.build);
                }
                Err(_) => return,
            }
        }
        // "During the host scan, the DCM first locks the service … If the
        // service type is replicated … exclusively, otherwise … shared."
        let mode = if svc.replicated {
            LockMode::Exclusive
        } else {
            LockMode::Shared
        };
        {
            let mut state = self.state.write();
            if state
                .locks
                .acquire("dcm", &format!("svc:{}", svc.name), mode)
                .is_err()
            {
                return;
            }
        }
        let todo = self.hosts_needing_update(&svc.name, dfgen);
        // The shared (non-per-host) archive, cloned once per cycle into an
        // Arc every leg of the fan-out reads.
        let shared: Option<Arc<Archive>> = self
            .prepared
            .get(&svc.name)
            .map(|b| Arc::new(b.archive().clone()));
        if self.fanout_width <= 1 && self.topology.is_empty() {
            // The legacy serial scan: one host at a time, in todo order,
            // stopping at the first hard failure of a replicated service.
            let mut replicated_failed = false;
            for (mach_name, mach_id, value3) in todo {
                if replicated_failed {
                    break;
                }
                let result =
                    self.update_one_host(svc, dfgen, &mach_name, mach_id, &value3, shared.as_ref());
                if let Err(e) = &result {
                    if e.is_hard() && svc.replicated {
                        replicated_failed = true;
                        self.mark_replicated_failed(svc, dfgen, e);
                    }
                }
                report.updates.push((svc.name.clone(), mach_name, result));
            }
        } else {
            self.fanout_phase(svc, dfgen, &todo, shared.as_ref(), report);
        }
        let mut state = self.state.write();
        state.locks.release("dcm", &format!("svc:{}", svc.name));
    }

    /// "If there is a hard failure and the service is replicated, then the
    /// error code & message are also set in the service record so that no
    /// more updates will be attempted."
    fn mark_replicated_failed(&mut self, svc: &ServiceInfo, dfgen: i64, e: &UpdateError) {
        let mut state = self.state.write();
        let _ = self.exec(
            &mut state,
            "set_server_internal_flags",
            &[
                svc.name.clone(),
                dfgen.to_string(),
                dfgen.to_string(),
                "0".into(),
                e.code().to_string(),
                e.message(),
            ],
        );
    }

    /// Hosts that are enabled, have no hard errors, have not been
    /// successfully updated since the data files were generated (or have
    /// override set), and whose retry backoff gate — if a soft-failure
    /// streak is open — has reopened. `override` bypasses the gate: an
    /// operator demanding an immediate push gets one.
    fn hosts_needing_update(&mut self, service: &str, dfgen: i64) -> Vec<(String, i64, String)> {
        let state = self.state.read();
        let now = state.now();
        let t = state.db.table("serverhosts");
        let budget = self.retry.policy().per_run_budget;
        let mut retries_scheduled = 0usize;
        let mut out = Vec::new();
        for row in t.select(&Pred::Eq("service", service.into())) {
            let enabled = t.cell(row, "enable").as_bool();
            let hosterror = t.cell(row, "hosterror").as_int();
            let lts = t.cell(row, "lts").as_int();
            let override_ = t.cell(row, "override").as_bool();
            if !enabled || hosterror != 0 {
                continue;
            }
            if lts >= dfgen && !override_ {
                continue;
            }
            let mach_id = t.cell(row, "mach_id").as_int();
            let name = state
                .db
                .table("machine")
                .select_one(&Pred::Eq("mach_id", mach_id.into()))
                .map(|r| state.db.cell("machine", r, "name").render())
                .unwrap_or_default();
            if !override_ && self.retry.is_retry(service, &name) {
                if !self.retry.ready(service, &name, now) || retries_scheduled >= budget {
                    self.stats.retries_deferred += 1;
                    continue;
                }
                retries_scheduled += 1;
            }
            out.push((name, mach_id, t.cell(row, "value3").render()));
        }
        out
    }

    /// One host's update, serially: prepare, transfer, record. The legacy
    /// single-host path, kept as the oracle the fan-out must match.
    fn update_one_host(
        &mut self,
        svc: &ServiceInfo,
        dfgen: i64,
        mach_name: &str,
        mach_id: i64,
        value3: &str,
        shared: Option<&Arc<Archive>>,
    ) -> Result<(), UpdateError> {
        match self.prepare_update(svc, mach_name, mach_id, value3, shared, None) {
            Prepared::Busy => Err(UpdateError::Busy),
            Prepared::Failed(e) => self.record_update(
                svc,
                dfgen,
                mach_name,
                mach_id,
                None,
                false,
                Err(e),
                &TransferStats::default(),
            ),
            Prepared::Job(job) => {
                let (result, tstats) = run_transfer(self.net.as_ref(), &job);
                self.record_update(
                    svc,
                    dfgen,
                    &job.mach_name,
                    mach_id,
                    Some(&job.archive),
                    false,
                    result,
                    &tstats,
                )
            }
        }
    }

    /// The parallel push: plan the rack split, run the origin wave (relays
    /// and direct hosts), then the leaf wave for every rack whose relay
    /// succeeded. Racks whose relay leg failed are deferred whole — their
    /// leaves are not attempted, not charged a retry streak, and stay in
    /// the next cycle's todo list.
    fn fanout_phase(
        &mut self,
        svc: &ServiceInfo,
        dfgen: i64,
        todo: &[(String, i64, String)],
        shared: Option<&Arc<Archive>>,
        report: &mut DcmReport,
    ) {
        if todo.is_empty() {
            return;
        }
        let wall = Instant::now();
        let serving = self.serving_hosts(&svc.name);
        let names: Vec<String> = todo.iter().map(|(n, _, _)| n.clone()).collect();
        let plan = self.topology.plan(&names, &serving);
        let obs = self.state.read().obs.clone();
        obs.gauge("dcm.fanout.width").set(self.fanout_width as i64);
        obs.gauge("dcm.fanout.racks").set(plan.racks as i64);

        let mut replicated_failed = false;
        let origin_legs: Vec<(usize, Option<String>)> =
            plan.origin.iter().map(|&i| (i, None)).collect();
        let wave1 = self.fanout_wave(
            svc,
            dfgen,
            todo,
            &origin_legs,
            shared,
            report,
            &mut replicated_failed,
        );
        obs.counter("dcm.fanout.origin_legs").add(wave1.legs_run);

        let mut leaf_legs: Vec<(usize, Option<String>)> = Vec::new();
        for (i, relay_name) in &plan.leaves {
            if wave1.outcomes.get(relay_name) == Some(&false) {
                // The relay's own update failed this cycle, so nothing
                // correct could flow through it: defer the whole rack. The
                // failure is the relay's, not the leaves' — no retry
                // streak is charged and the leaves stay lts < dfgen.
                self.stats.relay_deferrals += 1;
                obs.counter("dcm.fanout.relay_deferred").inc();
                continue;
            }
            leaf_legs.push((*i, Some(relay_name.clone())));
        }
        let wave2 = self.fanout_wave(
            svc,
            dfgen,
            todo,
            &leaf_legs,
            shared,
            report,
            &mut replicated_failed,
        );
        obs.counter("dcm.fanout.relay_leaf_legs")
            .add(wave2.legs_run);
        // Wall versus summed leg time: wall < sum is the overlap proof the
        // black-hole test pins (one stuck host cannot serialize a cycle).
        obs.counter("dcm.fanout.legs_ns_total")
            .add(wave1.legs_ns + wave2.legs_ns);
        obs.counter("dcm.fanout.wall_ns")
            .add(wall.elapsed().as_nanos() as u64);
    }

    /// Hosts with an enabled server-host row for the service — the relay
    /// candidate pool for `RackTopology::plan`.
    fn serving_hosts(&self, service: &str) -> HashSet<String> {
        let state = self.state.read();
        let t = state.db.table("serverhosts");
        let mut out = HashSet::new();
        for row in t.select(&Pred::Eq("service", service.into())) {
            if !t.cell(row, "enable").as_bool() {
                continue;
            }
            let mach_id = t.cell(row, "mach_id").as_int();
            if let Some(r) = state
                .db
                .table("machine")
                .select_one(&Pred::Eq("mach_id", mach_id.into()))
            {
                out.insert(state.db.cell("machine", r, "name").render());
            }
        }
        out
    }

    /// One wave of legs: prepares each serially (DB writes, host locks,
    /// credentials — in todo order), transfers on the worker pool, records
    /// each outcome serially back in todo order. Returns per-host success
    /// for the caller's relay gating.
    #[allow(clippy::too_many_arguments)]
    fn fanout_wave(
        &mut self,
        svc: &ServiceInfo,
        dfgen: i64,
        todo: &[(String, i64, String)],
        legs: &[(usize, Option<String>)],
        shared: Option<&Arc<Archive>>,
        report: &mut DcmReport,
        replicated_failed: &mut bool,
    ) -> WaveResult {
        let mut wave = WaveResult::default();
        if legs.is_empty() || *replicated_failed {
            return wave;
        }
        let mut entries: Vec<(usize, Result<(), UpdateError>)> = Vec::new();
        let mut jobs: Vec<(usize, UpdateJob)> = Vec::new();
        for (i, relay_name) in legs {
            if *replicated_failed {
                break;
            }
            let (mach_name, mach_id, value3) = &todo[*i];
            let relay = relay_name.as_ref().and_then(|r| self.hosts.get(r).cloned());
            match self.prepare_update(svc, mach_name, *mach_id, value3, shared, relay) {
                Prepared::Busy => entries.push((*i, Err(UpdateError::Busy))),
                Prepared::Failed(e) => {
                    let result = self.record_update(
                        svc,
                        dfgen,
                        mach_name,
                        *mach_id,
                        None,
                        relay_name.is_some(),
                        Err(e),
                        &TransferStats::default(),
                    );
                    if let Err(err) = &result {
                        if err.is_hard() && svc.replicated {
                            *replicated_failed = true;
                            self.mark_replicated_failed(svc, dfgen, err);
                        }
                    }
                    wave.outcomes.insert(mach_name.clone(), result.is_ok());
                    entries.push((*i, result));
                }
                Prepared::Job(job) => jobs.push((*i, *job)),
            }
        }
        let mut results = self.run_wave(&jobs, svc.replicated);
        for (i, job) in jobs {
            match results.remove(&i) {
                Some((result, tstats, leg_ns)) => {
                    wave.legs_run += 1;
                    wave.legs_ns += leg_ns;
                    let recorded = self.record_update(
                        svc,
                        dfgen,
                        &job.mach_name,
                        job.mach_id,
                        Some(&job.archive),
                        job.relay.is_some(),
                        result,
                        &tstats,
                    );
                    if let Err(e) = &recorded {
                        if e.is_hard() && svc.replicated && !*replicated_failed {
                            *replicated_failed = true;
                            self.mark_replicated_failed(svc, dfgen, e);
                        }
                    }
                    wave.outcomes
                        .insert(job.mach_name.clone(), recorded.is_ok());
                    entries.push((i, recorded));
                }
                None => {
                    // The replicated stop flag tripped before any worker
                    // claimed this leg. Undo the prepare (inprogress bit,
                    // host lock) and leave the host for the next cycle —
                    // the legacy serial loop would not have attempted it.
                    self.abort_prepared(svc, &job.mach_name);
                }
            }
        }
        entries.sort_by_key(|&(i, _)| i);
        for (i, result) in entries {
            report
                .updates
                .push((svc.name.clone(), todo[i].0.clone(), result));
        }
        wave
    }

    /// Runs prepared jobs' network legs with bounded concurrency:
    /// `fanout_width` workers claim jobs off a shared counter. For a
    /// replicated service the first hard failure raises a stop flag —
    /// running legs finish, unclaimed jobs stay absent from the result
    /// map. Pure transfer work: no database or DCM state crosses into the
    /// pool.
    fn run_wave(
        &self,
        jobs: &[(usize, UpdateJob)],
        replicated: bool,
    ) -> HashMap<usize, (Result<(), UpdateError>, TransferStats, u64)> {
        if jobs.is_empty() {
            return HashMap::new();
        }
        let width = self.fanout_width.max(1).min(jobs.len());
        if width == 1 {
            // One worker is a serial loop; skip the thread scaffolding.
            let mut results = HashMap::with_capacity(jobs.len());
            for (i, job) in jobs {
                let t0 = Instant::now();
                let (result, tstats) = run_transfer(self.net.as_ref(), job);
                let hard = matches!(&result, Err(e) if e.is_hard());
                results.insert(*i, (result, tstats, t0.elapsed().as_nanos() as u64));
                if replicated && hard {
                    break;
                }
            }
            return results;
        }
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let results = Mutex::new(HashMap::with_capacity(jobs.len()));
        let net = self.net.as_ref();
        std::thread::scope(|scope| {
            for _ in 0..width {
                scope.spawn(|| loop {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some((i, job)) = jobs.get(k) else { break };
                    let t0 = Instant::now();
                    let (result, tstats) = run_transfer(net, job);
                    if replicated && matches!(&result, Err(e) if e.is_hard()) {
                        stop.store(true, Ordering::Release);
                    }
                    results
                        .lock()
                        .insert(*i, (result, tstats, t0.elapsed().as_nanos() as u64));
                });
            }
        });
        results.into_inner()
    }

    /// Reverses `prepare_update` for a leg that never ran: clears the
    /// inprogress bit (leaving `lts` at 0, so the host stays in the next
    /// cycle's todo list with no error recorded) and releases the host
    /// lock. Matches the legacy serial loop, which simply never prepared
    /// hosts after a replicated stop.
    fn abort_prepared(&mut self, svc: &ServiceInfo, mach_name: &str) {
        let now = self.state.read().now();
        let mut state = self.state.write();
        let _ = self.exec(
            &mut state,
            "set_server_host_internal",
            &[
                svc.name.clone(),
                mach_name.to_owned(),
                "0".into(),
                "0".into(),
                "0".into(),
                "0".into(),
                String::new(),
                now.to_string(),
                "0".into(),
            ],
        );
        state
            .locks
            .release("dcm", &format!("host:{}:{}", svc.name, mach_name));
    }

    /// Phase 1 of a leg — everything that must stay serial on the DCM
    /// thread: the attempt counter, the exclusive host lock and inprogress
    /// bit, the archive build, and fresh credentials (the authenticator
    /// nonce is a sequence).
    fn prepare_update(
        &mut self,
        svc: &ServiceInfo,
        mach_name: &str,
        mach_id: i64,
        value3: &str,
        shared: Option<&Arc<Archive>>,
        relay: Option<Arc<Mutex<SimHost>>>,
    ) -> Prepared {
        self.stats.updates_attempted += 1;
        let now = self.state.read().now();
        // Exclusive lock on the host + inprogress bit.
        {
            let mut state = self.state.write();
            if state
                .locks
                .acquire(
                    "dcm",
                    &format!("host:{}:{}", svc.name, mach_name),
                    LockMode::Exclusive,
                )
                .is_err()
            {
                // Another update of this host holds the lock: a distinct
                // soft conflict, not a network timeout. The colliding pass
                // simply retries later; no failure streak is charged.
                self.stats.busy_conflicts += 1;
                return Prepared::Busy;
            }
            let _ = self.exec(
                &mut state,
                "set_server_host_internal",
                &[
                    svc.name.clone(),
                    mach_name.to_owned(),
                    "0".into(),
                    "0".into(),
                    "1".into(),
                    "0".into(),
                    String::new(),
                    now.to_string(),
                    "0".into(),
                ],
            );
        }

        // Build the archive: per-host for NFS and PASSWD, shared otherwise.
        // A generator failure here (e.g. colliding member stems) is bad data
        // for this host — a soft error, retried once the data is fixed.
        let archive = if svc.name == "NFS" {
            let state = self.state.read();
            NfsGenerator::for_host(&state, mach_id, value3)
                .map(Arc::new)
                .map_err(|_| UpdateError::BadData)
        } else if svc.name == "PASSWD" {
            let state = self.state.read();
            crate::generators::hostaccess::HostAccessGenerator::for_host(&state, mach_id)
                .map(Arc::new)
                .map_err(|_| UpdateError::BadData)
        } else {
            Ok(shared.cloned().unwrap_or_default())
        };

        let credentials = self.credentials_for(mach_name);
        match archive {
            Ok(archive) => {
                let script = Script::standard(&archive, &install_dir(&svc.name), &svc.script);
                Prepared::Job(Box::new(UpdateJob {
                    mach_name: mach_name.to_owned(),
                    mach_id,
                    prev: self.cursors.base(&svc.name, mach_name),
                    host: self.hosts.get(mach_name).cloned(),
                    relay,
                    target: svc.target.clone(),
                    script,
                    credentials,
                    archive,
                }))
            }
            // The host lock stays held: recording the failure releases it,
            // exactly as the legacy single-phase path did.
            Err(e) => Prepared::Failed(e),
        }
    }

    /// Phase 3 of a leg — everything after the network returns, serial on
    /// the DCM thread: obs counters, the cursor advance, retry-ledger and
    /// notice bookkeeping, the final server-host row write, and the host
    /// lock release.
    #[allow(clippy::too_many_arguments)]
    fn record_update(
        &mut self,
        svc: &ServiceInfo,
        dfgen: i64,
        mach_name: &str,
        mach_id: i64,
        archive: Option<&Arc<Archive>>,
        via_relay: bool,
        result: Result<(), UpdateError>,
        tstats: &TransferStats,
    ) -> Result<(), UpdateError> {
        // Patch-versus-whole byte split (the §5.7 partial-transfer savings)
        // and, when a leg broke, a per-leg retry count: the attempt that
        // follows the failure is charged to the leg that caused it. The
        // registry handle is an Arc clone taken under a statement-scoped
        // guard; the recording itself happens lock-free.
        let obs = self.state.read().obs.clone();
        obs.counter("dcm.transfer.patch_members")
            .add(tstats.patch_members);
        obs.counter("dcm.transfer.patch_bytes")
            .add(tstats.patch_bytes);
        obs.counter("dcm.transfer.full_members")
            .add(tstats.full_members);
        obs.counter("dcm.transfer.full_bytes")
            .add(tstats.full_bytes);
        // The same split keyed by tier — relay-gated leaf legs versus
        // direct origin legs — so a scaled deployment sees where its bytes
        // flow.
        let tier = if via_relay { "relay" } else { "origin" };
        obs.counter(&format!("dcm.transfer.{tier}.patch_members"))
            .add(tstats.patch_members);
        obs.counter(&format!("dcm.transfer.{tier}.patch_bytes"))
            .add(tstats.patch_bytes);
        obs.counter(&format!("dcm.transfer.{tier}.full_members"))
            .add(tstats.full_members);
        obs.counter(&format!("dcm.transfer.{tier}.full_bytes"))
            .add(tstats.full_bytes);
        if let Some(leg) = tstats.failed_leg {
            obs.counter(&format!("dcm.retry.leg.{leg}")).inc();
            if leg == "relay" {
                // The leaf's rack relay was unreachable at transfer time:
                // the rack is effectively deferred, same as a plan-time
                // deferral.
                self.stats.relay_deferrals += 1;
                obs.counter("dcm.fanout.relay_deferred").inc();
            }
        }
        // Only a confirmed install advances the patch cursor: on any
        // failure the host may hold the old archive, the new one, or a
        // torn mix — the base CRCs in its next stale reply sort that out.
        if result.is_ok() {
            if let Some(archive) = archive {
                self.cursors
                    .record(&svc.name, mach_name, dfgen, archive.clone());
            }
        }

        // Record the outcome.
        let now = self.state.read().now();
        let (success, hosterror, errmsg, lts) = match &result {
            Ok(()) => {
                self.stats.updates_succeeded += 1;
                self.retry.record_success(&svc.name, mach_name);
                (true, 0, String::new(), now)
            }
            Err(e) if e.is_hard() => {
                self.stats.hard_failures += 1;
                // A hard error gates on `hosterror` until an operator
                // resets it; the reset deserves a clean retry slate.
                self.retry.reset(&svc.name, mach_name);
                self.notify(
                    "zephyr",
                    "MOIRA",
                    "DCM",
                    format!("{} on {}: {}", svc.name, mach_name, e.message()),
                );
                self.notify(
                    "mail",
                    "moira-maintainers",
                    "",
                    format!(
                        "hard failure updating {} on {}: {}",
                        svc.name,
                        mach_name,
                        e.message()
                    ),
                );
                (false, e.code(), e.message(), 0)
            }
            Err(e) => {
                self.stats.soft_failures += 1;
                match self.retry.record_soft_failure(&svc.name, mach_name, now) {
                    SoftOutcome::Backoff { .. } => (false, 0, e.message(), 0),
                    SoftOutcome::Escalate { consecutive } => {
                        // A streak this long is not transient. Promote it
                        // to an operator-visible hard error: set hosterror,
                        // page through Zephyr, mail the maintainers.
                        self.stats.escalations += 1;
                        let msg = format!(
                            "escalated after {consecutive} consecutive soft failures: {}",
                            e.message()
                        );
                        self.notify(
                            "zephyr",
                            "MOIRA",
                            "DCM",
                            format!("{} on {}: {}", svc.name, mach_name, msg),
                        );
                        self.notify(
                            "mail",
                            "moira-maintainers",
                            "",
                            format!("{} on {}: {}", svc.name, mach_name, msg),
                        );
                        (false, e.code(), msg, 0)
                    }
                }
            }
        };
        let mut state = self.state.write();
        let sh_row = state.db.select(
            "serverhosts",
            &Pred::Eq("service", svc.name.clone().into()).and(Pred::Eq("mach_id", mach_id.into())),
        );
        let prev_lts = sh_row
            .first()
            .map(|&r| state.db.cell("serverhosts", r, "lts").as_int())
            .unwrap_or(0);
        let _ = self.exec(
            &mut state,
            "set_server_host_internal",
            &[
                svc.name.clone(),
                mach_name.to_owned(),
                "0".into(), // override cleared by an attempt
                if success { "1" } else { "0" }.into(),
                "0".into(), // inprogress cleared
                hosterror.to_string(),
                errmsg,
                now.to_string(),
                if success {
                    lts.to_string()
                } else {
                    prev_lts.to_string()
                },
            ],
        );
        state
            .locks
            .release("dcm", &format!("host:{}:{}", svc.name, mach_name));
        result
    }
}

/// What `prepare_update` produced for one leg.
enum Prepared {
    /// Locked, prepared, and ready for its network legs.
    Job(Box<UpdateJob>),
    /// Host lock held by someone else; nothing was written or locked.
    Busy,
    /// Archive build failed. The host lock and inprogress bit are still
    /// held — recording the failure releases them.
    Failed(UpdateError),
}

/// Everything one transfer leg needs, self-contained so it can cross onto
/// a pool worker: no `&Dcm`, no database guard, no shared mutable state.
struct UpdateJob {
    mach_name: String,
    mach_id: i64,
    /// The archive to install.
    archive: Arc<Archive>,
    /// The host's cursor base — the patch reference, if any.
    prev: Option<Arc<Archive>>,
    credentials: Option<UpdateCredentials>,
    host: Option<Arc<Mutex<SimHost>>>,
    /// The rack relay this leaf leg is gated on, if any.
    relay: Option<Arc<Mutex<SimHost>>>,
    target: String,
    script: Script,
}

/// What one fan-out wave reports back to `fanout_phase`.
#[derive(Default)]
struct WaveResult {
    /// Host → whether its update succeeded (hosts attempted this wave).
    outcomes: HashMap<String, bool>,
    /// Legs actually transferred.
    legs_run: u64,
    /// Summed per-leg wall time — against the wave's own wall clock, the
    /// overlap proof.
    legs_ns: u64,
}

/// Phase 2 of a leg — the network. Runs off the DCM thread on the fan-out
/// pool; touches only the job, the network, and the simulated hosts.
fn run_transfer(net: &dyn Network, job: &UpdateJob) -> (Result<(), UpdateError>, TransferStats) {
    let mut tstats = TransferStats::default();
    // A leaf leg first probes its rack relay. A dead relay costs this one
    // check — not a full per-leaf timeout — and is charged to the "relay"
    // leg so the retry ledger and obs can tell the tiers apart. The guard
    // is statement-scoped: dropped before the leaf host locks.
    if let Some(relay) = &job.relay {
        let relay_up = relay.lock().reachable();
        if !relay_up {
            tstats.failed_leg = Some("relay");
            return (Err(UpdateError::HostDown), tstats);
        }
    }
    let outcome = match &job.host {
        Some(host) => {
            let mut h = host.lock();
            run_update_instrumented(
                net,
                &mut h,
                job.credentials.as_ref(),
                &job.archive,
                job.prev.as_deref(),
                &job.target,
                &job.script,
                &mut tstats,
            )
        }
        None => {
            // No such host is a connection failure as far as the retry
            // ledger is concerned.
            tstats.failed_leg = Some("connect");
            Err(UpdateError::HostDown)
        }
    };
    (outcome, tstats)
}

/// Where a service's files are installed on its hosts (the `target` is the
/// transfer landing spot; this is the live directory the script swaps files
/// into).
pub fn install_dir(service: &str) -> String {
    format!("/var/{}", service.to_ascii_lowercase())
}

#[derive(Debug, Clone)]
struct ServiceInfo {
    name: String,
    interval_secs: i64,
    target: String,
    script: String,
    replicated: bool,
    enabled: bool,
    harderror: i64,
    dfgen: i64,
    dfcheck: i64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use moira_core::queries::testutil::{add_test_machine, state_with_admin};
    use moira_core::seed::seed_capacls;

    type SharedHosts = Vec<Arc<Mutex<SimHost>>>;

    /// A deployment with one HESIOD service on two hosts.
    fn setup() -> (Dcm, SharedState, SharedHosts) {
        let (mut s, _) = state_with_admin("ops");
        let registry = Arc::new(Registry::standard());
        let _ = seed_capacls; // capacls already seeded by state_with_admin
        let ops = Caller::new("ops", "test");
        let run = |s: &mut MoiraState, q: &str, args: &[&str]| {
            let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
            registry.execute(s, &ops, q, &args).unwrap()
        };
        add_test_machine(&mut s, "KIWI.MIT.EDU");
        add_test_machine(&mut s, "SUOMI.MIT.EDU");
        run(
            &mut s,
            "add_user",
            &[
                "babette", "6530", "/bin/csh", "F", "H", "C", "1", "x", "1990",
            ],
        );
        run(
            &mut s,
            "add_server_info",
            &[
                "HESIOD",
                "360",
                "/tmp/hesiod.out",
                "restart-hesiod",
                "REPLICAT",
                "1",
                "NONE",
                "NONE",
            ],
        );
        run(
            &mut s,
            "add_server_host_info",
            &["HESIOD", "KIWI.MIT.EDU", "1", "0", "0", ""],
        );
        run(
            &mut s,
            "add_server_host_info",
            &["HESIOD", "SUOMI.MIT.EDU", "1", "0", "0", ""],
        );
        let state = moira_core::state::shared(s);
        let mut dcm = Dcm::new(state.clone(), registry);
        let hosts: Vec<Arc<Mutex<SimHost>>> = ["KIWI.MIT.EDU", "SUOMI.MIT.EDU"]
            .iter()
            .map(|n| Arc::new(Mutex::new(SimHost::new(n))))
            .collect();
        for h in &hosts {
            dcm.add_host(h.clone());
        }
        (dcm, state, hosts)
    }

    #[test]
    fn disable_file_and_value() {
        let (mut dcm, state, _) = setup();
        dcm.nodcm_file = true;
        assert!(dcm.run_once().disabled);
        assert_eq!(dcm.stats.scans, 0);
        dcm.nodcm_file = false;
        state.write().set_value("dcm_enable", 0);
        let report = dcm.run_once();
        assert!(report.disabled);
        assert!(dcm.notices.iter().any(|n| n.message.contains("dcm_enable")));
        state.write().set_value("dcm_enable", 1);
        assert!(!dcm.run_once().disabled);
    }

    #[test]
    fn first_run_generates_and_updates_all_hosts() {
        let (mut dcm, _state, hosts) = setup();
        let report = dcm.run_once();
        assert_eq!(report.generated.len(), 1);
        assert_eq!(report.generated[0].0, "HESIOD");
        assert_eq!(report.generated[0].1, 11, "eleven hesiod files");
        assert_eq!(report.updates.len(), 2);
        assert!(report.updates.iter().all(|(_, _, r)| r.is_ok()));
        for h in &hosts {
            let h = h.lock();
            assert!(h.read_file("/var/hesiod/passwd.db").is_some());
            assert_eq!(h.exec_log, vec!["restart-hesiod"]);
        }
    }

    #[test]
    fn second_run_within_interval_does_nothing() {
        let (mut dcm, state, _) = setup();
        dcm.run_once();
        state.write().db.clock().advance(60); // one minute
        let report = dcm.run_once();
        assert!(report.generated.is_empty());
        assert!(
            report.unchanged.is_empty(),
            "interval not yet elapsed: no check at all"
        );
        assert!(
            report.updates.is_empty(),
            "hosts already successful since dfgen"
        );
    }

    #[test]
    fn no_change_suppression_after_interval() {
        let (mut dcm, state, _) = setup();
        dcm.run_once();
        state.write().db.clock().advance(7 * 3600); // past the 6h interval
        let report = dcm.run_once();
        assert!(report.generated.is_empty());
        assert_eq!(report.unchanged, vec!["HESIOD"]);
        assert_eq!(dcm.stats.no_changes, 1);
        // dfcheck advanced even though nothing was built.
        let s = state.read();
        let row =
            s.db.table("servers")
                .select_one(&Pred::Eq("name", "HESIOD".into()))
                .unwrap();
        assert_eq!(s.db.cell("servers", row, "dfcheck").as_int(), s.now());
        assert!(s.db.cell("servers", row, "dfgen").as_int() < s.now());
    }

    /// Regression: a mutation committed in the same second the data files
    /// were generated (`t == dfgen`) must still trigger regeneration. The
    /// old staleness test compared wall-clock modtimes against `dfgen` with
    /// seconds granularity, so a same-second write was silently skipped;
    /// the generation cursor counts every mutation and cannot miss it.
    #[test]
    fn same_second_mutation_still_regenerates() {
        let (mut dcm, state, hosts) = setup();
        dcm.run_once();
        {
            // No clock advance: this lands at exactly t == dfgen.
            let mut s = state.write();
            Registry::standard()
                .execute(
                    &mut s,
                    &Caller::new("ops", "t"),
                    "add_user",
                    &[
                        "samesec".into(),
                        "7100".into(),
                        "/bin/csh".into(),
                        "S".into(),
                        "S".into(),
                        "".into(),
                        "1".into(),
                        "x".into(),
                        "1990".into(),
                    ],
                )
                .unwrap();
        }
        state.write().db.clock().advance(7 * 3600);
        let report = dcm.run_once();
        assert_eq!(
            report.generated.len(),
            1,
            "same-second mutation must not be lost to NO_CHANGE"
        );
        assert!(report.unchanged.is_empty());
        assert_eq!(dcm.stats.delta_builds, 1, "and it rode the delta path");
        let h = hosts[0].lock();
        let passwd =
            String::from_utf8(h.read_file("/var/hesiod/passwd.db").unwrap().to_vec()).unwrap();
        assert!(passwd.contains("samesec"));
    }

    #[test]
    fn change_triggers_regeneration_and_push() {
        let (mut dcm, state, hosts) = setup();
        dcm.run_once();
        {
            let mut s = state.write();
            s.db.clock().advance(7 * 3600);
            let registry = Registry::standard();
            registry
                .execute(
                    &mut s,
                    &Caller::new("ops", "t"),
                    "add_user",
                    &[
                        "newbie".into(),
                        "7000".into(),
                        "/bin/csh".into(),
                        "N".into(),
                        "B".into(),
                        "".into(),
                        "1".into(),
                        "x".into(),
                        "1990".into(),
                    ],
                )
                .unwrap();
        }
        let report = dcm.run_once();
        assert_eq!(report.generated.len(), 1);
        assert_eq!(report.updates.len(), 2);
        let h = hosts[0].lock();
        let passwd =
            String::from_utf8(h.read_file("/var/hesiod/passwd.db").unwrap().to_vec()).unwrap();
        assert!(passwd.contains("newbie"));
    }

    #[test]
    fn down_host_retried_until_up() {
        let (mut dcm, state, hosts) = setup();
        hosts[1].lock().up = false;
        let report = dcm.run_once();
        let failed: Vec<_> = report
            .updates
            .iter()
            .filter(|(_, _, r)| r.is_err())
            .collect();
        assert_eq!(failed.len(), 1);
        assert_eq!(failed[0].2, Err(UpdateError::HostDown));
        assert_eq!(dcm.stats.soft_failures, 1);
        // Soft: hosterror stays 0, so the next run retries.
        {
            let s = state.read();
            let t = s.db.table("serverhosts");
            for (row, _) in t.iter() {
                assert_eq!(t.cell(row, "hosterror").as_int(), 0);
            }
        }
        hosts[1].lock().reboot();
        state.write().db.clock().advance(60);
        let report = dcm.run_once();
        // Only the failed host is retried.
        assert_eq!(report.updates.len(), 1);
        assert_eq!(report.updates[0].1, "SUOMI.MIT.EDU");
        assert!(report.updates[0].2.is_ok());
        assert!(hosts[1].lock().read_file("/var/hesiod/passwd.db").is_some());
    }

    #[test]
    fn hard_failure_on_replicated_stops_remaining_hosts() {
        let (mut dcm, state, hosts) = setup();
        hosts[0].lock().fail.fail_exec_with = Some(13);
        let report = dcm.run_once();
        // First host hard-fails; the second is never attempted.
        assert_eq!(report.updates.len(), 1);
        assert!(matches!(
            report.updates[0].2,
            Err(UpdateError::ExecFailed(13))
        ));
        assert_eq!(dcm.stats.hard_failures, 1);
        // Zephyr + mail sent.
        assert!(dcm
            .notices
            .iter()
            .any(|n| n.kind == "zephyr" && n.target == "MOIRA"));
        assert!(dcm.notices.iter().any(|n| n.kind == "mail"));
        // Service harderror set: next run skips the service entirely.
        {
            let s = state.read();
            let row =
                s.db.table("servers")
                    .select_one(&Pred::Eq("name", "HESIOD".into()))
                    .unwrap();
            assert_ne!(s.db.cell("servers", row, "harderror").as_int(), 0);
        }
        state.write().db.clock().advance(7 * 3600);
        let report = dcm.run_once();
        assert!(report.updates.is_empty());
        // Operator resets the error; service resumes.
        {
            let mut s = state.write();
            let registry = Registry::standard();
            registry
                .execute(
                    &mut s,
                    &Caller::root("ops"),
                    "reset_server_error",
                    &["HESIOD".into()],
                )
                .unwrap();
            registry
                .execute(
                    &mut s,
                    &Caller::root("ops"),
                    "reset_server_host_error",
                    &["HESIOD".into(), "KIWI.MIT.EDU".into()],
                )
                .unwrap();
        }
        hosts[0].lock().fail.fail_exec_with = None;
        state.write().db.clock().advance(7 * 3600);
        let report = dcm.run_once();
        assert_eq!(report.updates.len(), 2);
        assert!(report.updates.iter().all(|(_, _, r)| r.is_ok()));
    }

    #[test]
    fn override_forces_immediate_update() {
        let (mut dcm, state, hosts) = setup();
        dcm.run_once();
        // Install something detectably old, then force an update without
        // advancing past the interval.
        hosts[0].lock().files_mut().remove("/var/hesiod/passwd.db");
        {
            let mut s = state.write();
            let registry = Registry::standard();
            registry
                .execute(
                    &mut s,
                    &Caller::root("ops"),
                    "set_server_host_override",
                    &["HESIOD".into(), "KIWI.MIT.EDU".into()],
                )
                .unwrap();
        }
        state.write().db.clock().advance(60);
        let report = dcm.run_once();
        assert_eq!(report.updates.len(), 1);
        assert_eq!(report.updates[0].1, "KIWI.MIT.EDU");
        assert!(hosts[0].lock().read_file("/var/hesiod/passwd.db").is_some());
        // Override cleared afterwards.
        let s = state.read();
        let t = s.db.table("serverhosts");
        for (row, _) in t.iter() {
            assert!(!t.cell(row, "override").as_bool());
        }
    }

    fn quick_retry(escalate_after: u32, per_run_budget: usize) -> crate::retry::RetryPolicy {
        crate::retry::RetryPolicy {
            base_secs: 100,
            max_secs: 800,
            jitter_frac: 0.0,
            escalate_after,
            per_run_budget,
        }
    }

    #[test]
    fn backoff_gate_defers_repeat_retries() {
        let (mut dcm, state, hosts) = setup();
        dcm.set_retry_policy(quick_retry(100, usize::MAX));
        hosts[1].lock().up = false;
        dcm.run_once(); // first soft failure: immediate-retry schedule
        state.write().db.clock().advance(60);
        let report = dcm.run_once(); // second failure: backoff starts (100s)
        assert_eq!(report.updates.len(), 1);
        assert!(report.updates[0].2.is_err());
        // Within the backoff window nothing is attempted, however often
        // cron fires the DCM.
        let before = dcm.stats.updates_attempted;
        for _ in 0..3 {
            state.write().db.clock().advance(10);
            let report = dcm.run_once();
            assert!(report.updates.is_empty(), "gate closed");
        }
        assert_eq!(dcm.stats.updates_attempted, before);
        assert_eq!(dcm.stats.retries_deferred, 3);
        // Once the window elapses the retry happens — and a recovered host
        // converges.
        hosts[1].lock().reboot();
        state.write().db.clock().advance(100);
        let report = dcm.run_once();
        assert_eq!(report.updates.len(), 1);
        assert!(report.updates[0].2.is_ok());
        assert!(hosts[1].lock().read_file("/var/hesiod/passwd.db").is_some());
    }

    #[test]
    fn long_soft_streak_escalates_to_hard_error() {
        let (mut dcm, state, hosts) = setup();
        dcm.set_retry_policy(quick_retry(2, usize::MAX));
        hosts[1].lock().up = false;
        dcm.run_once();
        state.write().db.clock().advance(60);
        dcm.run_once(); // second consecutive soft failure → escalation
        assert_eq!(dcm.stats.escalations, 1);
        assert!(dcm
            .notices
            .iter()
            .any(|n| n.kind == "zephyr" && n.message.contains("escalated after 2")));
        assert!(dcm
            .notices
            .iter()
            .any(|n| n.kind == "mail" && n.message.contains("escalated after 2")));
        // hosterror now gates the host like any hard failure…
        {
            let s = state.read();
            let t = s.db.table("serverhosts");
            let errs: Vec<i64> = t
                .iter()
                .map(|(r, _)| t.cell(r, "hosterror").as_int())
                .collect();
            assert!(errs.contains(&(UpdateError::HostDown.code() as i64)));
        }
        state.write().db.clock().advance(3600);
        let report = dcm.run_once();
        assert!(report.updates.is_empty(), "escalated host not retried");
        // …until an operator resets it, after which the host starts with a
        // clean streak and converges.
        hosts[1].lock().reboot();
        {
            let mut s = state.write();
            Registry::standard()
                .execute(
                    &mut s,
                    &Caller::root("ops"),
                    "reset_server_host_error",
                    &["HESIOD".into(), "SUOMI.MIT.EDU".into()],
                )
                .unwrap();
        }
        state.write().db.clock().advance(60);
        let report = dcm.run_once();
        assert_eq!(report.updates.len(), 1);
        assert!(report.updates[0].2.is_ok());
    }

    #[test]
    fn per_run_budget_caps_retried_hosts() {
        let (mut dcm, state, hosts) = setup();
        dcm.set_retry_policy(quick_retry(100, 1));
        for h in &hosts {
            h.lock().up = false;
        }
        let report = dcm.run_once();
        assert_eq!(report.updates.len(), 2, "first-time pushes are not retries");
        state.write().db.clock().advance(60);
        let report = dcm.run_once();
        assert_eq!(report.updates.len(), 1, "one retry per pass under budget 1");
        assert!(dcm.stats.retries_deferred >= 1);
    }

    #[test]
    fn host_lock_conflict_is_distinct_busy_error() {
        let (mut dcm, state, _hosts) = setup();
        // Another actor (a concurrent DCM pass, say) holds the host lock.
        state
            .write()
            .locks
            .acquire("other", "host:HESIOD:KIWI.MIT.EDU", LockMode::Exclusive)
            .unwrap();
        let report = dcm.run_once();
        let kiwi = report
            .updates
            .iter()
            .find(|(_, h, _)| h == "KIWI.MIT.EDU")
            .unwrap();
        assert_eq!(kiwi.2, Err(UpdateError::Busy), "not mislabelled Timeout");
        assert_eq!(dcm.stats.busy_conflicts, 1);
        // Busy is an internal collision: it charges no failure streak.
        assert!(!dcm.retry_book().is_retry("HESIOD", "KIWI.MIT.EDU"));
        // When the collision clears, the next pass succeeds.
        state
            .write()
            .locks
            .release("other", "host:HESIOD:KIWI.MIT.EDU");
        state.write().db.clock().advance(60);
        let report = dcm.run_once();
        let kiwi = report
            .updates
            .iter()
            .find(|(_, h, _)| h == "KIWI.MIT.EDU")
            .unwrap();
        assert!(kiwi.2.is_ok());
    }

    /// Satellite pin: `fanout_width = 1` with zero racks takes literally
    /// the legacy serial loop — same update order, same outcomes.
    #[test]
    fn width_one_no_racks_is_the_legacy_serial_path() {
        let (mut dcm, _state, _hosts) = setup();
        dcm.set_fanout_width(1);
        assert!(dcm.topology().is_empty());
        let report = dcm.run_once();
        let order: Vec<&str> = report.updates.iter().map(|(_, h, _)| h.as_str()).collect();
        assert_eq!(
            order,
            vec!["KIWI.MIT.EDU", "SUOMI.MIT.EDU"],
            "serverhosts row order preserved"
        );
        assert!(report.updates.iter().all(|(_, _, r)| r.is_ok()));
    }

    /// Satellite pin: the pooled fan-out path (width > 1, no racks) is
    /// byte-equivalent to the serial oracle across a whole scripted run —
    /// reports, notices (retry/Zephyr escalation included), stats,
    /// serverhosts rows, and host filesystems.
    #[test]
    fn fanout_pool_matches_serial_oracle_exactly() {
        type Trace = (
            Vec<(String, String, Result<(), UpdateError>)>,
            Vec<Notice>,
            DcmStats,
            Vec<Vec<String>>,
            Vec<std::collections::BTreeMap<String, Vec<u8>>>,
        );
        let run = |width: usize| -> Trace {
            let (mut dcm, state, hosts) = setup();
            dcm.set_retry_policy(quick_retry(2, usize::MAX));
            dcm.set_fanout_width(width);
            let mut updates = Vec::new();
            // Scripted history: a down host soft-fails, fails again and
            // escalates to a hard error with Zephyr + mail, gets reset by
            // an operator, converges; then a mutation cycle pushes again.
            hosts[1].lock().up = false;
            updates.extend(dcm.run_once().updates);
            state.write().db.clock().advance(60);
            updates.extend(dcm.run_once().updates); // escalates after 2
            hosts[1].lock().reboot();
            {
                let mut s = state.write();
                Registry::standard()
                    .execute(
                        &mut s,
                        &Caller::root("ops"),
                        "reset_server_host_error",
                        &["HESIOD".into(), "SUOMI.MIT.EDU".into()],
                    )
                    .unwrap();
            }
            state.write().db.clock().advance(60);
            updates.extend(dcm.run_once().updates);
            {
                let mut s = state.write();
                s.db.clock().advance(7 * 3600);
                Registry::standard()
                    .execute(
                        &mut s,
                        &Caller::new("ops", "t"),
                        "add_user",
                        &[
                            "parity".into(),
                            "7300".into(),
                            "/bin/csh".into(),
                            "P".into(),
                            "T".into(),
                            "".into(),
                            "1".into(),
                            "x".into(),
                            "1990".into(),
                        ],
                    )
                    .unwrap();
            }
            updates.extend(dcm.run_once().updates);
            let rows: Vec<Vec<String>> = {
                let s = state.read();
                let t = s.db.table("serverhosts");
                t.iter()
                    .map(|(r, _)| {
                        [
                            "mach_id",
                            "override",
                            "success",
                            "inprogress",
                            "hosterror",
                            "ltt",
                            "lts",
                        ]
                        .iter()
                        .map(|c| t.cell(r, c).render())
                        .collect()
                    })
                    .collect()
            };
            let files = hosts.iter().map(|h| h.lock().files_mut().clone()).collect();
            (updates, dcm.notices.clone(), dcm.stats, rows, files)
        };
        let serial = run(1);
        let pooled = run(8);
        assert_eq!(serial.0, pooled.0, "update reports");
        assert_eq!(serial.1, pooled.1, "notices incl. escalation");
        assert_eq!(serial.2, pooled.2, "whole stats struct");
        assert_eq!(serial.3, pooled.3, "serverhosts rows");
        assert_eq!(serial.4, pooled.4, "host filesystems");
    }

    /// Racked hosts converge through a relay; the cursor store records
    /// every confirmed install at the pushed generation.
    #[test]
    fn racked_fanout_converges_and_records_cursors() {
        let (mut dcm, state, hosts) = setup();
        let mut topo = RackTopology::new();
        topo.add_rack("r0", ["KIWI.MIT.EDU", "SUOMI.MIT.EDU"].map(String::from));
        dcm.set_topology(topo);
        dcm.set_fanout_width(4);
        let report = dcm.run_once();
        assert_eq!(report.updates.len(), 2);
        assert!(report.updates.iter().all(|(_, _, r)| r.is_ok()));
        for h in &hosts {
            assert!(h.lock().read_file("/var/hesiod/passwd.db").is_some());
        }
        let gen = {
            let s = state.read();
            let row =
                s.db.table("servers")
                    .select_one(&Pred::Eq("name", "HESIOD".into()))
                    .unwrap();
            s.db.cell("servers", row, "dfgen").as_int()
        };
        for host in ["KIWI.MIT.EDU", "SUOMI.MIT.EDU"] {
            assert_eq!(dcm.cursors().generation("HESIOD", host), Some(gen));
        }
        let obs = state.read().obs.clone();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("dcm.fanout.origin_legs"), 1, "the relay");
        assert_eq!(snap.counter("dcm.fanout.relay_leaf_legs"), 1, "the leaf");
        assert!(snap.counter("dcm.transfer.relay.full_members") > 0);
        assert!(snap.counter("dcm.transfer.origin.full_members") > 0);
    }

    #[test]
    fn disabled_service_skipped() {
        let (mut dcm, state, _) = setup();
        {
            let mut s = state.write();
            let registry = Registry::standard();
            registry
                .execute(
                    &mut s,
                    &Caller::root("ops"),
                    "update_server_info",
                    &[
                        "HESIOD".into(),
                        "360".into(),
                        "/tmp/hesiod.out".into(),
                        "restart-hesiod".into(),
                        "REPLICAT".into(),
                        "0".into(), // disabled
                        "NONE".into(),
                        "NONE".into(),
                    ],
                )
                .unwrap();
        }
        let report = dcm.run_once();
        assert!(report.generated.is_empty());
        assert!(report.updates.is_empty());
    }
}
