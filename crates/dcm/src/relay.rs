//! The hierarchical fan-out tier: rack topology, relay election, and the
//! per-host delta cursor store.
//!
//! The paper's DCM walks ~20 server hosts serially; at thousands of
//! consumer hosts the cycle needs two structural changes. First, update
//! legs run on a bounded worker pool (`fanout_width`). Second, hosts are
//! grouped into *racks*: the DCM pushes each archive once to a *relay*
//! host per rack, and only then fans out to that rack's *leaf* hosts —
//! so a dead rack uplink costs one probe, not one timeout per host.
//!
//! The [`CursorStore`] generalizes the old `last_pushed` map. For each
//! `(service, host)` pair it remembers the archive the host last
//! confirmed installing — the *base* the update protocol patches against
//! — together with the service generation it belongs to and a base-CRC
//! [`Manifest`]. The invariants:
//!
//! - **Monotone.** [`CursorStore::record`] never moves a cursor to an
//!   older generation; a delayed recording from a slow leg cannot clobber
//!   a newer confirmed install.
//! - **Advance only on confirmation.** Failed legs leave the cursor
//!   untouched: the host may hold the old archive, the new one, or a
//!   torn mix, and its base CRCs in the next stale reply sort that out.
//! - **Dropping costs bytes, never correctness.** A forgotten or stale
//!   cursor merely fails the base-CRC gate at transfer time, falling
//!   back to whole members.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use crate::archive::{Archive, Manifest};

/// What the DCM knows one host last installed for one service: the patch
/// base, the generation it belongs to, and its member-CRC manifest.
#[derive(Debug, Clone)]
pub struct Cursor {
    /// The service generation (`dfgen`) whose archive the host confirmed.
    pub generation: i64,
    base: Arc<Archive>,
    manifest: Manifest,
}

impl Cursor {
    /// The confirmed archive — the base for line-level patches.
    pub fn base(&self) -> &Arc<Archive> {
        &self.base
    }

    /// Member CRCs of the base, precomputed at record time.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }
}

/// Per-`(service, host)` delta cursors, replacing the flat `last_pushed`
/// map. See the module docs for the invariants.
#[derive(Debug, Default)]
pub struct CursorStore {
    entries: HashMap<(String, String), Cursor>,
}

impl CursorStore {
    /// An empty store.
    pub fn new() -> CursorStore {
        CursorStore::default()
    }

    /// Records a confirmed install of `base` at `generation`. Monotone:
    /// returns `false` (and changes nothing) when the host's cursor is
    /// already at a newer generation.
    pub fn record(
        &mut self,
        service: &str,
        host: &str,
        generation: i64,
        base: Arc<Archive>,
    ) -> bool {
        let key = (service.to_owned(), host.to_owned());
        if let Some(existing) = self.entries.get(&key) {
            if generation < existing.generation {
                return false;
            }
        }
        let manifest = base.manifest();
        self.entries.insert(
            key,
            Cursor {
                generation,
                base,
                manifest,
            },
        );
        true
    }

    /// Unconditional overwrite — the operator-reset escape hatch (and the
    /// fault-matrix tests' way of planting a stale cursor).
    pub fn force(&mut self, service: &str, host: &str, generation: i64, base: Arc<Archive>) {
        let manifest = base.manifest();
        self.entries.insert(
            (service.to_owned(), host.to_owned()),
            Cursor {
                generation,
                base,
                manifest,
            },
        );
    }

    /// Drops one cursor (the next push ships whole members).
    pub fn forget(&mut self, service: &str, host: &str) {
        self.entries.remove(&(service.to_owned(), host.to_owned()));
    }

    /// The full cursor for one `(service, host)`, if recorded.
    pub fn cursor(&self, service: &str, host: &str) -> Option<&Cursor> {
        self.entries.get(&(service.to_owned(), host.to_owned()))
    }

    /// The patch base for one `(service, host)`, if recorded.
    pub fn base(&self, service: &str, host: &str) -> Option<Arc<Archive>> {
        self.cursor(service, host).map(|c| c.base.clone())
    }

    /// The generation a host last confirmed, if recorded.
    pub fn generation(&self, service: &str, host: &str) -> Option<i64> {
        self.cursor(service, host).map(|c| c.generation)
    }

    /// Number of cursors held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Static rack grouping of hosts. Racks are physical: one topology serves
/// every service; a host belongs to at most one rack (the last
/// [`add_rack`](RackTopology::add_rack) naming it wins).
#[derive(Debug, Clone, Default)]
pub struct RackTopology {
    /// Rack name → member hosts, in election-preference order.
    racks: BTreeMap<String, Vec<String>>,
    host_rack: HashMap<String, String>,
}

impl RackTopology {
    /// An empty topology (every host goes direct — the legacy shape).
    pub fn new() -> RackTopology {
        RackTopology::default()
    }

    /// Declares a rack and its member hosts. Member order is the relay
    /// election preference order.
    pub fn add_rack(&mut self, rack: &str, hosts: impl IntoIterator<Item = String>) {
        let members: Vec<String> = hosts.into_iter().collect();
        for h in &members {
            self.host_rack.insert(h.clone(), rack.to_owned());
        }
        self.racks.insert(rack.to_owned(), members);
    }

    /// The rack a host belongs to, if any.
    pub fn rack_of(&self, host: &str) -> Option<&str> {
        self.host_rack.get(host).map(String::as_str)
    }

    /// Members of one rack (empty for an unknown rack).
    pub fn rack_members(&self, rack: &str) -> &[String] {
        self.racks.get(rack).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of racks declared.
    pub fn len(&self) -> usize {
        self.racks.len()
    }

    /// Whether no racks are declared.
    pub fn is_empty(&self) -> bool {
        self.racks.is_empty()
    }

    /// Splits one service's todo list into the two fan-out waves.
    ///
    /// `todo` is the cycle's host list in attempt order; `serving` is the
    /// set of hosts with an enabled server-host row for this service —
    /// only a host that itself serves the service can relay it. Per rack,
    /// the relay is the first member (in rack order) that serves; the
    /// rack's other todo members become leaves gated on that relay's
    /// reachability. The relay itself, rack-less hosts, and racks with no
    /// serving member all go direct in the origin wave. Indices into the
    /// plan refer to positions in `todo`.
    pub fn plan(&self, todo: &[String], serving: &HashSet<String>) -> FanoutPlan {
        let mut plan = FanoutPlan::default();
        if self.is_empty() {
            plan.origin = (0..todo.len()).collect();
            return plan;
        }
        let mut racks_touched: HashSet<&str> = HashSet::new();
        for (i, host) in todo.iter().enumerate() {
            let Some(rack) = self.rack_of(host) else {
                plan.origin.push(i);
                continue;
            };
            racks_touched.insert(rack);
            let relay = self
                .rack_members(rack)
                .iter()
                .find(|m| serving.contains(m.as_str()));
            match relay {
                // A relay's own update is an origin leg; everything else in
                // its rack rides behind it.
                Some(r) if r == host => plan.origin.push(i),
                Some(r) => plan.leaves.push((i, r.clone())),
                // No serving member to relay through: go direct.
                None => plan.origin.push(i),
            }
        }
        // A relay that is already up to date is not in `todo` at all; its
        // leaves still gate on its reachability at transfer time.
        plan.origin.sort_unstable();
        plan.leaves.sort_unstable_by_key(|&(i, _)| i);
        plan.racks = racks_touched.len();
        plan
    }
}

/// One service's fan-out split for one cycle: todo-list indices of the
/// origin wave (relays, rack-less, relay-less), leaf-wave indices paired
/// with their relay's host name, and the number of racks touched.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FanoutPlan {
    /// Wave 1: direct pushes from the DCM.
    pub origin: Vec<usize>,
    /// Wave 2: `(todo index, relay host name)` — gated on the relay.
    pub leaves: Vec<(usize, String)>,
    /// Racks with at least one host in this cycle's todo list.
    pub racks: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc(members: &[(&str, &[u8])]) -> Arc<Archive> {
        Arc::new(
            Archive::from_members(
                members
                    .iter()
                    .map(|(n, d)| (n.to_string(), d.to_vec()))
                    .collect(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn cursor_records_are_monotone() {
        let mut store = CursorStore::new();
        let gen5 = arc(&[("a", b"five")]);
        let gen9 = arc(&[("a", b"nine")]);
        assert!(store.record("HESIOD", "H1", 5, gen5.clone()));
        assert!(store.record("HESIOD", "H1", 9, gen9.clone()));
        assert_eq!(store.generation("HESIOD", "H1"), Some(9));
        // A delayed recording from an older leg is ignored…
        assert!(!store.record("HESIOD", "H1", 5, gen5.clone()));
        assert_eq!(store.generation("HESIOD", "H1"), Some(9));
        assert_eq!(store.base("HESIOD", "H1").unwrap(), gen9);
        // …but an equal generation re-record (idempotent retry) lands.
        assert!(store.record("HESIOD", "H1", 9, gen9.clone()));
        // force() bypasses the monotone check — operator reset.
        store.force("HESIOD", "H1", 5, gen5.clone());
        assert_eq!(store.generation("HESIOD", "H1"), Some(5));
        store.forget("HESIOD", "H1");
        assert!(store.is_empty());
    }

    #[test]
    fn cursor_manifest_matches_base() {
        let mut store = CursorStore::new();
        let base = arc(&[("passwd.db", b"root:0"), ("uid.db", b"0:root")]);
        store.record("HESIOD", "H1", 3, base.clone());
        let cursor = store.cursor("HESIOD", "H1").unwrap();
        assert_eq!(cursor.manifest(), &base.manifest());
        assert_eq!(cursor.manifest().entries.len(), 2);
    }

    #[test]
    fn cursors_are_keyed_per_service_and_host() {
        let mut store = CursorStore::new();
        let a = arc(&[("a", b"1")]);
        store.record("HESIOD", "H1", 1, a.clone());
        store.record("HESIOD", "H2", 2, a.clone());
        store.record("NFS", "H1", 3, a.clone());
        assert_eq!(store.len(), 3);
        assert_eq!(store.generation("HESIOD", "H1"), Some(1));
        assert_eq!(store.generation("NFS", "H1"), Some(3));
        assert_eq!(store.generation("NFS", "H2"), None);
    }

    fn hs(names: &[&str]) -> HashSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    fn owned(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn empty_topology_plans_everything_origin() {
        let topo = RackTopology::new();
        let todo = owned(&["A", "B", "C"]);
        let plan = topo.plan(&todo, &hs(&["A", "B", "C"]));
        assert_eq!(plan.origin, vec![0, 1, 2]);
        assert!(plan.leaves.is_empty());
        assert_eq!(plan.racks, 0);
    }

    #[test]
    fn relay_in_todo_leads_its_rack() {
        let mut topo = RackTopology::new();
        topo.add_rack("r1", owned(&["A", "B", "C"]));
        let todo = owned(&["A", "B", "C"]);
        let plan = topo.plan(&todo, &hs(&["A", "B", "C"]));
        assert_eq!(plan.origin, vec![0], "relay A goes direct");
        assert_eq!(
            plan.leaves,
            vec![(1, "A".to_string()), (2, "A".to_string())]
        );
        assert_eq!(plan.racks, 1);
    }

    #[test]
    fn up_to_date_relay_still_gates_its_leaves() {
        let mut topo = RackTopology::new();
        topo.add_rack("r1", owned(&["A", "B", "C"]));
        // A already converged — only B and C need the push; they still ride
        // behind A.
        let todo = owned(&["B", "C"]);
        let plan = topo.plan(&todo, &hs(&["A", "B", "C"]));
        assert!(plan.origin.is_empty());
        assert_eq!(
            plan.leaves,
            vec![(0, "A".to_string()), (1, "A".to_string())]
        );
    }

    #[test]
    fn relay_election_skips_non_serving_members() {
        let mut topo = RackTopology::new();
        topo.add_rack("r1", owned(&["A", "B", "C"]));
        // A is in the rack but does not serve this service: B relays.
        let todo = owned(&["B", "C"]);
        let plan = topo.plan(&todo, &hs(&["B", "C"]));
        assert_eq!(plan.origin, vec![0]);
        assert_eq!(plan.leaves, vec![(1, "B".to_string())]);
    }

    #[test]
    fn rack_without_serving_member_goes_direct() {
        let mut topo = RackTopology::new();
        topo.add_rack("r1", owned(&["A", "B"]));
        topo.add_rack("r2", owned(&["C"]));
        let todo = owned(&["A", "B", "C", "D"]);
        // Nobody in r1 serves; C serves itself; D is rack-less.
        let plan = topo.plan(&todo, &hs(&["C"]));
        assert_eq!(plan.origin, vec![0, 1, 2, 3]);
        assert!(plan.leaves.is_empty());
        assert_eq!(plan.racks, 2);
    }
}
