//! The Moira-to-server update protocol (§5.9).
//!
//! Goals, from the paper: "Completely automatic update for normal cases and
//! expected kinds of failures. Survives clean server crashes. Survives
//! clean Moira crashes. Easy to understand state and recovery by hand."
//! The strategy is atomic operations only: transfer everything first (with
//! checksums), then execute an instruction sequence whose file
//! installations are atomic renames, then confirm.
//!
//! The transfer phase is a manifest handshake rather than a blind full
//! send: Moira first ships the per-member CRC [`Manifest`], the host
//! replies with the names it is missing or holds stale (compared against
//! its installed copy of the target archive), and only those members cross
//! the wire. The host reconstructs the complete archive in manifest order
//! from the partial transfer plus its base copy, verifies the whole-archive
//! checksum, and installs it atomically — so the partial protocol keeps
//! exactly the integrity and idempotence guarantees of the full one.
//!
//! Stale members themselves need not cross whole: the host's reply carries
//! the CRC of its own base copy of each stale member, and when that matches
//! what Moira last pushed to the host, only a line-level patch
//! ([`line_patch`]) is sent. A member whose base the DCM cannot vouch for —
//! first push, evicted cache, tampered base — falls back to the full bytes,
//! and the whole-archive checksum still guards the reconstruction either
//! way, so a bad patch can never install.

use std::collections::HashMap;

use moira_krb::ticket::{Authenticator, Ticket};

use crate::archive::{crc32, Archive, Manifest};
use crate::host::{HostError, SimHost};
use crate::net::{Network, PerfectNetwork};

/// Suffix for staged files awaiting the atomic swap; stale ones are
/// "deleted (as it may be incomplete) when the next update starts".
pub const STAGING_SUFFIX: &str = ".moira_update";

/// Suffix for the previous version kept for `Revert`.
pub const BACKUP_SUFFIX: &str = ".moira_backup";

/// Where the instruction script is staged on the target.
pub const SCRIPT_PATH: &str = "/tmp/moira_script";

/// The §5.9 execution-phase instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// Extract one member of the transferred tar file into
    /// `dest.moira_update` — "Rather than extract all of the files at once,
    /// only the ones that are needed are extracted one at a time."
    Extract {
        /// Member name within the archive.
        member: String,
        /// Destination path (staged with [`STAGING_SUFFIX`]).
        dest: String,
    },
    /// Swap the staged file in via atomic rename, keeping the old version.
    Swap {
        /// The target path.
        file: String,
    },
    /// Put the old file back — "may be useful in the case of an erroneous
    /// installation."
    Revert {
        /// The target path.
        file: String,
    },
    /// Send a signal to the process whose pid is recorded in a file.
    Signal {
        /// Path of the pid file.
        pidfile: String,
    },
    /// Execute a supplied command.
    Exec {
        /// The command line.
        command: String,
    },
}

impl Instruction {
    /// Serializes to one script line.
    pub fn to_line(&self) -> String {
        match self {
            Instruction::Extract { member, dest } => format!("extract {member} {dest}"),
            Instruction::Swap { file } => format!("swap {file}"),
            Instruction::Revert { file } => format!("revert {file}"),
            Instruction::Signal { pidfile } => format!("signal {pidfile}"),
            Instruction::Exec { command } => format!("exec {command}"),
        }
    }

    /// Parses one script line.
    pub fn from_line(line: &str) -> Option<Instruction> {
        let mut words = line.splitn(2, ' ');
        let op = words.next()?;
        let rest = words.next().unwrap_or("");
        Some(match op {
            "extract" => {
                let mut parts = rest.splitn(2, ' ');
                Instruction::Extract {
                    member: parts.next()?.to_owned(),
                    dest: parts.next()?.to_owned(),
                }
            }
            "swap" => Instruction::Swap {
                file: rest.to_owned(),
            },
            "revert" => Instruction::Revert {
                file: rest.to_owned(),
            },
            "signal" => Instruction::Signal {
                pidfile: rest.to_owned(),
            },
            "exec" => Instruction::Exec {
                command: rest.to_owned(),
            },
            _ => return None,
        })
    }
}

/// A whole installation script.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Script {
    /// Instructions in execution order.
    pub instructions: Vec<Instruction>,
}

impl Script {
    /// Builds the standard script for a service: extract + swap each
    /// archive member into place under `install_dir`, then run the
    /// service's install command.
    pub fn standard(archive: &Archive, install_dir: &str, install_cmd: &str) -> Script {
        let mut instructions = Vec::new();
        for (member, _) in archive.iter() {
            let dest = format!("{}/{member}", install_dir.trim_end_matches('/'));
            instructions.push(Instruction::Extract {
                member: member.to_owned(),
                dest: dest.clone(),
            });
            instructions.push(Instruction::Swap { file: dest });
        }
        instructions.push(Instruction::Exec {
            command: install_cmd.to_owned(),
        });
        Script { instructions }
    }

    /// Serializes the script.
    pub fn to_text(&self) -> String {
        self.instructions
            .iter()
            .map(|i| i.to_line() + "\n")
            .collect()
    }

    /// Parses a serialized script.
    pub fn from_text(text: &str) -> Option<Script> {
        let instructions = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(Instruction::from_line)
            .collect::<Option<Vec<_>>>()?;
        Some(Script { instructions })
    }
}

/// Failures the DCM observes from an update attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateError {
    /// Could not connect / host went away ("tagged for retry at a later
    /// time" — a soft error).
    HostDown,
    /// A single operation exceeded the timeout; "the connection is closed,
    /// and the installation assumed to have failed" (soft).
    Timeout,
    /// Transfer checksum mismatch (soft; retried).
    Checksum,
    /// The target could not parse what arrived (soft).
    BadData,
    /// The installation script exited non-zero (a hard error: recorded and
    /// reported via Zephyr).
    ExecFailed(i32),
    /// Kerberos mutual authentication failed at connection set-up (soft;
    /// retried — tickets may simply have expired).
    AuthFailed,
    /// Another update of the same host is already in progress (soft; the
    /// conflict clears when the other update finishes).
    Busy,
}

impl UpdateError {
    /// Hard errors stop retries until an operator resets them; soft errors
    /// are retried on later DCM passes.
    pub fn is_hard(&self) -> bool {
        matches!(self, UpdateError::ExecFailed(_))
    }

    /// Numeric code recorded in `hosterror`.
    pub fn code(&self) -> i32 {
        match self {
            UpdateError::HostDown => 100,
            UpdateError::Timeout => 101,
            UpdateError::Checksum => 102,
            UpdateError::BadData => 103,
            UpdateError::ExecFailed(c) => 1000 + c,
            UpdateError::AuthFailed => 104,
            UpdateError::Busy => 105,
        }
    }

    /// Recovers the error from its [`UpdateError::code`] value.
    pub fn from_code(code: i32) -> Option<UpdateError> {
        Some(match code {
            100 => UpdateError::HostDown,
            101 => UpdateError::Timeout,
            102 => UpdateError::Checksum,
            103 => UpdateError::BadData,
            104 => UpdateError::AuthFailed,
            105 => UpdateError::Busy,
            c if c >= 1000 => UpdateError::ExecFailed(c - 1000),
            _ => return None,
        })
    }

    /// Human-readable message recorded in `hosterrmsg`.
    pub fn message(&self) -> String {
        match self {
            UpdateError::HostDown => "server host unreachable".to_owned(),
            UpdateError::Timeout => "update timed out".to_owned(),
            UpdateError::Checksum => "file checksum mismatch".to_owned(),
            UpdateError::BadData => "transferred data unparsable".to_owned(),
            UpdateError::ExecFailed(c) => format!("install script exited {c}"),
            UpdateError::AuthFailed => "kerberos authentication failed".to_owned(),
            UpdateError::Busy => "host update already in progress".to_owned(),
        }
    }
}

/// Simulates the network leg of a transfer, applying the host's corruption
/// plan.
fn transmit(host: &SimHost, data: &[u8]) -> Vec<u8> {
    let mut wire = data.to_vec();
    if host.fail.corrupt_transfers && !wire.is_empty() {
        let idx = wire.len() / 2;
        wire[idx] ^= 0x20;
    }
    wire
}

/// One entry of the host's stale-member reply: a member it is missing or
/// holds stale, plus the CRC of its own base copy when it has one — the
/// DCM's opening to send a patch instead of the whole member.
type StaleEntry = (String, Option<u32>);

/// The host side of the manifest diff: manifest entries whose member is
/// missing from the base archive or whose contents hash differently, each
/// annotated with the base copy's CRC (if any).
fn stale_entries(manifest: &Manifest, base: Option<&Archive>) -> Vec<StaleEntry> {
    manifest
        .entries
        .iter()
        .filter_map(|(name, crc)| {
            let base_crc = base.and_then(|b| b.get(name)).map(crc32);
            (base_crc != Some(*crc)).then(|| (name.clone(), base_crc))
        })
        .collect()
}

/// Serializes the stale-member reply: `u32 count | per entry: u32 name len
/// | name | u8 has_base | [u32 base crc]`.
fn encode_stale(entries: &[StaleEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(entries.len() as u32).to_be_bytes());
    for (name, base_crc) in entries {
        out.extend_from_slice(&(name.len() as u32).to_be_bytes());
        out.extend_from_slice(name.as_bytes());
        match base_crc {
            Some(crc) => {
                out.push(1);
                out.extend_from_slice(&crc.to_be_bytes());
            }
            None => out.push(0),
        }
    }
    out
}

/// Parses a stale-member reply; `None` on any framing violation.
fn decode_stale(bytes: &[u8]) -> Option<Vec<StaleEntry>> {
    let mut pos = 0usize;
    let take_u32 = |pos: &mut usize| -> Option<u32> {
        let v = u32::from_be_bytes(bytes.get(*pos..*pos + 4)?.try_into().ok()?);
        *pos += 4;
        Some(v)
    };
    let count = take_u32(&mut pos)? as usize;
    if count > 1 << 20 {
        return None;
    }
    let mut entries = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let len = take_u32(&mut pos)? as usize;
        let name = String::from_utf8(bytes.get(pos..pos + len)?.to_vec()).ok()?;
        pos += len;
        let base_crc = match bytes.get(pos)? {
            0 => {
                pos += 1;
                None
            }
            1 => {
                pos += 1;
                Some(take_u32(&mut pos)?)
            }
            _ => return None,
        };
        entries.push((name, base_crc));
    }
    (pos == bytes.len()).then_some(entries)
}

/// A compact line-level patch turning `old` into `new`.
///
/// The generated data files are line records keyed by entity name, so a
/// handful of database rows changing leaves long runs of identical lines;
/// greedy monotone matching finds those runs and the patch carries only
/// copy directives plus the literal bytes of genuinely new lines.
///
/// Encoding: `u32 op count | per op: u8 tag` with tag 0 = copy
/// (`u32 start line | u32 line count` from `old`) and tag 1 = insert
/// (`u32 byte len | bytes`).
pub fn line_patch(old: &[u8], new: &[u8]) -> Vec<u8> {
    enum Op {
        Copy(u32, u32),
        Insert(Vec<u8>),
    }
    let old_lines: Vec<&[u8]> = old.split_inclusive(|&b| b == b'\n').collect();
    let mut index: HashMap<&[u8], Vec<usize>> = HashMap::new();
    for (i, line) in old_lines.iter().enumerate() {
        index.entry(line).or_default().push(i);
    }
    let mut ops: Vec<Op> = Vec::new();
    // Matches are monotone: each new line may only reuse an old line at or
    // past the cursor, so copies never run backwards and runs stay long.
    let mut cursor = 0usize;
    for line in new.split_inclusive(|&b| b == b'\n') {
        let hit = index.get(line).and_then(|positions| {
            let p = positions.partition_point(|&i| i < cursor);
            positions.get(p).copied()
        });
        match (hit, ops.last_mut()) {
            (Some(k), Some(Op::Copy(start, count))) if *start as usize + *count as usize == k => {
                *count += 1;
                cursor = k + 1;
            }
            (Some(k), _) => {
                ops.push(Op::Copy(k as u32, 1));
                cursor = k + 1;
            }
            (None, Some(Op::Insert(bytes))) => bytes.extend_from_slice(line),
            (None, _) => ops.push(Op::Insert(line.to_vec())),
        }
    }
    let mut out = Vec::new();
    out.extend_from_slice(&(ops.len() as u32).to_be_bytes());
    for op in &ops {
        match op {
            Op::Copy(start, count) => {
                out.push(0);
                out.extend_from_slice(&start.to_be_bytes());
                out.extend_from_slice(&count.to_be_bytes());
            }
            Op::Insert(bytes) => {
                out.push(1);
                out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
                out.extend_from_slice(bytes);
            }
        }
    }
    out
}

/// Applies a [`line_patch`] against the base bytes; `None` on framing
/// violations or copy directives outside the base.
pub fn apply_line_patch(old: &[u8], patch: &[u8]) -> Option<Vec<u8>> {
    let old_lines: Vec<&[u8]> = old.split_inclusive(|&b| b == b'\n').collect();
    let mut pos = 0usize;
    let take_u32 = |pos: &mut usize| -> Option<u32> {
        let v = u32::from_be_bytes(patch.get(*pos..*pos + 4)?.try_into().ok()?);
        *pos += 4;
        Some(v)
    };
    let count = take_u32(&mut pos)? as usize;
    if count > 1 << 20 {
        return None;
    }
    let mut out = Vec::new();
    for _ in 0..count {
        match patch.get(pos)? {
            0 => {
                pos += 1;
                let start = take_u32(&mut pos)? as usize;
                let lines = take_u32(&mut pos)? as usize;
                for line in old_lines.get(start..start.checked_add(lines)?)? {
                    out.extend_from_slice(line);
                }
            }
            1 => {
                pos += 1;
                let len = take_u32(&mut pos)? as usize;
                out.extend_from_slice(patch.get(pos..pos + len)?);
                pos += len;
            }
            _ => return None,
        }
    }
    (pos == patch.len()).then_some(out)
}

/// How one stale member crosses the wire.
enum MemberDelta {
    /// The complete member bytes — first push, unknown base, or a patch
    /// that would not have been smaller.
    Full(Vec<u8>),
    /// A [`line_patch`] against the base copy whose CRC the host reported.
    Patch(Vec<u8>),
}

/// Serializes the partial-transfer payload: `u32 entry count | per entry:
/// u32 name len | name | u8 tag (0 full, 1 patch) | u32 data len | data`.
fn encode_delta(entries: &[(String, MemberDelta)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(entries.len() as u32).to_be_bytes());
    for (name, delta) in entries {
        out.extend_from_slice(&(name.len() as u32).to_be_bytes());
        out.extend_from_slice(name.as_bytes());
        let (tag, data) = match delta {
            MemberDelta::Full(d) => (0u8, d),
            MemberDelta::Patch(d) => (1u8, d),
        };
        out.push(tag);
        out.extend_from_slice(&(data.len() as u32).to_be_bytes());
        out.extend_from_slice(data);
    }
    out
}

/// Parses a partial-transfer payload; `None` on any framing violation.
fn decode_delta(bytes: &[u8]) -> Option<Vec<(String, MemberDelta)>> {
    let mut pos = 0usize;
    let take_u32 = |pos: &mut usize| -> Option<u32> {
        let v = u32::from_be_bytes(bytes.get(*pos..*pos + 4)?.try_into().ok()?);
        *pos += 4;
        Some(v)
    };
    let count = take_u32(&mut pos)? as usize;
    if count > 1 << 20 {
        return None;
    }
    let mut entries = Vec::with_capacity(count.min(64));
    for _ in 0..count {
        let name_len = take_u32(&mut pos)? as usize;
        let name = String::from_utf8(bytes.get(pos..pos + name_len)?.to_vec()).ok()?;
        pos += name_len;
        let tag = *bytes.get(pos)?;
        pos += 1;
        let data_len = take_u32(&mut pos)? as usize;
        let data = bytes.get(pos..pos + data_len)?.to_vec();
        pos += data_len;
        entries.push((
            name,
            match tag {
                0 => MemberDelta::Full(data),
                1 => MemberDelta::Patch(data),
                _ => return None,
            },
        ));
    }
    (pos == bytes.len()).then_some(entries)
}

/// Byte-level accounting for one update attempt, filled in by
/// [`run_update_instrumented`]: how much of the transfer rode as line
/// patches versus whole members, and — on failure — which protocol leg
/// broke, so the DCM can count retries per leg.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransferStats {
    /// Stale members shipped as line patches against the cached base.
    pub patch_members: u64,
    /// Encoded patch payload bytes.
    pub patch_bytes: u64,
    /// Stale members shipped whole.
    pub full_members: u64,
    /// Whole-member payload bytes.
    pub full_bytes: u64,
    /// The protocol leg in flight when the attempt failed; `None` on
    /// success. One of `connect`, `manifest`, `stale`, `delta`, `script`,
    /// `execute`, `confirm` — or `relay`, set by the fan-out tier when a
    /// leaf leg was refused because its rack relay was unreachable.
    pub failed_leg: Option<&'static str>,
}

/// Kerberos credentials presented by the DCM at connection set-up.
#[derive(Debug, Clone)]
pub struct UpdateCredentials {
    /// Ticket for the host's `rcmd` service.
    pub ticket: Ticket,
    /// Fresh authenticator under the session key.
    pub authenticator: Authenticator,
}

/// Runs one complete update against a host: transfer phase, execution
/// phase, confirmation. Returns `Ok(())` only when the server confirmed a
/// successful installation. Unauthenticated convenience wrapper for hosts
/// without a verifier.
pub fn run_update(
    host: &mut SimHost,
    archive: &Archive,
    target: &str,
    script: &Script,
) -> Result<(), UpdateError> {
    run_update_with_auth(host, None, archive, target, script)
}

/// [`run_update`] presenting Kerberos credentials. Hosts with a configured
/// verifier reject connections whose credentials are absent, forged, or
/// replayed — "Kerberos is used to verify the identity of both ends at
/// connection set-up time" (§5.9.2). Runs over a [`PerfectNetwork`].
pub fn run_update_with_auth(
    host: &mut SimHost,
    credentials: Option<&UpdateCredentials>,
    archive: &Archive,
    target: &str,
    script: &Script,
) -> Result<(), UpdateError> {
    run_update_over(
        &PerfectNetwork,
        host,
        credentials,
        archive,
        None,
        target,
        script,
    )
}

/// [`run_update_with_auth`] with every connection and transfer leg routed
/// through a [`Network`], which may partition, drop, or stall any of them.
///
/// The fault surface mirrors a real TCP update connection:
///
/// - connection set-up can fail (host partitioned away, SYN lost);
/// - any transfer leg (manifest, stale reply, partial archive, script)
///   can fail mid-stream;
/// - the **confirmation** leg can fail *after* the host executed the
///   script successfully. The DCM then sees a timeout even though the
///   files installed — precisely the ambiguity §5.9 resolves by making
///   installations idempotent ("extra installations are not harmful"),
///   so the inevitable retry converges.
///
/// `prev` is the archive the DCM last pushed to this host, if it still
/// holds one: stale members whose host-side base CRC matches the cached
/// copy are shipped as line patches against it instead of whole.
pub fn run_update_over(
    net: &dyn Network,
    host: &mut SimHost,
    credentials: Option<&UpdateCredentials>,
    archive: &Archive,
    prev: Option<&Archive>,
    target: &str,
    script: &Script,
) -> Result<(), UpdateError> {
    let mut stats = TransferStats::default();
    run_update_instrumented(
        net,
        host,
        credentials,
        archive,
        prev,
        target,
        script,
        &mut stats,
    )
}

/// [`run_update_over`] that additionally fills `stats` with patch/whole
/// transfer accounting and, on failure, the protocol leg that broke.
#[allow(clippy::too_many_arguments)]
pub fn run_update_instrumented(
    net: &dyn Network,
    host: &mut SimHost,
    credentials: Option<&UpdateCredentials>,
    archive: &Archive,
    prev: Option<&Archive>,
    target: &str,
    script: &Script,
    stats: &mut TransferStats,
) -> Result<(), UpdateError> {
    // A. Transfer phase.
    // A.1 Connect and authenticate.
    stats.failed_leg = Some("connect");
    net.connect(&host.name).map_err(|f| f.to_update_error())?;
    if !host.reachable() {
        return Err(UpdateError::HostDown);
    }
    if let Some(verifier) = &host.verifier {
        let Some(creds) = credentials else {
            return Err(UpdateError::AuthFailed);
        };
        if verifier
            .verify(&creds.ticket, &creds.authenticator)
            .is_err()
        {
            return Err(UpdateError::AuthFailed);
        }
    }
    if host.fail.hang {
        return Err(UpdateError::Timeout);
    }
    // Stale staging files from a crashed previous update are deleted first.
    let stale: Vec<String> = host
        .file_names()
        .iter()
        .filter(|n| n.ends_with(STAGING_SUFFIX))
        .map(|s| s.to_string())
        .collect();
    for path in stale {
        host.remove_file(&path);
    }

    // A.2 Send the archive manifest: per-member CRCs plus the checksum of
    // the complete serialized archive.
    stats.failed_leg = Some("manifest");
    let manifest_bytes = archive.manifest().to_bytes();
    net.transmit(&host.name, manifest_bytes.len())
        .map_err(|f| f.to_update_error())?;
    let received_manifest = transmit(host, &manifest_bytes);
    // — host side: a failed self-CRC means the manifest was mangled in
    // flight; nothing has been written, so the retry is clean.
    let Some(manifest) = Manifest::from_bytes(&received_manifest) else {
        return Err(UpdateError::Checksum);
    };

    // A.3 The host diffs the manifest against its installed copy of the
    // target archive and replies with the member names it needs, each
    // carrying the CRC of its own base copy when it has one. A missing
    // or unparseable base means everything is stale — the first push and
    // the recovery-from-tampering path are both just "all members".
    stats.failed_leg = Some("stale");
    let base = host.read_file(target).and_then(Archive::from_bytes);
    let reply = encode_stale(&stale_entries(&manifest, base.as_ref()));
    net.transmit(&host.name, reply.len())
        .map_err(|f| f.to_update_error())?;
    // — Moira side: an unparseable reply is bad data from the host.
    let Some(stale) = decode_stale(&reply) else {
        return Err(UpdateError::BadData);
    };

    // A.4 Transfer the stale members — as a line patch where the host's
    // base CRC matches the copy the DCM last pushed (and the patch is
    // actually smaller), otherwise whole.
    stats.failed_leg = Some("delta");
    let mut delta: Vec<(String, MemberDelta)> = Vec::with_capacity(stale.len());
    for (name, base_crc) in &stale {
        let Some(data) = archive.get(name) else {
            // The host asked for a member the archive does not carry; a
            // corrupted reply. The whole-archive verify would reject the
            // reconstruction anyway, so just skip it.
            continue;
        };
        let patch = base_crc
            .and_then(|crc| {
                let prev_member = prev?.get(name)?;
                (crc32(prev_member) == crc).then(|| line_patch(prev_member, data))
            })
            .filter(|patch| patch.len() < data.len());
        let entry = match patch {
            Some(patch) => {
                stats.patch_members += 1;
                stats.patch_bytes += patch.len() as u64;
                MemberDelta::Patch(patch)
            }
            None => {
                stats.full_members += 1;
                stats.full_bytes += data.len() as u64;
                MemberDelta::Full(data.to_vec())
            }
        };
        delta.push((name.clone(), entry));
    }
    let delta_bytes = encode_delta(&delta);
    net.transmit(&host.name, delta_bytes.len())
        .map_err(|f| f.to_update_error())?;
    let received = transmit(host, &delta_bytes);
    let Some(delta) = decode_delta(&received) else {
        return Err(UpdateError::Checksum);
    };
    // — host side: materialize each transferred member (applying patches
    // against the base copy), then reconstruct the complete archive in
    // manifest order, preferring fresh members over the base, and verify
    // the whole-archive checksum before anything touches disk.
    let mut fresh: HashMap<String, Vec<u8>> = HashMap::with_capacity(delta.len());
    for (name, entry) in delta {
        let data = match entry {
            MemberDelta::Full(data) => data,
            MemberDelta::Patch(patch) => {
                // A patch without a base copy is bad data; a patch that
                // does not apply means something was mangled in flight.
                let Some(base_member) = base.as_ref().and_then(|b| b.get(&name)) else {
                    return Err(UpdateError::BadData);
                };
                let Some(applied) = apply_line_patch(base_member, &patch) else {
                    return Err(UpdateError::Checksum);
                };
                applied
            }
        };
        fresh.insert(name, data);
    }
    let mut rebuilt = Archive::new();
    for (name, _) in &manifest.entries {
        let data = fresh
            .get(name)
            .map(|d| d.as_slice())
            .or_else(|| base.as_ref().and_then(|b| b.get(name)));
        let Some(data) = data else {
            return Err(UpdateError::BadData);
        };
        if rebuilt.add(name, data.to_vec()).is_err() {
            return Err(UpdateError::BadData);
        }
    }
    let rebuilt_bytes = rebuilt.to_bytes();
    if crc32(&rebuilt_bytes) != manifest.full_crc {
        return Err(UpdateError::Checksum);
    }
    match host.write_file(target, &rebuilt_bytes) {
        Ok(()) => {}
        Err(HostError::Down) => return Err(UpdateError::HostDown),
        Err(_) => return Err(UpdateError::BadData),
    }

    // A.5 Transfer the installation instruction sequence.
    stats.failed_leg = Some("script");
    let script_text = script.to_text();
    net.transmit(&host.name, script_text.len())
        .map_err(|f| f.to_update_error())?;
    let received_script = transmit(host, script_text.as_bytes());
    if crc32(&received_script) != crc32(script_text.as_bytes()) {
        return Err(UpdateError::Checksum);
    }
    match host.write_file(SCRIPT_PATH, &received_script) {
        Ok(()) => {}
        Err(_) => return Err(UpdateError::HostDown),
    }
    // A.6 Flush all data to disk — the in-memory host is always durable.

    // B. Execution phase, driven by a single command from Moira; the host
    // executes the staged script against the staged archive.
    stats.failed_leg = Some("execute");
    net.transmit(&host.name, 1)
        .map_err(|f| f.to_update_error())?;
    let result = execute_on_host(host, target);

    // C. Confirm installation. The confirmation travels back over the
    // network: if it is lost, Moira must assume failure and retry, even
    // though the host may have installed everything.
    match result {
        Ok(0) => {
            stats.failed_leg = Some("confirm");
            net.transmit(&host.name, 1)
                .map_err(|f| f.to_update_error())?;
            stats.failed_leg = None;
            Ok(())
        }
        Ok(code) => Err(UpdateError::ExecFailed(code)),
        Err(HostError::Down) => Err(UpdateError::HostDown),
        Err(_) => Err(UpdateError::BadData),
    }
}

/// The server side of the execution phase: parse the staged script and run
/// it. Public so crash-recovery tests can re-drive a rebooted host.
pub fn execute_on_host(host: &mut SimHost, target: &str) -> Result<i32, HostError> {
    let script_bytes = match host.read_file(SCRIPT_PATH) {
        Some(b) => b.to_vec(),
        None => return Ok(200),
    };
    let Some(script) = String::from_utf8(script_bytes)
        .ok()
        .and_then(|t| Script::from_text(&t))
    else {
        return Ok(201);
    };
    let Some(archive) = host.read_file(target).and_then(Archive::from_bytes) else {
        return Ok(202);
    };
    for instruction in &script.instructions {
        match instruction {
            Instruction::Extract { member, dest } => {
                let Some(data) = archive.get(member).map(|d| d.to_vec()) else {
                    return Ok(203);
                };
                host.write_file(&format!("{dest}{STAGING_SUFFIX}"), &data)?;
            }
            Instruction::Swap { file } => {
                // Keep the old version for Revert, then swap atomically.
                if let Some(old) = host.read_file(file).map(|d| d.to_vec()) {
                    host.write_file(&format!("{file}{BACKUP_SUFFIX}"), &old)?;
                }
                host.rename(&format!("{file}{STAGING_SUFFIX}"), file)?;
            }
            Instruction::Revert { file } => {
                host.rename(&format!("{file}{BACKUP_SUFFIX}"), file)?;
            }
            Instruction::Signal { pidfile } => host.signal(pidfile)?,
            Instruction::Exec { command } => {
                let code = host.exec(command)?;
                if code != 0 {
                    return Ok(code);
                }
            }
        }
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_archive() -> Archive {
        let mut a = Archive::new();
        a.add("passwd.db", b"babette:*:6530\n".to_vec()).unwrap();
        a.add("uid.db", b"6530.uid\n".to_vec()).unwrap();
        a
    }

    fn sample_script(a: &Archive) -> Script {
        Script::standard(a, "/var/hesiod", "restart-hesiod")
    }

    #[test]
    fn script_round_trip() {
        let a = sample_archive();
        let s = sample_script(&a);
        assert_eq!(Script::from_text(&s.to_text()).unwrap(), s);
        assert!(Script::from_text("garbage line here\n").is_none());
        // Exercise each instruction's serialization.
        for inst in [
            Instruction::Revert {
                file: "/etc/passwd".into(),
            },
            Instruction::Signal {
                pidfile: "/var/run/hesiod.pid".into(),
            },
        ] {
            assert_eq!(Instruction::from_line(&inst.to_line()).unwrap(), inst);
        }
    }

    #[test]
    fn successful_update_installs_files() {
        let mut host = SimHost::new("SUOMI.MIT.EDU");
        let a = sample_archive();
        run_update(&mut host, &a, "/tmp/hesiod.out", &sample_script(&a)).unwrap();
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\n"
        );
        assert_eq!(host.read_file("/var/hesiod/uid.db").unwrap(), b"6530.uid\n");
        assert_eq!(host.exec_log, vec!["restart-hesiod"]);
        // No staging debris.
        assert!(!host
            .file_names()
            .iter()
            .any(|n| n.ends_with(STAGING_SUFFIX)));
    }

    #[test]
    fn reinstallation_is_idempotent() {
        // "Since the all the data files being prepared are valid, extra
        // installations are not harmful."
        let mut host = SimHost::new("X");
        let a = sample_archive();
        let s = sample_script(&a);
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\n"
        );
    }

    #[test]
    fn down_host_reported() {
        let mut host = SimHost::new("X");
        host.up = false;
        let a = sample_archive();
        assert_eq!(
            run_update(&mut host, &a, "/tmp/t", &sample_script(&a)),
            Err(UpdateError::HostDown)
        );
        host.reboot();
        host.fail.refuse_connect = true;
        assert_eq!(
            run_update(&mut host, &a, "/tmp/t", &sample_script(&a)),
            Err(UpdateError::HostDown)
        );
    }

    #[test]
    fn corruption_caught_by_checksum() {
        let mut host = SimHost::new("X");
        host.fail.corrupt_transfers = true;
        let a = sample_archive();
        assert_eq!(
            run_update(&mut host, &a, "/tmp/t", &sample_script(&a)),
            Err(UpdateError::Checksum)
        );
        // Nothing was installed.
        assert!(host.read_file("/var/hesiod/passwd.db").is_none());
    }

    #[test]
    fn timeout_reported() {
        let mut host = SimHost::new("X");
        host.fail.hang = true;
        let a = sample_archive();
        assert_eq!(
            run_update(&mut host, &a, "/tmp/t", &sample_script(&a)),
            Err(UpdateError::Timeout)
        );
    }

    #[test]
    fn exec_failure_is_hard() {
        let mut host = SimHost::new("X");
        host.fail.fail_exec_with = Some(9);
        let a = sample_archive();
        let err = run_update(&mut host, &a, "/tmp/t", &sample_script(&a)).unwrap_err();
        assert_eq!(err, UpdateError::ExecFailed(9));
        assert!(err.is_hard());
        assert!(!UpdateError::HostDown.is_hard());
    }

    #[test]
    fn crash_mid_execution_never_tears_installed_files() {
        let a = sample_archive();
        let s = sample_script(&a);
        // Install a good old version first.
        let mut host = SimHost::new("X");
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        let mut newer = Archive::new();
        newer.add("passwd.db", b"NEW CONTENTS\n".to_vec()).unwrap();
        newer.add("uid.db", b"NEW UID\n".to_vec()).unwrap();
        // Crash at every possible op count and verify: each installed file
        // is either the complete old or the complete new version.
        for crash_at in 0..12u64 {
            let mut h = SimHost::new("X");
            run_update(&mut h, &a, "/tmp/t", &s).unwrap();
            h.fail.crash_after_ops = Some(crash_at);
            let result = run_update(
                &mut h,
                &newer,
                "/tmp/t",
                &Script::standard(&newer, "/var/hesiod", "restart"),
            );
            if result.is_ok() {
                assert_eq!(
                    h.read_file("/var/hesiod/passwd.db").unwrap(),
                    b"NEW CONTENTS\n"
                );
                continue;
            }
            for (file, old, new) in [
                (
                    "/var/hesiod/passwd.db",
                    &b"babette:*:6530\n"[..],
                    &b"NEW CONTENTS\n"[..],
                ),
                ("/var/hesiod/uid.db", &b"6530.uid\n"[..], &b"NEW UID\n"[..]),
            ] {
                let contents = h.read_file(file).unwrap();
                assert!(
                    contents == old || contents == new,
                    "crash_at={crash_at}: torn file {file}: {contents:?}"
                );
            }
        }
    }

    #[test]
    fn retry_after_crash_converges() {
        let a = sample_archive();
        let s = sample_script(&a);
        let mut host = SimHost::new("X");
        host.fail.crash_after_ops = Some(2);
        assert!(run_update(&mut host, &a, "/tmp/t", &s).is_err());
        // "Updates not received will be retried at a later point until they
        // succeed."
        host.reboot();
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\n"
        );
    }

    #[test]
    fn stale_staging_files_cleared_on_next_update() {
        let a = sample_archive();
        let s = sample_script(&a);
        let mut host = SimHost::new("X");
        host.write_file("/var/hesiod/passwd.db.moira_update", b"INCOMPLETE")
            .unwrap();
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        assert!(!host
            .file_names()
            .iter()
            .any(|n| n.ends_with(STAGING_SUFFIX)));
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\n"
        );
    }

    #[test]
    fn revert_restores_previous_version() {
        let a = sample_archive();
        let s = sample_script(&a);
        let mut host = SimHost::new("X");
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        let mut newer = Archive::new();
        newer.add("passwd.db", b"BROKEN\n".to_vec()).unwrap();
        newer.add("uid.db", b"BROKEN\n".to_vec()).unwrap();
        run_update(
            &mut host,
            &newer,
            "/tmp/t",
            &Script::standard(&newer, "/var/hesiod", "restart"),
        )
        .unwrap();
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"BROKEN\n"
        );
        // An operator-driven revert script puts the old file back.
        let revert = Script {
            instructions: vec![Instruction::Revert {
                file: "/var/hesiod/passwd.db".into(),
            }],
        };
        run_update(&mut host, &Archive::new(), "/tmp/t", &revert).unwrap();
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\n"
        );
    }

    #[test]
    fn signal_instruction_delivers() {
        let a = Archive::new();
        let s = Script {
            instructions: vec![Instruction::Signal {
                pidfile: "/var/run/named.pid".into(),
            }],
        };
        let mut host = SimHost::new("X");
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        assert_eq!(host.signals, vec!["/var/run/named.pid"]);
    }

    #[test]
    fn error_codes_round_trip() {
        for err in [
            UpdateError::HostDown,
            UpdateError::Timeout,
            UpdateError::Checksum,
            UpdateError::BadData,
            UpdateError::AuthFailed,
            UpdateError::Busy,
            UpdateError::ExecFailed(0),
            UpdateError::ExecFailed(203),
        ] {
            assert_eq!(UpdateError::from_code(err.code()), Some(err), "{err:?}");
        }
        assert_eq!(UpdateError::from_code(0), None);
        assert_eq!(UpdateError::from_code(99), None);
        assert!(!UpdateError::Busy.is_hard(), "busy is retried, not fatal");
    }

    /// A test network that fails the Nth leg (0 = connect) with a fixed
    /// fault, succeeding on every other leg.
    struct FailLeg {
        fail_at: u64,
        fault: crate::net::NetFault,
        legs: std::sync::atomic::AtomicU64,
    }

    impl FailLeg {
        fn new(fail_at: u64, fault: crate::net::NetFault) -> FailLeg {
            FailLeg {
                fail_at,
                fault,
                legs: std::sync::atomic::AtomicU64::new(0),
            }
        }

        fn roll(&self) -> Result<(), crate::net::NetFault> {
            let n = self.legs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if n == self.fail_at {
                Err(self.fault)
            } else {
                Ok(())
            }
        }
    }

    impl Network for FailLeg {
        fn connect(&self, _host: &str) -> Result<(), crate::net::NetFault> {
            self.roll()
        }

        fn transmit(&self, _host: &str, _len: usize) -> Result<(), crate::net::NetFault> {
            self.roll()
        }
    }

    #[test]
    fn network_fault_on_any_leg_is_soft_and_retry_converges() {
        use crate::net::NetFault;
        let a = sample_archive();
        let s = sample_script(&a);
        // Seven legs: connect, manifest, stale reply, partial archive,
        // script, execute-go, confirm.
        for leg in 0..7u64 {
            let mut host = SimHost::new("X");
            let net = FailLeg::new(leg, NetFault::Dropped);
            let err = run_update_over(&net, &mut host, None, &a, None, "/tmp/t", &s).unwrap_err();
            assert!(!err.is_hard(), "leg {leg}: {err:?}");
            // Retry over a healed network always converges to the full
            // install, whatever state the failed attempt left behind.
            run_update(&mut host, &a, "/tmp/t", &s).unwrap();
            assert_eq!(
                host.read_file("/var/hesiod/passwd.db").unwrap(),
                b"babette:*:6530\n"
            );
        }
    }

    #[test]
    fn lost_confirmation_reports_timeout_but_files_installed() {
        use crate::net::NetFault;
        let a = sample_archive();
        let s = sample_script(&a);
        let mut host = SimHost::new("X");
        // Leg 6 is the confirmation; the host has done all the work.
        let net = FailLeg::new(6, NetFault::TimedOut);
        assert_eq!(
            run_update_over(&net, &mut host, None, &a, None, "/tmp/t", &s),
            Err(UpdateError::Timeout)
        );
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\n",
            "the install completed even though Moira never heard the confirm"
        );
        // The retried update is harmless ("extra installations are not
        // harmful") and this time confirms.
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
    }

    #[test]
    fn partition_reported_as_host_down() {
        use crate::net::NetFault;
        let a = sample_archive();
        let s = sample_script(&a);
        let mut host = SimHost::new("X");
        let net = FailLeg::new(0, NetFault::Partitioned);
        assert_eq!(
            run_update_over(&net, &mut host, None, &a, None, "/tmp/t", &s),
            Err(UpdateError::HostDown)
        );
        assert!(host.file_names().is_empty(), "nothing reached the host");
    }

    /// A network that records every transmit length, for observing how many
    /// bytes each leg put on the wire.
    #[derive(Default)]
    struct RecordNet {
        lens: std::sync::Mutex<Vec<usize>>,
    }

    impl RecordNet {
        /// Transmit lengths of the last update: `[manifest, stale reply,
        /// partial archive, script, go, confirm]`.
        fn legs(&self) -> Vec<usize> {
            self.lens.lock().unwrap().clone()
        }
    }

    impl Network for RecordNet {
        fn connect(&self, _host: &str) -> Result<(), crate::net::NetFault> {
            Ok(())
        }

        fn transmit(&self, _host: &str, len: usize) -> Result<(), crate::net::NetFault> {
            self.lens.lock().unwrap().push(len);
            Ok(())
        }
    }

    #[test]
    fn second_update_ships_only_stale_members() {
        let a = sample_archive();
        let s = sample_script(&a);
        let mut host = SimHost::new("X");
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();

        // Change one of the two members.
        let mut b = Archive::new();
        b.add("passwd.db", b"babette:*:6530\nnewbie:*:7000\n".to_vec())
            .unwrap();
        b.add("uid.db", b"6530.uid\n".to_vec()).unwrap();
        let net = RecordNet::default();
        run_update_over(
            &net,
            &mut host,
            None,
            &b,
            None,
            "/tmp/t",
            &sample_script(&b),
        )
        .unwrap();
        let legs = net.legs();
        let expected_partial = encode_delta(&[(
            "passwd.db".to_owned(),
            MemberDelta::Full(b.get("passwd.db").unwrap().to_vec()),
        )])
        .len();
        assert_eq!(legs[2], expected_partial, "only passwd.db crossed");
        assert!(legs[2] < b.to_bytes().len());
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\nnewbie:*:7000\n"
        );

        // A third push with nothing changed transfers an empty delta.
        let net = RecordNet::default();
        run_update_over(
            &net,
            &mut host,
            None,
            &b,
            None,
            "/tmp/t",
            &sample_script(&b),
        )
        .unwrap();
        assert_eq!(
            net.legs()[2],
            encode_delta(&[]).len(),
            "no stale members: the partial leg is the empty frame"
        );
    }

    #[test]
    fn corrupted_base_falls_back_to_full_transfer() {
        let a = sample_archive();
        let s = sample_script(&a);
        let mut host = SimHost::new("X");
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        // Someone tampered with the host's copy of the target archive.
        host.write_file("/tmp/t", b"NOT AN ARCHIVE").unwrap();
        let net = RecordNet::default();
        run_update_over(&net, &mut host, None, &a, Some(&a), "/tmp/t", &s).unwrap();
        let expected: Vec<(String, MemberDelta)> = a
            .iter()
            .map(|(n, d)| (n.to_owned(), MemberDelta::Full(d.to_vec())))
            .collect();
        assert_eq!(
            net.legs()[2],
            encode_delta(&expected).len(),
            "unparseable base: every member ships whole, even with a cached prev"
        );
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\n"
        );
    }

    #[test]
    fn removed_member_disappears_from_target_archive() {
        let a = sample_archive();
        let mut host = SimHost::new("X");
        run_update(&mut host, &a, "/tmp/t", &sample_script(&a)).unwrap();
        let mut b = Archive::new();
        b.add("passwd.db", b"babette:*:6530\n".to_vec()).unwrap();
        run_update(&mut host, &b, "/tmp/t", &sample_script(&b)).unwrap();
        // The reconstructed target archive matches the new archive exactly:
        // the dropped member is gone, not resurrected from the base copy.
        let installed = Archive::from_bytes(host.read_file("/tmp/t").unwrap()).unwrap();
        assert_eq!(installed, b);
    }

    #[test]
    fn stale_reply_round_trip() {
        for entries in [
            vec![],
            vec![("passwd.db".to_owned(), Some(0xdead_beef))],
            vec![
                ("a".to_owned(), None),
                ("b c".to_owned(), Some(0)),
                (String::new(), None),
            ],
        ] {
            assert_eq!(decode_stale(&encode_stale(&entries)), Some(entries));
        }
        assert_eq!(decode_stale(&[0, 0, 0, 1]), None, "truncated");
        let mut extra = encode_stale(&[("x".to_owned(), None)]);
        extra.push(0);
        assert_eq!(decode_stale(&extra), None, "trailing garbage");
        // An invalid has_base tag is a framing violation.
        let mut bad = encode_stale(&[("x".to_owned(), None)]);
        let tag_at = bad.len() - 1;
        bad[tag_at] = 7;
        assert_eq!(decode_stale(&bad), None, "bad has_base tag");
    }

    #[test]
    fn line_patch_round_trip() {
        let cases: &[(&[u8], &[u8])] = &[
            (b"", b""),
            (b"", b"new file\n"),
            (b"old\n", b""),
            (b"a\nb\nc\n", b"a\nb\nc\n"),
            (b"a\nb\nc\n", b"a\nB\nc\n"),
            (b"a\nb\nc\nd\n", b"b\nd\na\n"),
            (b"x\ny\n", b"x\ny\nz"), // no trailing newline
            (b"dup\ndup\nq\n", b"dup\nq\ndup\n"),
            (
                b"bytes\x00with\x01noise\n",
                b"bytes\x00with\x01noise\nmore\n",
            ),
        ];
        for (old, new) in cases {
            let patch = line_patch(old, new);
            assert_eq!(
                apply_line_patch(old, &patch).as_deref(),
                Some(*new),
                "old={old:?} new={new:?}"
            );
        }
        // A copy directive past the end of the base must not apply.
        let mut patch = Vec::new();
        patch.extend_from_slice(&1u32.to_be_bytes());
        patch.push(0);
        patch.extend_from_slice(&5u32.to_be_bytes());
        patch.extend_from_slice(&1u32.to_be_bytes());
        assert_eq!(apply_line_patch(b"one line\n", &patch), None);
        // Truncations never apply.
        let patch = line_patch(b"a\nb\n", b"a\nc\n");
        for cut in 0..patch.len() {
            assert!(
                apply_line_patch(b"a\nb\n", &patch[..cut]).is_none(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn line_patch_of_small_edit_is_small() {
        // 10k passwd-style lines, 10 changed: the patch is a few copy
        // directives plus the changed lines, far below the full member.
        let old: Vec<u8> = (0..10_000)
            .flat_map(|i| format!("user{i}:*:{}:/bin/csh\n", 5000 + i).into_bytes())
            .collect();
        let new: Vec<u8> = (0..10_000)
            .flat_map(|i| {
                let shell = if i % 1000 == 0 {
                    "/bin/tcsh"
                } else {
                    "/bin/csh"
                };
                format!("user{i}:*:{}:{shell}\n", 5000 + i).into_bytes()
            })
            .collect();
        let patch = line_patch(&old, &new);
        assert_eq!(apply_line_patch(&old, &patch).as_deref(), Some(&new[..]));
        assert!(
            patch.len() * 100 < new.len(),
            "patch {} bytes vs member {} bytes",
            patch.len(),
            new.len()
        );
    }

    #[test]
    fn matching_base_ships_patch_not_member() {
        // Push a large member, change a little, push again with `prev`
        // cached: the partial leg carries a patch, not the member.
        let big: Vec<u8> = (0..2_000)
            .flat_map(|i| format!("user{i}:*:{}\n", 5000 + i).into_bytes())
            .collect();
        let mut changed = big.clone();
        changed.extend_from_slice(b"newbie:*:7000\n");
        let a = Archive::from_members(vec![("passwd.db".into(), big)]).unwrap();
        let b = Archive::from_members(vec![("passwd.db".into(), changed.clone())]).unwrap();
        let s = sample_script(&b);
        let mut host = SimHost::new("X");
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();

        let net = RecordNet::default();
        run_update_over(&net, &mut host, None, &b, Some(&a), "/tmp/t", &s).unwrap();
        let member_len = b.get("passwd.db").unwrap().len();
        assert!(
            net.legs()[2] * 10 < member_len,
            "patch leg {} vs member {}",
            net.legs()[2],
            member_len
        );
        assert_eq!(host.read_file("/var/hesiod/passwd.db").unwrap(), changed);
        assert_eq!(
            Archive::from_bytes(host.read_file("/tmp/t").unwrap()).unwrap(),
            b,
            "the reconstructed target archive is exact"
        );
    }

    #[test]
    fn mismatched_base_falls_back_to_whole_member() {
        // The DCM's cached prev does not match what the host actually
        // holds (say the host was re-imaged from an older push): the CRC
        // gate rejects the patch and the whole member ships, converging.
        let a = sample_archive();
        let s = sample_script(&a);
        let mut host = SimHost::new("X");
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();

        let mut b = Archive::new();
        b.add("passwd.db", b"babette:*:6530\nnewbie:*:7000\n".to_vec())
            .unwrap();
        b.add("uid.db", b"6530.uid\n".to_vec()).unwrap();
        let mut wrong_prev = Archive::new();
        wrong_prev
            .add("passwd.db", b"ancient:*:1\n".to_vec())
            .unwrap();
        wrong_prev.add("uid.db", b"1.uid\n".to_vec()).unwrap();
        let net = RecordNet::default();
        run_update_over(
            &net,
            &mut host,
            None,
            &b,
            Some(&wrong_prev),
            "/tmp/t",
            &sample_script(&b),
        )
        .unwrap();
        let expected = encode_delta(&[(
            "passwd.db".to_owned(),
            MemberDelta::Full(b.get("passwd.db").unwrap().to_vec()),
        )])
        .len();
        assert_eq!(net.legs()[2], expected, "whole member, no patch");
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\nnewbie:*:7000\n"
        );
    }

    #[test]
    fn transfer_stats_split_patch_and_whole_members() {
        // First push: everything ships whole. Second push with a small
        // edit and the prev archive cached: the changed member rides as a
        // patch. A lost confirmation pins the failure on that leg.
        let big: Vec<u8> = (0..2_000)
            .flat_map(|i| format!("user{i}:*:{}\n", 5000 + i).into_bytes())
            .collect();
        let mut changed = big.clone();
        changed.extend_from_slice(b"newbie:*:7000\n");
        let a = Archive::from_members(vec![("passwd.db".into(), big)]).unwrap();
        let b = Archive::from_members(vec![("passwd.db".into(), changed)]).unwrap();

        let mut host = SimHost::new("X");
        let mut first = TransferStats::default();
        run_update_instrumented(
            &PerfectNetwork,
            &mut host,
            None,
            &a,
            None,
            "/tmp/t",
            &sample_script(&a),
            &mut first,
        )
        .unwrap();
        assert_eq!(first.failed_leg, None);
        assert_eq!(first.patch_members, 0);
        assert_eq!(first.full_members, 1);
        assert_eq!(first.full_bytes, a.get("passwd.db").unwrap().len() as u64);

        let mut second = TransferStats::default();
        run_update_instrumented(
            &PerfectNetwork,
            &mut host,
            None,
            &b,
            Some(&a),
            "/tmp/t",
            &sample_script(&b),
            &mut second,
        )
        .unwrap();
        assert_eq!(second.failed_leg, None);
        assert_eq!(second.patch_members, 1);
        assert_eq!(second.full_members, 0);
        assert!(
            second.patch_bytes > 0
                && second.patch_bytes < b.get("passwd.db").unwrap().len() as u64 / 10,
            "patch bytes {} vs member {}",
            second.patch_bytes,
            b.get("passwd.db").unwrap().len()
        );

        // An unreachable host fails on the connect leg.
        let mut downed = SimHost::new("Y");
        downed.up = false;
        let mut failed = TransferStats::default();
        let err = run_update_instrumented(
            &PerfectNetwork,
            &mut downed,
            None,
            &a,
            None,
            "/tmp/t",
            &sample_script(&a),
            &mut failed,
        )
        .unwrap_err();
        assert_eq!(err, UpdateError::HostDown);
        assert_eq!(failed.failed_leg, Some("connect"));

        // Fault network leg 5 (0-indexed: connect, manifest, stale, delta,
        // script, execute-go, confirm): the failure lands on the execute
        // leg.
        let net = FailLeg::new(5, crate::net::NetFault::TimedOut);
        let mut mid = TransferStats::default();
        let err = run_update_instrumented(
            &net,
            &mut SimHost::new("Z"),
            None,
            &a,
            None,
            "/tmp/t",
            &sample_script(&a),
            &mut mid,
        )
        .unwrap_err();
        assert_eq!(err, UpdateError::Timeout);
        assert_eq!(mid.failed_leg, Some("execute"));
    }

    #[test]
    fn missing_member_is_soft_error() {
        let a = sample_archive();
        let bad = Script {
            instructions: vec![Instruction::Extract {
                member: "nonexistent.db".into(),
                dest: "/var/x".into(),
            }],
        };
        let mut host = SimHost::new("X");
        let err = run_update(&mut host, &a, "/tmp/t", &bad).unwrap_err();
        assert_eq!(err, UpdateError::ExecFailed(203));
    }
}
