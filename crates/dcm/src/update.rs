//! The Moira-to-server update protocol (§5.9).
//!
//! Goals, from the paper: "Completely automatic update for normal cases and
//! expected kinds of failures. Survives clean server crashes. Survives
//! clean Moira crashes. Easy to understand state and recovery by hand."
//! The strategy is atomic operations only: transfer everything first (with
//! checksums), then execute an instruction sequence whose file
//! installations are atomic renames, then confirm.

use moira_krb::ticket::{Authenticator, Ticket};

use crate::archive::{crc32, Archive};
use crate::host::{HostError, SimHost};
use crate::net::{Network, PerfectNetwork};

/// Suffix for staged files awaiting the atomic swap; stale ones are
/// "deleted (as it may be incomplete) when the next update starts".
pub const STAGING_SUFFIX: &str = ".moira_update";

/// Suffix for the previous version kept for `Revert`.
pub const BACKUP_SUFFIX: &str = ".moira_backup";

/// Where the instruction script is staged on the target.
pub const SCRIPT_PATH: &str = "/tmp/moira_script";

/// The §5.9 execution-phase instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instruction {
    /// Extract one member of the transferred tar file into
    /// `dest.moira_update` — "Rather than extract all of the files at once,
    /// only the ones that are needed are extracted one at a time."
    Extract {
        /// Member name within the archive.
        member: String,
        /// Destination path (staged with [`STAGING_SUFFIX`]).
        dest: String,
    },
    /// Swap the staged file in via atomic rename, keeping the old version.
    Swap {
        /// The target path.
        file: String,
    },
    /// Put the old file back — "may be useful in the case of an erroneous
    /// installation."
    Revert {
        /// The target path.
        file: String,
    },
    /// Send a signal to the process whose pid is recorded in a file.
    Signal {
        /// Path of the pid file.
        pidfile: String,
    },
    /// Execute a supplied command.
    Exec {
        /// The command line.
        command: String,
    },
}

impl Instruction {
    /// Serializes to one script line.
    pub fn to_line(&self) -> String {
        match self {
            Instruction::Extract { member, dest } => format!("extract {member} {dest}"),
            Instruction::Swap { file } => format!("swap {file}"),
            Instruction::Revert { file } => format!("revert {file}"),
            Instruction::Signal { pidfile } => format!("signal {pidfile}"),
            Instruction::Exec { command } => format!("exec {command}"),
        }
    }

    /// Parses one script line.
    pub fn from_line(line: &str) -> Option<Instruction> {
        let mut words = line.splitn(2, ' ');
        let op = words.next()?;
        let rest = words.next().unwrap_or("");
        Some(match op {
            "extract" => {
                let mut parts = rest.splitn(2, ' ');
                Instruction::Extract {
                    member: parts.next()?.to_owned(),
                    dest: parts.next()?.to_owned(),
                }
            }
            "swap" => Instruction::Swap {
                file: rest.to_owned(),
            },
            "revert" => Instruction::Revert {
                file: rest.to_owned(),
            },
            "signal" => Instruction::Signal {
                pidfile: rest.to_owned(),
            },
            "exec" => Instruction::Exec {
                command: rest.to_owned(),
            },
            _ => return None,
        })
    }
}

/// A whole installation script.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Script {
    /// Instructions in execution order.
    pub instructions: Vec<Instruction>,
}

impl Script {
    /// Builds the standard script for a service: extract + swap each
    /// archive member into place under `install_dir`, then run the
    /// service's install command.
    pub fn standard(archive: &Archive, install_dir: &str, install_cmd: &str) -> Script {
        let mut instructions = Vec::new();
        for (member, _) in &archive.members {
            let dest = format!("{}/{member}", install_dir.trim_end_matches('/'));
            instructions.push(Instruction::Extract {
                member: member.clone(),
                dest: dest.clone(),
            });
            instructions.push(Instruction::Swap { file: dest });
        }
        instructions.push(Instruction::Exec {
            command: install_cmd.to_owned(),
        });
        Script { instructions }
    }

    /// Serializes the script.
    pub fn to_text(&self) -> String {
        self.instructions
            .iter()
            .map(|i| i.to_line() + "\n")
            .collect()
    }

    /// Parses a serialized script.
    pub fn from_text(text: &str) -> Option<Script> {
        let instructions = text
            .lines()
            .filter(|l| !l.trim().is_empty())
            .map(Instruction::from_line)
            .collect::<Option<Vec<_>>>()?;
        Some(Script { instructions })
    }
}

/// Failures the DCM observes from an update attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateError {
    /// Could not connect / host went away ("tagged for retry at a later
    /// time" — a soft error).
    HostDown,
    /// A single operation exceeded the timeout; "the connection is closed,
    /// and the installation assumed to have failed" (soft).
    Timeout,
    /// Transfer checksum mismatch (soft; retried).
    Checksum,
    /// The target could not parse what arrived (soft).
    BadData,
    /// The installation script exited non-zero (a hard error: recorded and
    /// reported via Zephyr).
    ExecFailed(i32),
    /// Kerberos mutual authentication failed at connection set-up (soft;
    /// retried — tickets may simply have expired).
    AuthFailed,
    /// Another update of the same host is already in progress (soft; the
    /// conflict clears when the other update finishes).
    Busy,
}

impl UpdateError {
    /// Hard errors stop retries until an operator resets them; soft errors
    /// are retried on later DCM passes.
    pub fn is_hard(&self) -> bool {
        matches!(self, UpdateError::ExecFailed(_))
    }

    /// Numeric code recorded in `hosterror`.
    pub fn code(&self) -> i32 {
        match self {
            UpdateError::HostDown => 100,
            UpdateError::Timeout => 101,
            UpdateError::Checksum => 102,
            UpdateError::BadData => 103,
            UpdateError::ExecFailed(c) => 1000 + c,
            UpdateError::AuthFailed => 104,
            UpdateError::Busy => 105,
        }
    }

    /// Recovers the error from its [`UpdateError::code`] value.
    pub fn from_code(code: i32) -> Option<UpdateError> {
        Some(match code {
            100 => UpdateError::HostDown,
            101 => UpdateError::Timeout,
            102 => UpdateError::Checksum,
            103 => UpdateError::BadData,
            104 => UpdateError::AuthFailed,
            105 => UpdateError::Busy,
            c if c >= 1000 => UpdateError::ExecFailed(c - 1000),
            _ => return None,
        })
    }

    /// Human-readable message recorded in `hosterrmsg`.
    pub fn message(&self) -> String {
        match self {
            UpdateError::HostDown => "server host unreachable".to_owned(),
            UpdateError::Timeout => "update timed out".to_owned(),
            UpdateError::Checksum => "file checksum mismatch".to_owned(),
            UpdateError::BadData => "transferred data unparsable".to_owned(),
            UpdateError::ExecFailed(c) => format!("install script exited {c}"),
            UpdateError::AuthFailed => "kerberos authentication failed".to_owned(),
            UpdateError::Busy => "host update already in progress".to_owned(),
        }
    }
}

/// Simulates the network leg of a transfer, applying the host's corruption
/// plan.
fn transmit(host: &SimHost, data: &[u8]) -> Vec<u8> {
    let mut wire = data.to_vec();
    if host.fail.corrupt_transfers && !wire.is_empty() {
        let idx = wire.len() / 2;
        wire[idx] ^= 0x20;
    }
    wire
}

/// Kerberos credentials presented by the DCM at connection set-up.
#[derive(Debug, Clone)]
pub struct UpdateCredentials {
    /// Ticket for the host's `rcmd` service.
    pub ticket: Ticket,
    /// Fresh authenticator under the session key.
    pub authenticator: Authenticator,
}

/// Runs one complete update against a host: transfer phase, execution
/// phase, confirmation. Returns `Ok(())` only when the server confirmed a
/// successful installation. Unauthenticated convenience wrapper for hosts
/// without a verifier.
pub fn run_update(
    host: &mut SimHost,
    archive: &Archive,
    target: &str,
    script: &Script,
) -> Result<(), UpdateError> {
    run_update_with_auth(host, None, archive, target, script)
}

/// [`run_update`] presenting Kerberos credentials. Hosts with a configured
/// verifier reject connections whose credentials are absent, forged, or
/// replayed — "Kerberos is used to verify the identity of both ends at
/// connection set-up time" (§5.9.2). Runs over a [`PerfectNetwork`].
pub fn run_update_with_auth(
    host: &mut SimHost,
    credentials: Option<&UpdateCredentials>,
    archive: &Archive,
    target: &str,
    script: &Script,
) -> Result<(), UpdateError> {
    run_update_over(&PerfectNetwork, host, credentials, archive, target, script)
}

/// [`run_update_with_auth`] with every connection and transfer leg routed
/// through a [`Network`], which may partition, drop, or stall any of them.
///
/// The fault surface mirrors a real TCP update connection:
///
/// - connection set-up can fail (host partitioned away, SYN lost);
/// - either transfer leg (archive, then script) can fail mid-stream;
/// - the **confirmation** leg can fail *after* the host executed the
///   script successfully. The DCM then sees a timeout even though the
///   files installed — precisely the ambiguity §5.9 resolves by making
///   installations idempotent ("extra installations are not harmful"),
///   so the inevitable retry converges.
pub fn run_update_over(
    net: &dyn Network,
    host: &mut SimHost,
    credentials: Option<&UpdateCredentials>,
    archive: &Archive,
    target: &str,
    script: &Script,
) -> Result<(), UpdateError> {
    // A. Transfer phase.
    // A.1 Connect and authenticate.
    net.connect(&host.name).map_err(|f| f.to_update_error())?;
    if !host.reachable() {
        return Err(UpdateError::HostDown);
    }
    if let Some(verifier) = &host.verifier {
        let Some(creds) = credentials else {
            return Err(UpdateError::AuthFailed);
        };
        if verifier
            .verify(&creds.ticket, &creds.authenticator)
            .is_err()
        {
            return Err(UpdateError::AuthFailed);
        }
    }
    if host.fail.hang {
        return Err(UpdateError::Timeout);
    }
    // Stale staging files from a crashed previous update are deleted first.
    let stale: Vec<String> = host
        .file_names()
        .iter()
        .filter(|n| n.ends_with(STAGING_SUFFIX))
        .map(|s| s.to_string())
        .collect();
    for path in stale {
        host.remove_file(&path);
    }

    // A.2 Transfer the data file, with checksum.
    let bytes = archive.to_bytes();
    let checksum = crc32(&bytes);
    net.transmit(&host.name, bytes.len())
        .map_err(|f| f.to_update_error())?;
    let received = transmit(host, &bytes);
    if crc32(&received) != checksum {
        return Err(UpdateError::Checksum);
    }
    match host.write_file(target, &received) {
        Ok(()) => {}
        Err(HostError::Down) => return Err(UpdateError::HostDown),
        Err(_) => return Err(UpdateError::BadData),
    }

    // A.3 Transfer the installation instruction sequence.
    let script_text = script.to_text();
    net.transmit(&host.name, script_text.len())
        .map_err(|f| f.to_update_error())?;
    let received_script = transmit(host, script_text.as_bytes());
    if crc32(&received_script) != crc32(script_text.as_bytes()) {
        return Err(UpdateError::Checksum);
    }
    match host.write_file(SCRIPT_PATH, &received_script) {
        Ok(()) => {}
        Err(_) => return Err(UpdateError::HostDown),
    }
    // A.4 Flush all data to disk — the in-memory host is always durable.

    // B. Execution phase, driven by a single command from Moira; the host
    // executes the staged script against the staged archive.
    net.transmit(&host.name, 1)
        .map_err(|f| f.to_update_error())?;
    let result = execute_on_host(host, target);

    // C. Confirm installation. The confirmation travels back over the
    // network: if it is lost, Moira must assume failure and retry, even
    // though the host may have installed everything.
    match result {
        Ok(0) => {
            net.transmit(&host.name, 1)
                .map_err(|f| f.to_update_error())?;
            Ok(())
        }
        Ok(code) => Err(UpdateError::ExecFailed(code)),
        Err(HostError::Down) => Err(UpdateError::HostDown),
        Err(_) => Err(UpdateError::BadData),
    }
}

/// The server side of the execution phase: parse the staged script and run
/// it. Public so crash-recovery tests can re-drive a rebooted host.
pub fn execute_on_host(host: &mut SimHost, target: &str) -> Result<i32, HostError> {
    let script_bytes = match host.read_file(SCRIPT_PATH) {
        Some(b) => b.to_vec(),
        None => return Ok(200),
    };
    let Some(script) = String::from_utf8(script_bytes)
        .ok()
        .and_then(|t| Script::from_text(&t))
    else {
        return Ok(201);
    };
    let Some(archive) = host.read_file(target).and_then(Archive::from_bytes) else {
        return Ok(202);
    };
    for instruction in &script.instructions {
        match instruction {
            Instruction::Extract { member, dest } => {
                let Some(data) = archive.get(member).map(|d| d.to_vec()) else {
                    return Ok(203);
                };
                host.write_file(&format!("{dest}{STAGING_SUFFIX}"), &data)?;
            }
            Instruction::Swap { file } => {
                // Keep the old version for Revert, then swap atomically.
                if host.read_file(file).is_some() {
                    let old = host.read_file(file).expect("just checked").to_vec();
                    host.write_file(&format!("{file}{BACKUP_SUFFIX}"), &old)?;
                }
                host.rename(&format!("{file}{STAGING_SUFFIX}"), file)?;
            }
            Instruction::Revert { file } => {
                host.rename(&format!("{file}{BACKUP_SUFFIX}"), file)?;
            }
            Instruction::Signal { pidfile } => host.signal(pidfile)?,
            Instruction::Exec { command } => {
                let code = host.exec(command)?;
                if code != 0 {
                    return Ok(code);
                }
            }
        }
    }
    Ok(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_archive() -> Archive {
        let mut a = Archive::new();
        a.add("passwd.db", b"babette:*:6530\n".to_vec());
        a.add("uid.db", b"6530.uid\n".to_vec());
        a
    }

    fn sample_script(a: &Archive) -> Script {
        Script::standard(a, "/var/hesiod", "restart-hesiod")
    }

    #[test]
    fn script_round_trip() {
        let a = sample_archive();
        let s = sample_script(&a);
        assert_eq!(Script::from_text(&s.to_text()).unwrap(), s);
        assert!(Script::from_text("garbage line here\n").is_none());
        // Exercise each instruction's serialization.
        for inst in [
            Instruction::Revert {
                file: "/etc/passwd".into(),
            },
            Instruction::Signal {
                pidfile: "/var/run/hesiod.pid".into(),
            },
        ] {
            assert_eq!(Instruction::from_line(&inst.to_line()).unwrap(), inst);
        }
    }

    #[test]
    fn successful_update_installs_files() {
        let mut host = SimHost::new("SUOMI.MIT.EDU");
        let a = sample_archive();
        run_update(&mut host, &a, "/tmp/hesiod.out", &sample_script(&a)).unwrap();
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\n"
        );
        assert_eq!(host.read_file("/var/hesiod/uid.db").unwrap(), b"6530.uid\n");
        assert_eq!(host.exec_log, vec!["restart-hesiod"]);
        // No staging debris.
        assert!(!host
            .file_names()
            .iter()
            .any(|n| n.ends_with(STAGING_SUFFIX)));
    }

    #[test]
    fn reinstallation_is_idempotent() {
        // "Since the all the data files being prepared are valid, extra
        // installations are not harmful."
        let mut host = SimHost::new("X");
        let a = sample_archive();
        let s = sample_script(&a);
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\n"
        );
    }

    #[test]
    fn down_host_reported() {
        let mut host = SimHost::new("X");
        host.up = false;
        let a = sample_archive();
        assert_eq!(
            run_update(&mut host, &a, "/tmp/t", &sample_script(&a)),
            Err(UpdateError::HostDown)
        );
        host.reboot();
        host.fail.refuse_connect = true;
        assert_eq!(
            run_update(&mut host, &a, "/tmp/t", &sample_script(&a)),
            Err(UpdateError::HostDown)
        );
    }

    #[test]
    fn corruption_caught_by_checksum() {
        let mut host = SimHost::new("X");
        host.fail.corrupt_transfers = true;
        let a = sample_archive();
        assert_eq!(
            run_update(&mut host, &a, "/tmp/t", &sample_script(&a)),
            Err(UpdateError::Checksum)
        );
        // Nothing was installed.
        assert!(host.read_file("/var/hesiod/passwd.db").is_none());
    }

    #[test]
    fn timeout_reported() {
        let mut host = SimHost::new("X");
        host.fail.hang = true;
        let a = sample_archive();
        assert_eq!(
            run_update(&mut host, &a, "/tmp/t", &sample_script(&a)),
            Err(UpdateError::Timeout)
        );
    }

    #[test]
    fn exec_failure_is_hard() {
        let mut host = SimHost::new("X");
        host.fail.fail_exec_with = Some(9);
        let a = sample_archive();
        let err = run_update(&mut host, &a, "/tmp/t", &sample_script(&a)).unwrap_err();
        assert_eq!(err, UpdateError::ExecFailed(9));
        assert!(err.is_hard());
        assert!(!UpdateError::HostDown.is_hard());
    }

    #[test]
    fn crash_mid_execution_never_tears_installed_files() {
        let a = sample_archive();
        let s = sample_script(&a);
        // Install a good old version first.
        let mut host = SimHost::new("X");
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        let mut newer = Archive::new();
        newer.add("passwd.db", b"NEW CONTENTS\n".to_vec());
        newer.add("uid.db", b"NEW UID\n".to_vec());
        // Crash at every possible op count and verify: each installed file
        // is either the complete old or the complete new version.
        for crash_at in 0..12u64 {
            let mut h = SimHost::new("X");
            run_update(&mut h, &a, "/tmp/t", &s).unwrap();
            h.fail.crash_after_ops = Some(crash_at);
            let result = run_update(
                &mut h,
                &newer,
                "/tmp/t",
                &Script::standard(&newer, "/var/hesiod", "restart"),
            );
            if result.is_ok() {
                assert_eq!(
                    h.read_file("/var/hesiod/passwd.db").unwrap(),
                    b"NEW CONTENTS\n"
                );
                continue;
            }
            for (file, old, new) in [
                (
                    "/var/hesiod/passwd.db",
                    &b"babette:*:6530\n"[..],
                    &b"NEW CONTENTS\n"[..],
                ),
                ("/var/hesiod/uid.db", &b"6530.uid\n"[..], &b"NEW UID\n"[..]),
            ] {
                let contents = h.read_file(file).unwrap();
                assert!(
                    contents == old || contents == new,
                    "crash_at={crash_at}: torn file {file}: {contents:?}"
                );
            }
        }
    }

    #[test]
    fn retry_after_crash_converges() {
        let a = sample_archive();
        let s = sample_script(&a);
        let mut host = SimHost::new("X");
        host.fail.crash_after_ops = Some(2);
        assert!(run_update(&mut host, &a, "/tmp/t", &s).is_err());
        // "Updates not received will be retried at a later point until they
        // succeed."
        host.reboot();
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\n"
        );
    }

    #[test]
    fn stale_staging_files_cleared_on_next_update() {
        let a = sample_archive();
        let s = sample_script(&a);
        let mut host = SimHost::new("X");
        host.write_file("/var/hesiod/passwd.db.moira_update", b"INCOMPLETE")
            .unwrap();
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        assert!(!host
            .file_names()
            .iter()
            .any(|n| n.ends_with(STAGING_SUFFIX)));
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\n"
        );
    }

    #[test]
    fn revert_restores_previous_version() {
        let a = sample_archive();
        let s = sample_script(&a);
        let mut host = SimHost::new("X");
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        let mut newer = Archive::new();
        newer.add("passwd.db", b"BROKEN\n".to_vec());
        newer.add("uid.db", b"BROKEN\n".to_vec());
        run_update(
            &mut host,
            &newer,
            "/tmp/t",
            &Script::standard(&newer, "/var/hesiod", "restart"),
        )
        .unwrap();
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"BROKEN\n"
        );
        // An operator-driven revert script puts the old file back.
        let revert = Script {
            instructions: vec![Instruction::Revert {
                file: "/var/hesiod/passwd.db".into(),
            }],
        };
        run_update(&mut host, &Archive::new(), "/tmp/t", &revert).unwrap();
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\n"
        );
    }

    #[test]
    fn signal_instruction_delivers() {
        let a = Archive::new();
        let s = Script {
            instructions: vec![Instruction::Signal {
                pidfile: "/var/run/named.pid".into(),
            }],
        };
        let mut host = SimHost::new("X");
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
        assert_eq!(host.signals, vec!["/var/run/named.pid"]);
    }

    #[test]
    fn error_codes_round_trip() {
        for err in [
            UpdateError::HostDown,
            UpdateError::Timeout,
            UpdateError::Checksum,
            UpdateError::BadData,
            UpdateError::AuthFailed,
            UpdateError::Busy,
            UpdateError::ExecFailed(0),
            UpdateError::ExecFailed(203),
        ] {
            assert_eq!(UpdateError::from_code(err.code()), Some(err), "{err:?}");
        }
        assert_eq!(UpdateError::from_code(0), None);
        assert_eq!(UpdateError::from_code(99), None);
        assert!(!UpdateError::Busy.is_hard(), "busy is retried, not fatal");
    }

    /// A test network that fails the Nth leg (0 = connect) with a fixed
    /// fault, succeeding on every other leg.
    struct FailLeg {
        fail_at: u64,
        fault: crate::net::NetFault,
        legs: std::sync::atomic::AtomicU64,
    }

    impl FailLeg {
        fn new(fail_at: u64, fault: crate::net::NetFault) -> FailLeg {
            FailLeg {
                fail_at,
                fault,
                legs: std::sync::atomic::AtomicU64::new(0),
            }
        }

        fn roll(&self) -> Result<(), crate::net::NetFault> {
            let n = self.legs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if n == self.fail_at {
                Err(self.fault)
            } else {
                Ok(())
            }
        }
    }

    impl Network for FailLeg {
        fn connect(&self, _host: &str) -> Result<(), crate::net::NetFault> {
            self.roll()
        }

        fn transmit(&self, _host: &str, _len: usize) -> Result<(), crate::net::NetFault> {
            self.roll()
        }
    }

    #[test]
    fn network_fault_on_any_leg_is_soft_and_retry_converges() {
        use crate::net::NetFault;
        let a = sample_archive();
        let s = sample_script(&a);
        // Five legs: connect, archive, script, execute-go, confirm.
        for leg in 0..5u64 {
            let mut host = SimHost::new("X");
            let net = FailLeg::new(leg, NetFault::Dropped);
            let err = run_update_over(&net, &mut host, None, &a, "/tmp/t", &s).unwrap_err();
            assert!(!err.is_hard(), "leg {leg}: {err:?}");
            // Retry over a healed network always converges to the full
            // install, whatever state the failed attempt left behind.
            run_update(&mut host, &a, "/tmp/t", &s).unwrap();
            assert_eq!(
                host.read_file("/var/hesiod/passwd.db").unwrap(),
                b"babette:*:6530\n"
            );
        }
    }

    #[test]
    fn lost_confirmation_reports_timeout_but_files_installed() {
        use crate::net::NetFault;
        let a = sample_archive();
        let s = sample_script(&a);
        let mut host = SimHost::new("X");
        // Leg 4 is the confirmation; the host has done all the work.
        let net = FailLeg::new(4, NetFault::TimedOut);
        assert_eq!(
            run_update_over(&net, &mut host, None, &a, "/tmp/t", &s),
            Err(UpdateError::Timeout)
        );
        assert_eq!(
            host.read_file("/var/hesiod/passwd.db").unwrap(),
            b"babette:*:6530\n",
            "the install completed even though Moira never heard the confirm"
        );
        // The retried update is harmless ("extra installations are not
        // harmful") and this time confirms.
        run_update(&mut host, &a, "/tmp/t", &s).unwrap();
    }

    #[test]
    fn partition_reported_as_host_down() {
        use crate::net::NetFault;
        let a = sample_archive();
        let s = sample_script(&a);
        let mut host = SimHost::new("X");
        let net = FailLeg::new(0, NetFault::Partitioned);
        assert_eq!(
            run_update_over(&net, &mut host, None, &a, "/tmp/t", &s),
            Err(UpdateError::HostDown)
        );
        assert!(host.file_names().is_empty(), "nothing reached the host");
    }

    #[test]
    fn missing_member_is_soft_error() {
        let a = sample_archive();
        let bad = Script {
            instructions: vec![Instruction::Extract {
                member: "nonexistent.db".into(),
                dest: "/var/x".into(),
            }],
        };
        let mut host = SimHost::new("X");
        let err = run_update(&mut host, &a, "/tmp/t", &bad).unwrap_err();
        assert_eq!(err, UpdateError::ExecFailed(203));
    }
}
