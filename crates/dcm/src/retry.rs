//! The unified retry/backoff policy for soft update failures.
//!
//! The paper is terse about retry timing — soft failures are "tagged for
//! retry at a later time" (§5.7.1) — which in the original meant *every*
//! DCM pass retried every soft-failed host. Against a host that stays down
//! for a weekend that is a retry storm: a connection attempt every cron
//! interval, forever. This module centralizes the policy:
//!
//! - the **first** soft failure is retried on the very next pass (a host
//!   that blips recovers at full speed, as the paper intends);
//! - from the **second consecutive** failure on, retries back off
//!   exponentially (`base · 2^(n-2)`, capped) with deterministic jitter so
//!   a rack of hosts lost together does not thunder back together;
//! - after `escalate_after` consecutive soft failures the failure is
//!   *escalated*: treated like a hard error (operator notification via
//!   Zephyr and mail, `hosterror` set) so a silently dead host cannot hide
//!   behind soft-retry bookkeeping forever;
//! - each DCM pass attempts at most `per_run_budget` *re*-tries per
//!   service, so a mass outage cannot starve first-time updates.
//!
//! All state lives in a [`RetryBook`] keyed by `(service, host)`; the
//! serverhosts `override` bit bypasses the gate entirely (an operator
//! asking for an immediate push gets one).

use std::collections::HashMap;

/// Tunable knobs of the retry policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Backoff delay after the second consecutive soft failure, seconds.
    pub base_secs: i64,
    /// Ceiling on the backoff delay, seconds.
    pub max_secs: i64,
    /// Jitter added to each delay, as a fraction of the delay (`0.25` adds
    /// up to 25%). Deterministic per `(host, attempt)`.
    pub jitter_frac: f64,
    /// Consecutive soft failures before escalation to a hard error.
    pub escalate_after: u32,
    /// Maximum retried hosts attempted per service per DCM pass.
    pub per_run_budget: usize,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base_secs: 900,
            max_secs: 6 * 3600,
            jitter_frac: 0.25,
            escalate_after: 8,
            per_run_budget: usize::MAX,
        }
    }
}

/// Per-`(service, host)` retry state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryState {
    /// Soft failures since the last success (or operator reset).
    pub consecutive_soft: u32,
    /// Earliest virtual time the next retry may be attempted.
    pub next_retry_at: i64,
    /// Soft failures recorded over this entry's lifetime.
    pub total_failures: u64,
}

/// What recording a soft failure decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoftOutcome {
    /// Keep the failure soft; retry no earlier than `delay_secs` from now.
    Backoff {
        /// Which consecutive failure this was (1 = first).
        attempt: u32,
        /// Seconds until the retry gate reopens (0 = next pass).
        delay_secs: i64,
    },
    /// The failure streak crossed `escalate_after`: report it like a hard
    /// error and stop retrying until an operator intervenes.
    Escalate {
        /// Length of the streak that triggered escalation.
        consecutive: u32,
    },
}

/// SplitMix64 finalizer — a stateless integer hash good enough for jitter.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The DCM's ledger of soft-failure streaks.
#[derive(Debug, Default)]
pub struct RetryBook {
    policy: RetryPolicy,
    entries: HashMap<(String, String), RetryState>,
}

impl RetryBook {
    /// A book applying `policy`.
    pub fn new(policy: RetryPolicy) -> RetryBook {
        RetryBook {
            policy,
            entries: HashMap::new(),
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Replaces the policy (existing streaks keep their scheduled times).
    pub fn set_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
    }

    /// The recorded state for one `(service, host)`, if any failure streak
    /// is open.
    pub fn state(&self, service: &str, host: &str) -> Option<RetryState> {
        self.entries
            .get(&(service.to_owned(), host.to_owned()))
            .copied()
    }

    /// True if this `(service, host)` is an open retry (has failed at least
    /// once since its last success).
    pub fn is_retry(&self, service: &str, host: &str) -> bool {
        self.state(service, host).is_some()
    }

    /// True if an update of `host` may be attempted at virtual time `now`.
    /// Hosts with no open streak are always ready.
    pub fn ready(&self, service: &str, host: &str, now: i64) -> bool {
        match self.state(service, host) {
            None => true,
            Some(state) => now >= state.next_retry_at,
        }
    }

    /// Records a confirmed success, closing any open streak.
    pub fn record_success(&mut self, service: &str, host: &str) {
        self.entries.remove(&(service.to_owned(), host.to_owned()));
    }

    /// Clears an open streak without a success — the operator-reset path
    /// (`reset_server_host_error` gives the host a fresh start).
    pub fn reset(&mut self, service: &str, host: &str) {
        self.record_success(service, host);
    }

    /// Records one soft failure at virtual time `now` and decides whether
    /// to back off or escalate. On escalation the streak is cleared: the
    /// host is now gated by `hosterror`, and an operator reset restarts it
    /// from a clean slate.
    pub fn record_soft_failure(&mut self, service: &str, host: &str, now: i64) -> SoftOutcome {
        let key = (service.to_owned(), host.to_owned());
        let attempt = {
            let state = self.entries.entry(key.clone()).or_default();
            state.consecutive_soft += 1;
            state.total_failures += 1;
            state.consecutive_soft
        };
        if attempt >= self.policy.escalate_after {
            self.entries.remove(&key);
            return SoftOutcome::Escalate {
                consecutive: attempt,
            };
        }
        let delay_secs = self.delay_for(host, attempt);
        let state = self.entries.get_mut(&key).expect("just inserted");
        state.next_retry_at = now + delay_secs;
        SoftOutcome::Backoff {
            attempt,
            delay_secs,
        }
    }

    /// The backoff delay before retry `attempt + 1`: zero after the first
    /// failure, then `base · 2^(n-2)` capped at `max`, plus deterministic
    /// jitter derived from the host name and attempt number.
    fn delay_for(&self, host: &str, attempt: u32) -> i64 {
        if attempt <= 1 {
            return 0;
        }
        let exp = (attempt - 2).min(32);
        let raw = self.policy.base_secs.saturating_mul(1i64 << exp);
        let capped = raw.min(self.policy.max_secs);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in host.as_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        let roll = splitmix(h ^ u64::from(attempt));
        let jitter_span = (capped as f64 * self.policy.jitter_frac) as i64;
        let jitter = if jitter_span > 0 {
            (roll % (jitter_span as u64 + 1)) as i64
        } else {
            0
        };
        capped + jitter
    }

    /// Number of open streaks.
    pub fn open_streaks(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_policy() -> RetryPolicy {
        RetryPolicy {
            base_secs: 100,
            max_secs: 800,
            jitter_frac: 0.0,
            escalate_after: 4,
            per_run_budget: usize::MAX,
        }
    }

    #[test]
    fn first_failure_retries_immediately() {
        let mut book = RetryBook::new(quick_policy());
        assert!(book.ready("HESIOD", "KIWI.MIT.EDU", 0));
        let outcome = book.record_soft_failure("HESIOD", "KIWI.MIT.EDU", 1000);
        assert_eq!(
            outcome,
            SoftOutcome::Backoff {
                attempt: 1,
                delay_secs: 0
            }
        );
        // The very next pass may retry: a transient blip costs nothing.
        assert!(book.ready("HESIOD", "KIWI.MIT.EDU", 1000));
    }

    #[test]
    fn backoff_doubles_then_caps() {
        let mut book = RetryBook::new(quick_policy());
        let mut delays = Vec::new();
        for i in 0..3 {
            match book.record_soft_failure("HESIOD", "H", 1000 + i) {
                SoftOutcome::Backoff { delay_secs, .. } => delays.push(delay_secs),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(delays, vec![0, 100, 200]);
        // A longer streak under a higher escalation threshold hits the cap.
        let mut book = RetryBook::new(RetryPolicy {
            escalate_after: 20,
            ..quick_policy()
        });
        let mut last = 0;
        for i in 0..10 {
            if let SoftOutcome::Backoff { delay_secs, .. } =
                book.record_soft_failure("HESIOD", "H", i)
            {
                last = delay_secs;
            }
        }
        assert_eq!(last, 800, "capped at max_secs");
    }

    #[test]
    fn gate_blocks_until_delay_elapses() {
        let mut book = RetryBook::new(quick_policy());
        book.record_soft_failure("HESIOD", "H", 1000);
        match book.record_soft_failure("HESIOD", "H", 1000) {
            SoftOutcome::Backoff { delay_secs, .. } => assert_eq!(delay_secs, 100),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!book.ready("HESIOD", "H", 1050));
        assert!(book.ready("HESIOD", "H", 1100));
    }

    #[test]
    fn success_resets_the_streak() {
        let mut book = RetryBook::new(quick_policy());
        for i in 0..3 {
            book.record_soft_failure("HESIOD", "H", i);
        }
        book.record_success("HESIOD", "H");
        assert!(!book.is_retry("HESIOD", "H"));
        // The streak restarts from the immediate-retry state.
        assert_eq!(
            book.record_soft_failure("HESIOD", "H", 50),
            SoftOutcome::Backoff {
                attempt: 1,
                delay_secs: 0
            }
        );
    }

    #[test]
    fn escalates_after_threshold_and_clears() {
        let mut book = RetryBook::new(quick_policy());
        let mut outcome = None;
        for i in 0..4 {
            outcome = Some(book.record_soft_failure("HESIOD", "H", i));
        }
        assert_eq!(outcome, Some(SoftOutcome::Escalate { consecutive: 4 }));
        // Escalation hands the gate to `hosterror`; the book forgets, so an
        // operator reset starts a fresh streak.
        assert!(!book.is_retry("HESIOD", "H"));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            jitter_frac: 0.25,
            escalate_after: 20,
            ..quick_policy()
        };
        let delays: Vec<Vec<i64>> = (0..2)
            .map(|_| {
                let mut book = RetryBook::new(policy);
                (0..5)
                    .filter_map(|i| match book.record_soft_failure("NFS", "OZ", i) {
                        SoftOutcome::Backoff { delay_secs, .. } => Some(delay_secs),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        assert_eq!(delays[0], delays[1], "same inputs, same schedule");
        for (i, &d) in delays[0].iter().enumerate().skip(1) {
            let base = 100i64 << (i - 1).min(3);
            let capped = base.min(800);
            assert!(
                d >= capped && d <= capped + capped / 4,
                "attempt {}: {d} outside [{capped}, {}]",
                i + 1,
                capped + capped / 4
            );
        }
        // Different hosts land on different offsets (the anti-thundering
        // herd property) at least somewhere in the schedule.
        let mut other = RetryBook::new(policy);
        let other_delays: Vec<i64> = (0..5)
            .filter_map(|i| match other.record_soft_failure("NFS", "DOROTHY", i) {
                SoftOutcome::Backoff { delay_secs, .. } => Some(delay_secs),
                _ => None,
            })
            .collect();
        assert_ne!(delays[0], other_delays);
    }
}
