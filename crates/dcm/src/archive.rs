//! The tar-like archive the DCM transfers, and its integrity checksum.
//!
//! §5.9: "The file transfer includes a checksum to insure data integrity.
//! Only one file is transferred, although it may be a tar file containing
//! many more." The format is a simple length-prefixed member list; the
//! checksum is CRC-32 (IEEE), computed over the serialized bytes.
//!
//! The [`Manifest`] extends the checksum story with per-member CRCs so the
//! update protocol can ship only stale members (the delta transfer of the
//! extraction-dataflow refactor) while still verifying the whole-archive
//! checksum before installing.

use std::collections::HashMap;

use moira_common::errors::{MrError, MrResult};

/// A named-member archive.
///
/// Member names are unique: [`Archive::add`] rejects duplicates as a hard
/// error (first-match-wins lookups hid generator bugs), and lookups go
/// through a name index rather than a linear scan.
#[derive(Debug, Clone, Default)]
pub struct Archive {
    /// `(member name, contents)` in insertion order.
    members: Vec<(String, Vec<u8>)>,
    /// `name -> position in members`.
    index: HashMap<String, usize>,
}

impl PartialEq for Archive {
    fn eq(&self, other: &Self) -> bool {
        self.members == other.members
    }
}

impl Eq for Archive {}

impl Archive {
    /// An empty archive.
    pub fn new() -> Archive {
        Archive::default()
    }

    /// Builds an archive from members; `MR_EXISTS` on a duplicate name.
    pub fn from_members(members: Vec<(String, Vec<u8>)>) -> MrResult<Archive> {
        let mut a = Archive::new();
        for (name, data) in members {
            a.add(&name, data)?;
        }
        Ok(a)
    }

    /// Adds a member; `MR_EXISTS` if the name is already present.
    pub fn add(&mut self, name: &str, data: impl Into<Vec<u8>>) -> MrResult<()> {
        if self.index.contains_key(name) {
            return Err(MrError::Exists);
        }
        self.index.insert(name.to_owned(), self.members.len());
        self.members.push((name.to_owned(), data.into()));
        Ok(())
    }

    /// Looks a member up by name (indexed, O(1)).
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.index.get(name).map(|&i| self.members[i].1.as_slice())
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the archive has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterates `(name, contents)` in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.members.iter().map(|(n, d)| (n.as_str(), d.as_slice()))
    }

    /// Member names in order.
    pub fn member_names(&self) -> Vec<&str> {
        self.members.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Total payload size in bytes (the paper's File Organization table
    /// reports per-file sizes; this is their sum plus framing).
    pub fn payload_size(&self) -> usize {
        self.members.iter().map(|(n, d)| n.len() + d.len()).sum()
    }

    /// The subset archive containing exactly the named members that exist
    /// here, preserving this archive's order.
    pub fn subset(&self, names: &[String]) -> Archive {
        let mut out = Archive::new();
        for (name, data) in &self.members {
            if names.iter().any(|n| n == name) {
                let _ = out.add(name, data.clone());
            }
        }
        out
    }

    /// The per-member CRC manifest plus the whole-archive CRC.
    pub fn manifest(&self) -> Manifest {
        Manifest {
            entries: self
                .members
                .iter()
                .map(|(n, d)| (n.clone(), crc32(d)))
                .collect(),
            full_crc: crc32(&self.to_bytes()),
        }
    }

    /// Serializes: `u32 member count | per member: u32 name len | name |
    /// u32 data len | data`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload_size() + 16);
        out.extend_from_slice(&(self.members.len() as u32).to_be_bytes());
        for (name, data) in &self.members {
            out.extend_from_slice(&(name.len() as u32).to_be_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(data.len() as u32).to_be_bytes());
            out.extend_from_slice(data);
        }
        out
    }

    /// Parses serialized bytes; `None` on any framing violation or a
    /// duplicate member name.
    pub fn from_bytes(bytes: &[u8]) -> Option<Archive> {
        let mut pos = 0usize;
        let take_u32 = |pos: &mut usize| -> Option<u32> {
            let v = u32::from_be_bytes(bytes.get(*pos..*pos + 4)?.try_into().ok()?);
            *pos += 4;
            Some(v)
        };
        let count = take_u32(&mut pos)? as usize;
        if count > 1 << 20 {
            return None;
        }
        let mut out = Archive::new();
        for _ in 0..count {
            let name_len = take_u32(&mut pos)? as usize;
            let name = String::from_utf8(bytes.get(pos..pos + name_len)?.to_vec()).ok()?;
            pos += name_len;
            let data_len = take_u32(&mut pos)? as usize;
            let data = bytes.get(pos..pos + data_len)?.to_vec();
            pos += data_len;
            out.add(&name, data).ok()?;
        }
        if pos != bytes.len() {
            return None;
        }
        Some(out)
    }
}

/// Per-member CRC-32 summary of an archive, sent ahead of the data so the
/// receiving host can name exactly the members it is missing or holds stale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// `(member name, crc32 of member contents)` in archive order.
    pub entries: Vec<(String, u32)>,
    /// CRC-32 of the complete serialized archive — the install-time check.
    pub full_crc: u32,
}

impl Manifest {
    /// Serializes: `u32 entry count | per entry: u32 name len | name |
    /// u32 crc | u32 full_crc | u32 self-crc over everything before it`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        for (name, crc) in &self.entries {
            out.extend_from_slice(&(name.len() as u32).to_be_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&crc.to_be_bytes());
        }
        out.extend_from_slice(&self.full_crc.to_be_bytes());
        let self_crc = crc32(&out);
        out.extend_from_slice(&self_crc.to_be_bytes());
        out
    }

    /// Parses serialized bytes; `None` on framing violations, a failed
    /// self-CRC (in-flight corruption), or duplicate member names.
    pub fn from_bytes(bytes: &[u8]) -> Option<Manifest> {
        if bytes.len() < 4 {
            return None;
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let self_crc = u32::from_be_bytes(tail.try_into().ok()?);
        if crc32(body) != self_crc {
            return None;
        }
        let mut pos = 0usize;
        let take_u32 = |pos: &mut usize| -> Option<u32> {
            let v = u32::from_be_bytes(body.get(*pos..*pos + 4)?.try_into().ok()?);
            *pos += 4;
            Some(v)
        };
        let count = take_u32(&mut pos)? as usize;
        if count > 1 << 20 {
            return None;
        }
        let mut entries = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            let name_len = take_u32(&mut pos)? as usize;
            let name = String::from_utf8(body.get(pos..pos + name_len)?.to_vec()).ok()?;
            pos += name_len;
            if entries.iter().any(|(n, _)| *n == name) {
                return None;
            }
            let crc = take_u32(&mut pos)?;
            entries.push((name, crc));
        }
        let full_crc = take_u32(&mut pos)?;
        if pos != body.len() {
            return None;
        }
        Some(Manifest { entries, full_crc })
    }
}

/// CRC-32 (IEEE 802.3) over a byte slice — the shared implementation in
/// `moira_common`, re-exported here because the update protocol's manifest
/// checksums predate the common module.
pub use moira_common::crc::crc32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut a = Archive::new();
        a.add("passwd.db", b"babette:*:6530\n".to_vec()).unwrap();
        a.add("uid.db", b"6530.uid HS CNAME babette.passwd\n".to_vec())
            .unwrap();
        a.add("empty", Vec::new()).unwrap();
        let bytes = a.to_bytes();
        let back = Archive::from_bytes(&bytes).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.get("empty"), Some(&[][..]));
        assert_eq!(back.get("passwd.db").unwrap(), b"babette:*:6530\n");
        assert_eq!(back.get("missing"), None);
        assert_eq!(back.member_names(), vec!["passwd.db", "uid.db", "empty"]);
        assert_eq!(back.len(), 3);
        assert!(!back.is_empty());
    }

    #[test]
    fn duplicate_member_is_hard_error() {
        let mut a = Archive::new();
        a.add("passwd.db", vec![1]).unwrap();
        assert_eq!(a.add("passwd.db", vec![2]), Err(MrError::Exists));
        // The failed add leaves the archive unchanged.
        assert_eq!(a.get("passwd.db"), Some(&[1][..]));
        assert_eq!(a.len(), 1);
        assert_eq!(
            Archive::from_members(vec![("f".into(), vec![]), ("f".into(), vec![])]),
            Err(MrError::Exists)
        );
    }

    #[test]
    fn from_bytes_rejects_duplicate_names() {
        // Hand-build a frame with two members named "f".
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2u32.to_be_bytes());
        for _ in 0..2 {
            bytes.extend_from_slice(&1u32.to_be_bytes());
            bytes.push(b'f');
            bytes.extend_from_slice(&0u32.to_be_bytes());
        }
        assert!(Archive::from_bytes(&bytes).is_none());
    }

    #[test]
    fn subset_preserves_order() {
        let a = Archive::from_members(vec![
            ("a".into(), vec![1]),
            ("b".into(), vec![2]),
            ("c".into(), vec![3]),
        ])
        .unwrap();
        let s = a.subset(&["c".to_owned(), "a".to_owned(), "zz".to_owned()]);
        assert_eq!(s.member_names(), vec!["a", "c"]);
    }

    #[test]
    fn truncation_detected() {
        let mut a = Archive::new();
        a.add("f", vec![1, 2, 3, 4, 5]).unwrap();
        let bytes = a.to_bytes();
        for cut in 0..bytes.len() {
            assert!(Archive::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let a = Archive::from_members(vec![("f".into(), vec![9])]).unwrap();
        let mut bytes = a.to_bytes();
        bytes.push(0);
        assert!(Archive::from_bytes(&bytes).is_none());
    }

    #[test]
    fn manifest_round_trip_and_corruption() {
        let a = Archive::from_members(vec![
            ("passwd.db".into(), b"babette:*:6530\n".to_vec()),
            ("uid.db".into(), b"6530.uid\n".to_vec()),
        ])
        .unwrap();
        let m = a.manifest();
        assert_eq!(m.entries.len(), 2);
        assert_eq!(m.entries[0].1, crc32(b"babette:*:6530\n"));
        assert_eq!(m.full_crc, crc32(&a.to_bytes()));
        let bytes = m.to_bytes();
        assert_eq!(Manifest::from_bytes(&bytes), Some(m));
        // Any single-byte flip fails the self-CRC.
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 1;
            assert!(Manifest::from_bytes(&flipped).is_none(), "byte {i}");
        }
        // Truncation too.
        for cut in 0..bytes.len() {
            assert!(Manifest::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn manifest_member_crcs_localize_changes() {
        let a = Archive::from_members(vec![
            ("x".into(), vec![1, 2, 3]),
            ("y".into(), vec![4, 5, 6]),
        ])
        .unwrap();
        let b = Archive::from_members(vec![
            ("x".into(), vec![1, 2, 3]),
            ("y".into(), vec![4, 5, 7]),
        ])
        .unwrap();
        let (ma, mb) = (a.manifest(), b.manifest());
        assert_eq!(ma.entries[0], mb.entries[0]);
        assert_ne!(ma.entries[1], mb.entries[1]);
        assert_ne!(ma.full_crc, mb.full_crc);
    }

    #[test]
    fn crc_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc_detects_flips() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut flipped = data.clone();
            flipped[i] ^= 1;
            assert_ne!(crc32(&flipped), base, "byte {i}");
        }
    }
}
