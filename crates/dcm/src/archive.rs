//! The tar-like archive the DCM transfers, and its integrity checksum.
//!
//! §5.9: "The file transfer includes a checksum to insure data integrity.
//! Only one file is transferred, although it may be a tar file containing
//! many more." The format is a simple length-prefixed member list; the
//! checksum is CRC-32 (IEEE), computed over the serialized bytes.

/// A named-member archive.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Archive {
    /// `(member name, contents)` in insertion order.
    pub members: Vec<(String, Vec<u8>)>,
}

impl Archive {
    /// An empty archive.
    pub fn new() -> Archive {
        Archive::default()
    }

    /// Builds an archive from members.
    pub fn from_members(members: Vec<(String, Vec<u8>)>) -> Archive {
        Archive { members }
    }

    /// Adds a member.
    pub fn add(&mut self, name: &str, data: impl Into<Vec<u8>>) {
        self.members.push((name.to_owned(), data.into()));
    }

    /// Looks a member up by name.
    pub fn get(&self, name: &str) -> Option<&[u8]> {
        self.members
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d.as_slice())
    }

    /// Member names in order.
    pub fn member_names(&self) -> Vec<&str> {
        self.members.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Total payload size in bytes (the paper's File Organization table
    /// reports per-file sizes; this is their sum plus framing).
    pub fn payload_size(&self) -> usize {
        self.members.iter().map(|(n, d)| n.len() + d.len()).sum()
    }

    /// Serializes: `u32 member count | per member: u32 name len | name |
    /// u32 data len | data`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload_size() + 16);
        out.extend_from_slice(&(self.members.len() as u32).to_be_bytes());
        for (name, data) in &self.members {
            out.extend_from_slice(&(name.len() as u32).to_be_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&(data.len() as u32).to_be_bytes());
            out.extend_from_slice(data);
        }
        out
    }

    /// Parses serialized bytes; `None` on any framing violation.
    pub fn from_bytes(bytes: &[u8]) -> Option<Archive> {
        let mut pos = 0usize;
        let take_u32 = |pos: &mut usize| -> Option<u32> {
            let v = u32::from_be_bytes(bytes.get(*pos..*pos + 4)?.try_into().ok()?);
            *pos += 4;
            Some(v)
        };
        let count = take_u32(&mut pos)? as usize;
        if count > 1 << 20 {
            return None;
        }
        let mut members = Vec::with_capacity(count.min(64));
        for _ in 0..count {
            let name_len = take_u32(&mut pos)? as usize;
            let name = String::from_utf8(bytes.get(pos..pos + name_len)?.to_vec()).ok()?;
            pos += name_len;
            let data_len = take_u32(&mut pos)? as usize;
            let data = bytes.get(pos..pos + data_len)?.to_vec();
            pos += data_len;
            members.push((name, data));
        }
        if pos != bytes.len() {
            return None;
        }
        Some(Archive { members })
    }
}

/// CRC-32 (IEEE 802.3) over a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xffff_ffff;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut a = Archive::new();
        a.add("passwd.db", b"babette:*:6530\n".to_vec());
        a.add("uid.db", b"6530.uid HS CNAME babette.passwd\n".to_vec());
        a.add("empty", Vec::new());
        let bytes = a.to_bytes();
        let back = Archive::from_bytes(&bytes).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.get("empty"), Some(&[][..]));
        assert_eq!(back.get("passwd.db").unwrap(), b"babette:*:6530\n");
        assert_eq!(back.get("missing"), None);
        assert_eq!(back.member_names(), vec!["passwd.db", "uid.db", "empty"]);
    }

    #[test]
    fn truncation_detected() {
        let mut a = Archive::new();
        a.add("f", vec![1, 2, 3, 4, 5]);
        let bytes = a.to_bytes();
        for cut in 0..bytes.len() {
            assert!(Archive::from_bytes(&bytes[..cut]).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let a = Archive::from_members(vec![("f".into(), vec![9])]);
        let mut bytes = a.to_bytes();
        bytes.push(0);
        assert!(Archive::from_bytes(&bytes).is_none());
    }

    #[test]
    fn crc_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc_detects_flips() {
        let data = b"the quick brown fox".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            let mut flipped = data.clone();
            flipped[i] ^= 1;
            assert_ne!(crc32(&flipped), base, "byte {i}");
        }
    }
}
