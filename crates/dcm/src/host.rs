//! The simulated update-target host.
//!
//! Stands in for the MIT production servers (VAXen running Hesiod, the 20
//! NFS lockers, the mail hub, the Zephyr servers). A [`SimHost`] is a small
//! filesystem with the exact properties the update protocol relies on —
//! atomic renames, durable writes after flush — plus the failure injection
//! the §5.9 trouble-recovery procedures are designed around: refusing
//! connections, crashing mid-transfer or mid-execution, corrupting data in
//! transit, and hanging past the timeout.

use std::collections::BTreeMap;

use moira_krb::ticket::Verifier;

/// Exit-status style result of running a host command.
pub type ExitCode = i32;

/// Pluggable handler for `Exec` instructions — the per-service install
/// scripts (restart hesiod, create NFS lockers, …) that the consumers
/// register.
pub type CommandHandler = Box<dyn FnMut(&str, &mut BTreeMap<String, Vec<u8>>) -> ExitCode + Send>;

/// Failure injection plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct FailPlan {
    /// Connection attempts are refused (host "down" to the network).
    pub refuse_connect: bool,
    /// Host crashes after this many further mutating filesystem operations.
    pub crash_after_ops: Option<u64>,
    /// Every transferred byte stream has one byte flipped in transit.
    pub corrupt_transfers: bool,
    /// `Exec` instructions exit with this code instead of running.
    pub fail_exec_with: Option<ExitCode>,
    /// Operations stall past the protocol timeout.
    pub hang: bool,
}

/// A simulated server host.
pub struct SimHost {
    /// Canonical host name.
    pub name: String,
    files: BTreeMap<String, Vec<u8>>,
    /// Whether the host is up (a crashed host stays down until
    /// [`SimHost::reboot`]).
    pub up: bool,
    /// Active failure plan.
    pub fail: FailPlan,
    mutating_ops: u64,
    /// Signals delivered via `Signal` instructions (pidfile paths).
    pub signals: Vec<String>,
    /// Commands run via `Exec` instructions.
    pub exec_log: Vec<String>,
    /// When set, update connections must present a valid Kerberos ticket +
    /// authenticator for this host's `rcmd` service (§5.9.2: "Kerberos is
    /// used to verify the identity of both ends at connection set-up
    /// time").
    pub verifier: Option<Verifier>,
    command_handler: Option<CommandHandler>,
}

impl std::fmt::Debug for SimHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimHost")
            .field("name", &self.name)
            .field("up", &self.up)
            .field("files", &self.files.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl SimHost {
    /// Creates an up, healthy host.
    pub fn new(name: &str) -> SimHost {
        SimHost {
            name: name.to_owned(),
            files: BTreeMap::new(),
            up: true,
            fail: FailPlan::default(),
            mutating_ops: 0,
            signals: Vec::new(),
            exec_log: Vec::new(),
            verifier: None,
            command_handler: None,
        }
    }

    /// Registers the handler invoked by `Exec` instructions.
    pub fn set_command_handler(&mut self, handler: CommandHandler) {
        self.command_handler = Some(handler);
    }

    /// Brings a crashed host back up (clean reboot; files persist).
    pub fn reboot(&mut self) {
        self.up = true;
        self.fail.crash_after_ops = None;
    }

    /// True if a new connection can be established.
    pub fn reachable(&self) -> bool {
        self.up && !self.fail.refuse_connect
    }

    /// Counts a mutating operation toward a scheduled crash; returns false
    /// (and downs the host) when the crash fires.
    fn survive_op(&mut self) -> bool {
        self.mutating_ops += 1;
        if let Some(limit) = self.fail.crash_after_ops {
            if self.mutating_ops > limit {
                self.up = false;
                return false;
            }
        }
        true
    }

    /// Writes a file. On a mid-write crash, half the data lands (the torn
    /// write the `.moira_update` convention defends against).
    pub fn write_file(&mut self, path: &str, data: &[u8]) -> Result<(), HostError> {
        if !self.up {
            return Err(HostError::Down);
        }
        if !self.survive_op() {
            self.files
                .insert(path.to_owned(), data[..data.len() / 2].to_vec());
            return Err(HostError::Down);
        }
        self.files.insert(path.to_owned(), data.to_vec());
        Ok(())
    }

    /// Reads a file.
    pub fn read_file(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|v| v.as_slice())
    }

    /// Removes a file (ignores absence).
    pub fn remove_file(&mut self, path: &str) {
        self.files.remove(path);
    }

    /// Atomically renames `from` to `to`. A crash at this operation leaves
    /// the filesystem unchanged — "updates … using atomic filesystem
    /// rename operations" (§5.9).
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), HostError> {
        if !self.up {
            return Err(HostError::Down);
        }
        if !self.survive_op() {
            return Err(HostError::Down);
        }
        match self.files.remove(from) {
            Some(data) => {
                self.files.insert(to.to_owned(), data);
                Ok(())
            }
            None => Err(HostError::NoSuchFile),
        }
    }

    /// Delivers a signal to the process recorded in `pidfile`.
    pub fn signal(&mut self, pidfile: &str) -> Result<(), HostError> {
        if !self.up {
            return Err(HostError::Down);
        }
        self.signals.push(pidfile.to_owned());
        Ok(())
    }

    /// Executes a command through the registered handler; without one,
    /// commands trivially succeed (logged either way).
    pub fn exec(&mut self, command: &str) -> Result<ExitCode, HostError> {
        if !self.up {
            return Err(HostError::Down);
        }
        self.exec_log.push(command.to_owned());
        if let Some(code) = self.fail.fail_exec_with {
            return Ok(code);
        }
        match &mut self.command_handler {
            Some(handler) => Ok(handler(command, &mut self.files)),
            None => Ok(0),
        }
    }

    /// All file paths present.
    pub fn file_names(&self) -> Vec<&str> {
        self.files.keys().map(|k| k.as_str()).collect()
    }

    /// Direct access for consumers installed on this host.
    pub fn files(&self) -> &BTreeMap<String, Vec<u8>> {
        &self.files
    }

    /// Mutable file access (used by service install scripts in the
    /// simulator).
    pub fn files_mut(&mut self) -> &mut BTreeMap<String, Vec<u8>> {
        &mut self.files
    }
}

/// Host-level operation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostError {
    /// Host is down (crashed or powered off).
    Down,
    /// Rename source missing.
    NoSuchFile,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_rename() {
        let mut h = SimHost::new("SUOMI.MIT.EDU");
        h.write_file("/tmp/a", b"one").unwrap();
        assert_eq!(h.read_file("/tmp/a").unwrap(), b"one");
        h.rename("/tmp/a", "/etc/a").unwrap();
        assert!(h.read_file("/tmp/a").is_none());
        assert_eq!(h.read_file("/etc/a").unwrap(), b"one");
        assert_eq!(h.rename("/nope", "/x"), Err(HostError::NoSuchFile));
    }

    #[test]
    fn crash_tears_writes_but_not_renames() {
        let mut h = SimHost::new("X");
        h.write_file("/f", b"0123456789").unwrap();
        h.fail.crash_after_ops = Some(0);
        // The write crashes and leaves half the bytes.
        assert_eq!(h.write_file("/g", b"abcdefgh"), Err(HostError::Down));
        assert!(!h.up);
        assert_eq!(h.read_file("/g").unwrap(), b"abcd");
        h.reboot();
        h.fail.crash_after_ops = Some(0);
        // The rename crashes and changes nothing.
        assert_eq!(h.rename("/f", "/f2"), Err(HostError::Down));
        h.reboot();
        assert_eq!(h.read_file("/f").unwrap(), b"0123456789");
        assert!(h.read_file("/f2").is_none());
    }

    #[test]
    fn down_host_refuses_everything() {
        let mut h = SimHost::new("X");
        h.up = false;
        assert!(!h.reachable());
        assert_eq!(h.write_file("/f", b"x"), Err(HostError::Down));
        assert_eq!(h.signal("/pid"), Err(HostError::Down));
        assert_eq!(h.exec("ls"), Err(HostError::Down));
    }

    #[test]
    fn exec_handler_and_forced_failure() {
        let mut h = SimHost::new("X");
        h.set_command_handler(Box::new(|cmd, files| {
            files.insert(format!("/ran/{cmd}"), b"done".to_vec());
            0
        }));
        assert_eq!(h.exec("install").unwrap(), 0);
        assert!(h.read_file("/ran/install").is_some());
        h.fail.fail_exec_with = Some(7);
        assert_eq!(h.exec("install2").unwrap(), 7);
        assert_eq!(h.exec_log, vec!["install", "install2"]);
    }

    #[test]
    fn reboot_preserves_files() {
        let mut h = SimHost::new("X");
        h.write_file("/etc/passwd", b"root").unwrap();
        h.up = false;
        h.reboot();
        assert_eq!(h.read_file("/etc/passwd").unwrap(), b"root");
    }
}
