//! Property test for the incremental generator engine: after ANY sequence
//! of registry mutations, refreshing a cached build must produce an archive
//! byte-identical to generating from scratch — for every standard
//! generator, whether the refresh rode the delta path, a section rebuild,
//! or the full fallback, and across simulated DCM restarts (dropped
//! caches).

use moira_core::queries::testutil::state_with_admin;
use moira_core::registry::Registry;
use moira_core::state::{Caller, MoiraState};
use moira_dcm::generators::incremental::{refresh, CachedBuild};
use moira_dcm::generators::standard_generators;
use proptest::prelude::*;

/// One mutation drawn from the op vocabulary. The two payload bytes pick
/// entity names from small pools so ops collide (duplicate adds, deletes of
/// absent members) — the registry rejecting an op is itself part of the
/// sequence space.
#[derive(Debug, Clone, Copy)]
struct Op {
    code: u8,
    a: u8,
    b: u8,
}

fn user(i: u8) -> String {
    format!("u{}", i % 6)
}

fn list(i: u8) -> String {
    format!("l{}", i % 4)
}

fn machine(i: u8) -> String {
    format!("M{}.MIT.EDU", i % 3)
}

/// Applies one op, ignoring registry rejections.
fn apply(state: &mut MoiraState, registry: &Registry, op: Op) {
    let root = Caller::root("prop");
    let run = |state: &mut MoiraState, q: &str, args: &[String]| {
        let _ = registry.execute(state, &root, q, args);
    };
    let (a, b) = (op.a, op.b);
    match op.code % 12 {
        0 => run(
            state,
            "add_user",
            &[
                user(a),
                format!("{}", 7000 + u32::from(a % 6)),
                "/bin/csh".into(),
                "Last".into(),
                "First".into(),
                "".into(),
                format!("{}", b % 2),
                format!("x{a}"),
                "1990".into(),
            ],
        ),
        1 => run(
            state,
            "update_user_status",
            &[user(a), format!("{}", b % 2)],
        ),
        2 => run(
            state,
            "update_user_shell",
            &[user(a), format!("/bin/sh{}", b % 3)],
        ),
        3 => run(
            state,
            "add_list",
            &[
                list(a),
                "1".into(),
                "0".into(),
                "0".into(),
                format!("{}", b % 2), // maillist
                format!("{}", a % 2), // grouplist
                format!("{}", 6000 + u32::from(a % 4)),
                "NONE".into(),
                "NONE".into(),
                "prop list".into(),
            ],
        ),
        4 => run(
            state,
            "add_member_to_list",
            &[list(a), "USER".into(), user(b)],
        ),
        5 => run(
            state,
            "delete_member_from_list",
            &[list(a), "USER".into(), user(b)],
        ),
        6 => run(
            state,
            "add_member_to_list",
            &[list(a), "LIST".into(), list(b.wrapping_add(1))],
        ),
        7 => run(state, "add_machine", &[machine(a), "VAX".into()]),
        8 => run(state, "set_pobox", &[user(a), "POP".into(), machine(b)]),
        9 => run(
            state,
            "add_zephyr_class",
            &[
                format!("zc{}", a % 2),
                "LIST".into(),
                list(b),
                "NONE".into(),
                "NONE".into(),
                "USER".into(),
                user(b),
                "NONE".into(),
                "NONE".into(),
            ],
        ),
        10 => run(
            state,
            "add_server_host_access",
            &[machine(a), "LIST".into(), list(b)],
        ),
        11 => run(
            state,
            "add_service",
            &[
                format!("svc{}", a % 3),
                "TCP".into(),
                format!("{}", 9000 + u32::from(a % 3)),
                "alias".into(),
            ],
        ),
        _ => unreachable!(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn incremental_refresh_equals_full_rebuild(
        ops in prop::collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>()), 1..20),
        drop_at in any::<u8>(),
        advance_mask in any::<u32>(),
    ) {
        let (mut state, _) = state_with_admin("ops");
        let registry = Registry::standard();
        let generators = standard_generators();
        let mut caches: Vec<Option<CachedBuild>> =
            generators.iter().map(|_| None).collect();

        for (step, &(code, a, b)) in ops.iter().enumerate() {
            apply(&mut state, &registry, Op { code, a, b });
            // Half the steps stay in the same clock second as the previous
            // mutation — the exact case the old modtime staleness test lost.
            if advance_mask & (1 << (step % 32)) != 0 {
                state.db.clock().advance(3600);
            }
            // A simulated DCM restart: every cached build is gone and the
            // next refresh must take the full-rebuild path.
            if step == usize::from(drop_at) % 20 {
                caches.fill(None);
            }
            for (generator, cache) in generators.iter().zip(&mut caches) {
                let prev_bytes = cache
                    .as_ref()
                    .map(|c: &CachedBuild| c.archive().to_bytes());
                let refreshed =
                    refresh(generator.as_ref(), &state, cache.take()).unwrap();
                let expected = generator.generate(&state, "").unwrap();
                prop_assert_eq!(
                    refreshed.build.archive().to_bytes(),
                    expected.to_bytes(),
                    "{} diverged after step {} ({:?})",
                    generator.service(),
                    step,
                    (code, a, b)
                );
                // `changed` may over-report for per-host generators, but an
                // actual content change must never be missed.
                if let Some(prev_bytes) = prev_bytes {
                    if prev_bytes != refreshed.build.archive().to_bytes() {
                        prop_assert!(
                            refreshed.changed,
                            "{}: changed content reported NoChange at step {}",
                            generator.service(),
                            step
                        );
                    }
                }
                *cache = Some(refreshed.build);
            }
        }
    }
}
