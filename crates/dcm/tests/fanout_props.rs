//! Property suite for the hierarchical DCM fan-out (relay tier + worker
//! pool + per-host delta cursors).
//!
//! For random rack topologies (1–64 racks × 1–64 hosts, trimmed to a
//! debug-friendly total), random mutation batches, and random fault
//! schedules (per-host partitions and drop probabilities), the faulty
//! racked fan-out must converge every host byte-identical to a fault-free
//! serial oracle driven through the identical schedule — and no host's
//! delta cursor may ever regress. The proptest shim derives its seed from
//! the module path and test name, so CI runs are reproducible.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use moira_core::queries::testutil::{add_test_machine, state_with_admin};
use moira_core::registry::Registry;
use moira_core::state::{shared, Caller, MoiraState, SharedState};
use moira_dcm::dcm::Dcm;
use moira_dcm::host::SimHost;
use moira_dcm::net::{NetFault, Network};
use moira_dcm::relay::RackTopology;
use moira_dcm::retry::RetryPolicy;
use parking_lot::Mutex;
use proptest::prelude::*;

fn splitmix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn unit(x: &mut u64) -> f64 {
    (splitmix(x) >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic lossy network local to this suite (the dcm crate
/// cannot depend on the sim crate's fabric).
#[derive(Default)]
struct LossyNet {
    state: Mutex<LossyState>,
}

#[derive(Default)]
struct LossyState {
    rng: u64,
    drop_prob: HashMap<String, f64>,
    partitioned: HashSet<String>,
}

impl LossyNet {
    fn new(seed: u64) -> Arc<LossyNet> {
        let net = LossyNet::default();
        net.state.lock().rng = seed;
        Arc::new(net)
    }

    fn set_faults(&self, partitioned: HashSet<String>, drop_prob: HashMap<String, f64>) {
        let mut st = self.state.lock();
        st.partitioned = partitioned;
        st.drop_prob = drop_prob;
    }

    fn heal(&self) {
        let mut st = self.state.lock();
        st.partitioned.clear();
        st.drop_prob.clear();
    }

    fn roll(&self, host: &str, connecting: bool) -> Result<(), NetFault> {
        let mut st = self.state.lock();
        if st.partitioned.contains(host) {
            return Err(NetFault::Partitioned);
        }
        let p = st.drop_prob.get(host).copied().unwrap_or(0.0);
        if p > 0.0 && unit(&mut st.rng) < p {
            return Err(if connecting {
                NetFault::TimedOut
            } else {
                NetFault::Dropped
            });
        }
        Ok(())
    }
}

impl Network for LossyNet {
    fn connect(&self, host: &str) -> Result<(), NetFault> {
        self.roll(host, true)
    }

    fn transmit(&self, host: &str, _len: usize) -> Result<(), NetFault> {
        self.roll(host, false)
    }
}

struct World {
    dcm: Dcm,
    state: SharedState,
    hosts: Vec<(String, Arc<Mutex<SimHost>>)>,
    uid: i64,
}

impl World {
    /// One HESIOD-like service over `host_names`, plus a baseline user.
    fn build(host_names: &[String]) -> World {
        let (mut s, _) = state_with_admin("ops");
        let registry = Arc::new(Registry::standard());
        let ops = Caller::new("ops", "test");
        let run = |s: &mut MoiraState, q: &str, args: &[&str]| {
            let args: Vec<String> = args.iter().map(|x| x.to_string()).collect();
            registry.execute(s, &ops, q, &args).unwrap()
        };
        run(
            &mut s,
            "add_server_info",
            &[
                "HESIOD",
                "360",
                "/tmp/hesiod.out",
                "restart-hesiod",
                "UNIQUE",
                "1",
                "NONE",
                "NONE",
            ],
        );
        for name in host_names {
            add_test_machine(&mut s, name);
            run(
                &mut s,
                "add_server_host_info",
                &["HESIOD", name, "1", "0", "0", ""],
            );
        }
        run(
            &mut s,
            "add_user",
            &[
                "baseline", "6000", "/bin/csh", "F", "H", "C", "1", "x", "1990",
            ],
        );
        let state = shared(s);
        let mut dcm = Dcm::new(state.clone(), registry);
        // Quick deterministic retries: streaks reopen within one 60 s
        // advance, and nothing escalates to an operator-gated hard error.
        dcm.set_retry_policy(RetryPolicy {
            base_secs: 1,
            max_secs: 8,
            jitter_frac: 0.0,
            escalate_after: u32::MAX,
            per_run_budget: usize::MAX,
        });
        let hosts: Vec<(String, Arc<Mutex<SimHost>>)> = host_names
            .iter()
            .map(|n| (n.clone(), Arc::new(Mutex::new(SimHost::new(n)))))
            .collect();
        for (_, h) in &hosts {
            dcm.add_host(h.clone());
        }
        World {
            dcm,
            state,
            hosts,
            uid: 7000,
        }
    }

    fn add_user(&mut self, login: &str) {
        self.uid += 1;
        let uid = self.uid.to_string();
        let mut s = self.state.write();
        Registry::standard()
            .execute(
                &mut s,
                &Caller::new("ops", "test"),
                "add_user",
                &[
                    login.into(),
                    uid,
                    "/bin/csh".into(),
                    "F".into(),
                    "H".into(),
                    "C".into(),
                    "1".into(),
                    "x".into(),
                    "1990".into(),
                ],
            )
            .unwrap();
    }

    fn advance(&self, secs: i64) {
        self.state.write().db.clock().advance(secs);
    }

    /// Install-relevant files of one host — backup and staging artifacts
    /// excluded (they encode the *history* of attempts, not the state).
    fn files_of(&self, idx: usize) -> Vec<(String, Vec<u8>)> {
        let mut h = self.hosts[idx].1.lock();
        let mut files: Vec<(String, Vec<u8>)> = h
            .files_mut()
            .iter()
            .filter(|(name, _)| !name.contains(".moira_backup") && !name.contains(".moira_update"))
            .map(|(name, data)| (name.clone(), data.clone()))
            .collect();
        files.sort();
        files
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..Default::default() })]
    #[test]
    fn faulty_racked_fanout_matches_fault_free_serial_oracle(
        racks in 1usize..=64,
        per_rack in 1usize..=64,
        width in 1usize..=8,
        net_seed in any::<u64>(),
        fault_seeds in prop::collection::vec(any::<u64>(), 1..4usize),
    ) {
        // Honor the 1–64 × 1–64 ranges but trim the cumulative host count
        // so debug-mode tier-1 stays fast.
        let per_rack = per_rack.min((96 / racks).max(1));
        let names: Vec<String> = (0..racks * per_rack)
            .map(|k| format!("H{k:03}.MIT.EDU"))
            .collect();

        // Subject: racked, pooled, faulty. Oracle: flat, serial, perfect.
        let mut subject = World::build(&names);
        let mut topo = RackTopology::new();
        for (r, chunk) in names.chunks(per_rack).enumerate() {
            topo.add_rack(&format!("rack-{r}"), chunk.iter().cloned());
        }
        subject.dcm.set_topology(topo);
        subject.dcm.set_fanout_width(width);
        let lossy = LossyNet::new(net_seed);
        subject.dcm.set_network(lossy.clone());
        let mut oracle = World::build(&names);

        // Cursor monotonicity ledger for the subject.
        let mut cursor_gen: HashMap<String, i64> = HashMap::new();
        let mut check_cursors = |dcm: &Dcm| {
            for name in &names {
                if let Some(g) = dcm.cursors().generation("HESIOD", name) {
                    let prev = cursor_gen.insert(name.clone(), g);
                    prop_assert!(
                        prev.is_none_or(|p| g >= p),
                        "cursor regressed on {name}: {prev:?} -> {g}"
                    );
                }
            }
            Ok(())
        };

        // Both worlds run the identical schedule of mutations and clock
        // advances; only the subject sees faults.
        subject.dcm.run_once();
        check_cursors(&subject.dcm)?;
        oracle.dcm.run_once();
        for (b, fault_seed) in fault_seeds.iter().enumerate() {
            let mut fs = *fault_seed;
            let n_users = 1 + (splitmix(&mut fs) % 2) as usize;
            for u in 0..n_users {
                let login = format!("u{b}x{u}");
                subject.add_user(&login);
                oracle.add_user(&login);
            }
            subject.advance(7 * 3600);
            oracle.advance(7 * 3600);
            // A fault round: partition ~15% of hosts, make ~30% lossy.
            let mut partitioned = HashSet::new();
            let mut drops = HashMap::new();
            for name in &names {
                if unit(&mut fs) < 0.15 {
                    partitioned.insert(name.clone());
                }
                if unit(&mut fs) < 0.30 {
                    drops.insert(name.clone(), 0.05 + unit(&mut fs) * 0.45);
                }
            }
            lossy.set_faults(partitioned, drops);
            subject.dcm.run_once();
            check_cursors(&subject.dcm)?;
            oracle.dcm.run_once();
            // Heal, then recovery cycles in lockstep (no-ops for the
            // oracle, which converged on the first pass).
            lossy.heal();
            for _ in 0..3 {
                subject.advance(60);
                oracle.advance(60);
                subject.dcm.run_once();
                check_cursors(&subject.dcm)?;
                oracle.dcm.run_once();
            }
        }

        // Converged: one more pass finds nothing to do…
        subject.advance(60);
        oracle.advance(60);
        prop_assert!(subject.dcm.run_once().updates.is_empty());
        prop_assert!(oracle.dcm.run_once().updates.is_empty());
        // …and every host is byte-identical to the fault-free oracle.
        for (idx, name) in names.iter().enumerate() {
            prop_assert_eq!(
                subject.files_of(idx),
                oracle.files_of(idx),
                "host {} diverged from the serial oracle",
                name
            );
        }
    }
}
