//! Property-based tests for the DCM substrate: archive framing, CRC error
//! detection, script round trips, and the update protocol's no-torn-files
//! invariant under arbitrary crash points.

use moira_dcm::archive::{crc32, Archive};
use moira_dcm::host::SimHost;
use moira_dcm::net::{NetFault, Network};
use moira_dcm::update::{run_update, run_update_over, Script, UpdateError};
use proptest::prelude::*;

fn update_error() -> impl Strategy<Value = UpdateError> {
    prop_oneof![
        Just(UpdateError::HostDown),
        Just(UpdateError::Timeout),
        Just(UpdateError::Checksum),
        Just(UpdateError::BadData),
        Just(UpdateError::AuthFailed),
        Just(UpdateError::Busy),
        (0i32..1000).prop_map(UpdateError::ExecFailed),
    ]
}

proptest! {
    #[test]
    fn archive_round_trips(members in prop::collection::vec(
        ("[a-z0-9._-]{1,16}", prop::collection::vec(any::<u8>(), 0..128)), 0..12)) {
        // Deduplicate names: Archive rejects duplicates by design.
        let unique: std::collections::BTreeMap<String, Vec<u8>> =
            members.into_iter().collect();
        let archive = Archive::from_members(
            unique.into_iter().collect(),
        ).expect("names are unique");
        prop_assert_eq!(Archive::from_bytes(&archive.to_bytes()), Some(archive));
    }

    #[test]
    fn crc_detects_any_single_flip(
        data in prop::collection::vec(any::<u8>(), 1..256),
        index in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut tampered = data.clone();
        let i = index.index(tampered.len());
        tampered[i] ^= flip;
        prop_assert_ne!(crc32(&data), crc32(&tampered));
    }

    #[test]
    fn scripts_round_trip(files in prop::collection::vec("[a-z0-9._-]{1,12}", 0..8)) {
        let mut archive = Archive::new();
        for f in &files {
            // Duplicate names are rejected; the survivors make the script.
            let _ = archive.add(f, b"x".to_vec());
        }
        let script = Script::standard(&archive, "/var/svc", "install");
        prop_assert_eq!(Script::from_text(&script.to_text()), Some(script));
    }

    /// Crash the host at an arbitrary operation during an update: every
    /// installed file must be wholly old or wholly new, and a retry after
    /// reboot must converge.
    #[test]
    fn updates_never_tear_and_always_converge(
        crash_at in 0u64..24,
        member_count in 1usize..5,
    ) {
        let mut old = Archive::new();
        let mut new = Archive::new();
        for i in 0..member_count {
            old.add(&format!("f{i}.db"), format!("OLD-{i}\n").into_bytes()).unwrap();
            new.add(&format!("f{i}.db"), format!("NEW-{i}-content\n").into_bytes()).unwrap();
        }
        let old_script = Script::standard(&old, "/var/svc", "install");
        let new_script = Script::standard(&new, "/var/svc", "install");
        let mut host = SimHost::new("H");
        run_update(&mut host, &old, "/tmp/t", &old_script).unwrap();
        host.fail.crash_after_ops = Some(crash_at);
        let _ = run_update(&mut host, &new, "/tmp/t", &new_script);
        host.reboot();
        // Invariant: no torn files even right after the crash.
        for i in 0..member_count {
            let path = format!("/var/svc/f{i}.db");
            let content = host.read_file(&path).unwrap();
            let ok = content == format!("OLD-{i}\n").as_bytes()
                || content == format!("NEW-{i}-content\n").as_bytes();
            prop_assert!(ok, "torn file {path}: {content:?}");
        }
        // Retry converges to fully new.
        run_update(&mut host, &new, "/tmp/t", &new_script).unwrap();
        for i in 0..member_count {
            let path = format!("/var/svc/f{i}.db");
            let expected = format!("NEW-{i}-content\n");
            prop_assert_eq!(host.read_file(&path).unwrap(), expected.as_bytes());
        }
    }

    /// Error codes are a lossless wire encoding: every error survives a
    /// code round trip, codes are distinct, and messages are non-empty.
    #[test]
    fn update_error_codes_round_trip(e in update_error(), other in update_error()) {
        prop_assert_eq!(UpdateError::from_code(e.code()), Some(e));
        prop_assert!(!e.message().is_empty());
        if e != other {
            prop_assert_ne!(e.code(), other.code());
        }
        // Hardness is derivable from the code alone (the DCM's retry gate
        // depends on this when outcomes cross the database).
        prop_assert_eq!(
            UpdateError::from_code(e.code()).unwrap().is_hard(),
            e.is_hard()
        );
    }

    /// A network fault on an arbitrary leg of an arbitrary update is always
    /// soft, never tears installed files, and a retry over a healed network
    /// converges — the fabric-level version of the crash property above.
    #[test]
    fn network_faults_are_soft_and_retries_converge(
        fail_leg in 0u64..8,
        fault_kind in 0u8..3,
        member_count in 1usize..5,
    ) {
        use std::sync::atomic::{AtomicU64, Ordering};

        struct FailNth {
            fail_at: u64,
            fault: NetFault,
            legs: AtomicU64,
        }
        impl Network for FailNth {
            fn connect(&self, _host: &str) -> Result<(), NetFault> {
                self.roll()
            }
            fn transmit(&self, _host: &str, _len: usize) -> Result<(), NetFault> {
                self.roll()
            }
        }
        impl FailNth {
            fn roll(&self) -> Result<(), NetFault> {
                if self.legs.fetch_add(1, Ordering::SeqCst) == self.fail_at {
                    Err(self.fault)
                } else {
                    Ok(())
                }
            }
        }

        let fault = match fault_kind {
            0 => NetFault::Partitioned,
            1 => NetFault::Dropped,
            _ => NetFault::TimedOut,
        };
        let mut archive = Archive::new();
        for i in 0..member_count {
            archive.add(&format!("f{i}.db"), format!("DATA-{i}\n").into_bytes()).unwrap();
        }
        let script = Script::standard(&archive, "/var/svc", "install");
        let mut host = SimHost::new("H");
        let net = FailNth { fail_at: fail_leg, fault, legs: AtomicU64::new(0) };
        match run_update_over(&net, &mut host, None, &archive, None, "/tmp/t", &script) {
            Ok(()) => {} // leg 7 never fires: only seven legs per update
            Err(e) => prop_assert!(!e.is_hard(), "network fault must be soft: {e:?}"),
        }
        // No torn files even mid-fault, and a fault-free retry converges.
        run_update(&mut host, &archive, "/tmp/t", &script).unwrap();
        for i in 0..member_count {
            let path = format!("/var/svc/f{i}.db");
            let expected = format!("DATA-{i}\n");
            prop_assert_eq!(host.read_file(&path).unwrap(), expected.as_bytes());
        }
    }
}
