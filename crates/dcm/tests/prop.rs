//! Property-based tests for the DCM substrate: archive framing, CRC error
//! detection, script round trips, and the update protocol's no-torn-files
//! invariant under arbitrary crash points.

use moira_dcm::archive::{crc32, Archive};
use moira_dcm::host::SimHost;
use moira_dcm::update::{run_update, Script};
use proptest::prelude::*;

proptest! {
    #[test]
    fn archive_round_trips(members in prop::collection::vec(
        ("[a-z0-9._-]{1,16}", prop::collection::vec(any::<u8>(), 0..128)), 0..12)) {
        let archive = Archive::from_members(
            members.into_iter().collect(),
        );
        prop_assert_eq!(Archive::from_bytes(&archive.to_bytes()), Some(archive));
    }

    #[test]
    fn crc_detects_any_single_flip(
        data in prop::collection::vec(any::<u8>(), 1..256),
        index in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let mut tampered = data.clone();
        let i = index.index(tampered.len());
        tampered[i] ^= flip;
        prop_assert_ne!(crc32(&data), crc32(&tampered));
    }

    #[test]
    fn scripts_round_trip(files in prop::collection::vec("[a-z0-9._-]{1,12}", 0..8)) {
        let mut archive = Archive::new();
        for f in &files {
            archive.add(f, b"x".to_vec());
        }
        let script = Script::standard(&archive, "/var/svc", "install");
        prop_assert_eq!(Script::from_text(&script.to_text()), Some(script));
    }

    /// Crash the host at an arbitrary operation during an update: every
    /// installed file must be wholly old or wholly new, and a retry after
    /// reboot must converge.
    #[test]
    fn updates_never_tear_and_always_converge(
        crash_at in 0u64..24,
        member_count in 1usize..5,
    ) {
        let mut old = Archive::new();
        let mut new = Archive::new();
        for i in 0..member_count {
            old.add(&format!("f{i}.db"), format!("OLD-{i}\n").into_bytes());
            new.add(&format!("f{i}.db"), format!("NEW-{i}-content\n").into_bytes());
        }
        let old_script = Script::standard(&old, "/var/svc", "install");
        let new_script = Script::standard(&new, "/var/svc", "install");
        let mut host = SimHost::new("H");
        run_update(&mut host, &old, "/tmp/t", &old_script).unwrap();
        host.fail.crash_after_ops = Some(crash_at);
        let _ = run_update(&mut host, &new, "/tmp/t", &new_script);
        host.reboot();
        // Invariant: no torn files even right after the crash.
        for i in 0..member_count {
            let path = format!("/var/svc/f{i}.db");
            let content = host.read_file(&path).unwrap();
            let ok = content == format!("OLD-{i}\n").as_bytes()
                || content == format!("NEW-{i}-content\n").as_bytes();
            prop_assert!(ok, "torn file {path}: {content:?}");
        }
        // Retry converges to fully new.
        run_update(&mut host, &new, "/tmp/t", &new_script).unwrap();
        for i in 0..member_count {
            let path = format!("/var/svc/f{i}.db");
            let expected = format!("NEW-{i}-content\n");
            prop_assert_eq!(host.read_file(&path).unwrap(), expected.as_bytes());
        }
    }
}
