//! Observability core for the Moira reproduction.
//!
//! The paper's server "logs all transactions which modify the database"
//! and the DCM's whole value is knowing when extractions ran and whether
//! pushes converged. This crate is the measurement substrate those claims
//! (and every later performance gate) rest on: atomic counters and gauges,
//! log-bucketed latency histograms with merge and quantile estimation, a
//! [`Registry`] of named instruments, and RAII stage [`Span`]s.
//!
//! Design constraints, in order:
//!
//! - **The hot path takes no lock.** Instrument handles ([`Counter`],
//!   [`Gauge`], [`Histo`]) are `Arc`s onto atomic cells; recording is a
//!   handful of relaxed atomic RMWs. The registry's name maps are behind a
//!   `Mutex`, but only instrument *creation* and *snapshotting* touch them
//!   — callers cache handles at construction time.
//! - **One global off switch.** Every handle shares the registry's
//!   `enabled` flag; a disabled registry turns recording into a single
//!   relaxed load, so the `results/obs_overhead.json` bench can price the
//!   instrumentation itself.
//! - **A clock seam.** Spans and wait timers read nanoseconds through the
//!   registry's [`ClockSource`]; the deployment simulator swaps in the
//!   shared [`VClock`] so stage durations report *simulated* time.
//!
//! Instrument names are dotted families, lowest-cardinality prefix first
//! (`server.*`, `db.lock.*`, `db.plan.*`, `dcm.*`). The DCM's hierarchical
//! push adds two: `dcm.fanout.*` (pool width/rack gauges, origin versus
//! relay-leaf leg counts, relay deferrals, wall-versus-summed-leg
//! nanoseconds) and the `dcm.transfer.{origin,relay}.*` tier split of the
//! patch/full byte counters — the standing evidence that stragglers
//! converge by line patch, not whole archive.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use moira_common::clock::VClock;
use parking_lot::Mutex;

/// Number of histogram buckets: one for zero plus one per power of two of
/// a `u64` value.
pub const BUCKETS: usize = 65;

/// Bucket index of a recorded value: 0 holds exact zeros, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i - 1]`.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (the quantile representative before
/// clamping to the observed min/max).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Where instruments read nanoseconds from.
///
/// `Wall` measures real elapsed time from a per-registry epoch; `Virtual`
/// reads the shared simulation clock, so a span around code that calls
/// `VClock::advance` reports the simulated duration.
#[derive(Clone)]
pub enum ClockSource {
    /// Real time, as nanoseconds since the registry was created.
    Wall {
        /// The registry's birth instant.
        epoch: Instant,
    },
    /// Simulated time: `VClock` unix seconds scaled to nanoseconds.
    Virtual(VClock),
}

impl ClockSource {
    /// Current time in nanoseconds on this source's axis.
    pub fn now_nanos(&self) -> u64 {
        match self {
            ClockSource::Wall { epoch } => epoch.elapsed().as_nanos() as u64,
            ClockSource::Virtual(clock) => clock.now().max(0) as u64 * 1_000_000_000,
        }
    }
}

/// The shared atomic core of a histogram.
struct HistCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistCore {
    fn new() -> HistCore {
        HistCore {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(&self.buckets) {
            *out = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a histogram, with merge and quantile estimation.
#[derive(Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    buckets: [u64; BUCKETS],
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// An empty snapshot (the identity element of [`HistSnapshot::merge`]).
    pub fn empty() -> HistSnapshot {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Folds `other` into `self`: bucket-wise addition, min of mins, max of
    /// maxes. Commutative and associative up to the quantile estimate's
    /// bucket resolution — exactly, in fact, since the merged state is a
    /// pure function of the multiset union.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        // Sums wrap, matching the atomic `fetch_add` on the live core.
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the recorded values.
    ///
    /// The estimate is the inclusive upper bound of the bucket containing
    /// the rank-`ceil(q * count)` value, clamped to the observed
    /// `[min, max]`. That makes the estimate monotone in `q` and guarantees
    /// it brackets the true value to within one power of two. Returns 0 on
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

impl fmt::Debug for HistSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HistSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

/// A monotonically increasing counter handle. Cloning shares the cell.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    on: Arc<AtomicBool>,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if self.on.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed up/down gauge handle. Cloning shares the cell.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
    on: Arc<AtomicBool>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        if self.on.load(Ordering::Relaxed) {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        if self.on.load(Ordering::Relaxed) {
            self.cell.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A histogram handle. Cloning shares the core.
#[derive(Clone)]
pub struct Histo {
    core: Arc<HistCore>,
    on: Arc<AtomicBool>,
}

impl Histo {
    /// Records one value.
    pub fn record(&self, v: u64) {
        if self.on.load(Ordering::Relaxed) {
            self.core.record(v);
        }
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistSnapshot {
        self.core.snapshot()
    }
}

/// An in-flight stage measurement: created by [`Registry::span`], records
/// the elapsed clock-source nanoseconds into its histogram when finished
/// or dropped.
pub struct Span {
    histo: Histo,
    clock: ClockSource,
    start: u64,
    armed: bool,
}

impl Span {
    /// Stops the span now, recording its duration.
    pub fn finish(mut self) {
        self.record_once();
    }

    /// Abandons the span without recording anything.
    pub fn cancel(mut self) {
        self.armed = false;
    }

    fn record_once(&mut self) {
        if self.armed {
            self.armed = false;
            let end = self.clock.now_nanos();
            self.histo.record(end.saturating_sub(self.start));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.record_once();
    }
}

struct Inner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistCore>>>,
    enabled: Arc<AtomicBool>,
    clock: Mutex<ClockSource>,
}

/// A registry of named instruments. Cloning shares the registry; handles
/// returned for the same name share their cells, so any holder of the
/// registry observes every holder's recordings.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

impl Registry {
    /// An enabled registry on the wall clock.
    pub fn new() -> Registry {
        Registry {
            inner: Arc::new(Inner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                enabled: Arc::new(AtomicBool::new(true)),
                clock: Mutex::new(ClockSource::Wall {
                    epoch: Instant::now(),
                }),
            }),
        }
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock();
        let cell = counters
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone();
        Counter {
            cell,
            on: self.inner.enabled.clone(),
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.inner.gauges.lock();
        let cell = gauges
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)))
            .clone();
        Gauge {
            cell,
            on: self.inner.enabled.clone(),
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histo {
        let mut histograms = self.inner.histograms.lock();
        let core = histograms
            .entry(name.to_owned())
            .or_insert_with(|| Arc::new(HistCore::new()))
            .clone();
        Histo {
            core,
            on: self.inner.enabled.clone(),
        }
    }

    /// Starts a stage span recording into the histogram named `name`.
    pub fn span(&self, name: &str) -> Span {
        let clock = self.clock_source();
        Span {
            histo: self.histogram(name),
            start: clock.now_nanos(),
            clock,
            armed: true,
        }
    }

    /// The current clock source (a cheap clone; `Virtual` shares the
    /// underlying `VClock`).
    pub fn clock_source(&self) -> ClockSource {
        self.inner.clock.lock().clone()
    }

    /// Current time in nanoseconds on the registry's clock axis.
    pub fn now_nanos(&self) -> u64 {
        self.clock_source().now_nanos()
    }

    /// Routes spans and wait timers through the shared simulation clock.
    pub fn set_virtual_clock(&self, vclock: VClock) {
        *self.inner.clock.lock() = ClockSource::Virtual(vclock);
    }

    /// Master switch: a disabled registry turns every handle's recording
    /// into a single relaxed load. Existing values are kept.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::Relaxed);
    }

    /// True when recording is on.
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .iter()
            .map(|(name, core)| (name.clone(), core.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Text exposition of the full snapshot, one `name value` line per
    /// statistic, histogram names suffixed with the derived statistic —
    /// the bench harness's dump format (and the wire query's row source).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot().rows() {
            out.push_str(&name);
            out.push(' ');
            out.push_str(&value);
            out.push('\n');
        }
        out
    }
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Deliberately lock-free: Debug-printing a LockManager mid-poll
        // must never contend with instrument creation.
        write!(f, "Registry {{ enabled: {} }}", self.enabled())
    }
}

/// A point-in-time copy of a [`Registry`]'s instruments.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram copies by name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms.get(name)
    }

    /// Flattens the snapshot to `(statistic, value)` rows in deterministic
    /// order: counters, then gauges, then per-histogram derived statistics
    /// (`.count`, `.p50_ns`, `.p99_ns`, `.mean_ns`, `.max_ns`).
    pub fn rows(&self) -> Vec<(String, String)> {
        let mut rows = Vec::new();
        for (name, value) in &self.counters {
            rows.push((name.clone(), value.to_string()));
        }
        for (name, value) in &self.gauges {
            rows.push((name.clone(), value.to_string()));
        }
        for (name, h) in &self.histograms {
            rows.push((format!("{name}.count"), h.count.to_string()));
            rows.push((format!("{name}.p50_ns"), h.p50().to_string()));
            rows.push((format!("{name}.p99_ns"), h.p99().to_string()));
            rows.push((format!("{name}.mean_ns"), h.mean().to_string()));
            rows.push((format!("{name}.max_ns"), h.max.to_string()));
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..64 {
            // The upper bound lives in its own bucket.
            assert_eq!(bucket_of(bucket_upper(i)), i);
        }
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name shares the cell.
        assert_eq!(r.counter("c").get(), 5);
        let g = r.gauge("g");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.gauge("g"), 5);
        assert_eq!(snap.counter("absent"), 0);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = Registry::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        r.set_enabled(false);
        c.inc();
        h.record(9);
        assert_eq!(c.get(), 0);
        assert_eq!(h.snapshot().count, 0);
        r.set_enabled(true);
        c.inc();
        h.record(9);
        assert_eq!(c.get(), 1);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn quantiles_on_known_data() {
        let r = Registry::new();
        let h = r.histogram("h");
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.mean(), 50);
        // Exact values are bucketed; the estimate brackets the truth to a
        // power of two and stays within [min, max].
        let p50 = s.p50();
        assert!((50..=100).contains(&p50), "p50={p50}");
        let p99 = s.p99();
        assert!((99..=100).contains(&p99), "p99={p99}");
        assert!(s.quantile(0.0) >= s.min);
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let s = HistSnapshot::empty();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn merge_is_union() {
        let r = Registry::new();
        let a = r.histogram("a");
        let b = r.histogram("b");
        a.record(3);
        a.record(100);
        b.record(7);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.min, 3);
        assert_eq!(m.max, 100);
        assert_eq!(m.sum, 110);
    }

    #[test]
    fn span_measures_virtual_time() {
        let clock = VClock::new();
        let r = Registry::new();
        r.set_virtual_clock(clock.clone());
        {
            let _span = r.span("stage");
            clock.advance(7);
        }
        let s = r.snapshot();
        let h = s.histogram("stage").expect("span recorded");
        assert_eq!(h.count, 1);
        assert_eq!(h.max, 7_000_000_000);
        // A cancelled span records nothing.
        let span = r.span("stage");
        clock.advance(1);
        span.cancel();
        assert_eq!(r.histogram("stage").snapshot().count, 1);
    }

    #[test]
    fn render_text_lists_all_instruments() {
        let r = Registry::new();
        r.counter("requests").add(3);
        r.gauge("depth").set(-1);
        r.histogram("lat").record(5);
        let text = r.render_text();
        assert!(text.contains("requests 3\n"), "{text}");
        assert!(text.contains("depth -1\n"), "{text}");
        assert!(text.contains("lat.count 1\n"), "{text}");
        assert!(text.contains("lat.p99_ns "), "{text}");
        assert!(text.contains("lat.max_ns 5\n"), "{text}");
    }

    #[test]
    fn registry_clones_share_instruments() {
        let r = Registry::new();
        let r2 = r.clone();
        r.counter("x").inc();
        assert_eq!(r2.counter("x").get(), 1);
        r2.set_enabled(false);
        assert!(!r.enabled());
    }
}
