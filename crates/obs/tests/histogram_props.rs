//! Property tests for the histogram invariants the obs crate guarantees:
//! counts are conserved by record and merge, quantile estimation is
//! monotone in `q` and brackets the recorded extremes, and merge is
//! commutative (the merged state is a pure function of the multiset
//! union, so operand order cannot matter).

use moira_obs::{HistSnapshot, Registry};
use proptest::prelude::*;

fn recorded(values: &[u64]) -> HistSnapshot {
    let h = Registry::new().histogram("h");
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..Default::default() })]

    #[test]
    fn record_preserves_count_and_sum(values in prop::collection::vec(any::<u64>(), 0..200)) {
        let s = recorded(&values);
        prop_assert_eq!(s.count, values.len() as u64);
        let sum: u64 = values.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(s.sum, sum);
        if let Some(&min) = values.iter().min() {
            prop_assert_eq!(s.min, min);
        }
        if let Some(&max) = values.iter().max() {
            prop_assert_eq!(s.max, max);
        }
    }

    #[test]
    fn merge_preserves_total_count(
        a in prop::collection::vec(0u64..1_000_000, 0..100),
        b in prop::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let mut merged = recorded(&a);
        merged.merge(&recorded(&b));
        prop_assert_eq!(merged.count, (a.len() + b.len()) as u64);
        // Merging two halves is indistinguishable from recording the
        // concatenation into one histogram.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, recorded(&all));
    }

    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec(any::<u64>(), 0..100),
        b in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut ab = recorded(&a);
        ab.merge(&recorded(&b));
        let mut ba = recorded(&b);
        ba.merge(&recorded(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn quantiles_are_monotone_and_bracket_extremes(
        values in prop::collection::vec(any::<u64>(), 1..200),
        permilles in prop::collection::vec(0usize..=1000, 2..20),
    ) {
        let s = recorded(&values);
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        let mut permilles = permilles;
        permilles.sort_unstable();
        let mut prev = None;
        for p in permilles {
            let q = s.quantile(p as f64 / 1000.0);
            prop_assert!(q >= min, "quantile {q} below recorded min {min}");
            prop_assert!(q <= max, "quantile {q} above recorded max {max}");
            if let Some(prev) = prev {
                prop_assert!(q >= prev, "quantile regressed: {prev} -> {q}");
            }
            prev = Some(q);
        }
    }

    #[test]
    fn quantile_estimate_is_within_one_bucket(
        values in prop::collection::vec(1u64..=u64::MAX, 1..100),
        permille in 0usize..=1000,
    ) {
        // The estimate is the power-of-two upper bound of the bucket
        // holding the rank value (clamped to [min, max]), so it never
        // exceeds twice the true rank value.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let s = recorded(&values);
        let q = permille as f64 / 1000.0;
        // Recompute the implementation's rank selection to index the truth.
        let rank = ((q * s.count as f64).ceil() as u64).clamp(1, s.count);
        let truth = sorted[rank as usize - 1];
        let est = s.quantile(q);
        prop_assert!(est <= truth.saturating_mul(2), "est {est} vs true {truth}");
    }
}
