#![warn(missing_docs)]

//! The Moira application library (§5.6) and administrative clients.
//!
//! "In all cases, a client of Moira uses the application library. The
//! library communicates with the Moira server via a network protocol."
//! This crate provides:
//!
//! - [`conn`] — the `MoiraConn` trait and the RPC client implementing
//!   `mr_connect` / `mr_auth` / `mr_noop` / `mr_access` / `mr_query` /
//!   `mr_disconnect` over either transport.
//! - [`glue`] — the direct "glue" library (§5.6): the exact same interface
//!   wired straight to the database, bypassing the RPC layer, "for use by
//!   the DCM and other utilities … significantly higher throughput".
//! - [`server_thread`] — a helper that runs a `MoiraServer` loop on a
//!   background thread so blocking clients can be used against it.
//! - [`apps`] — the twelve administrative interface programs of §5.1.H.

pub mod apps;
pub mod conn;
pub mod glue;
pub mod server_thread;

pub use conn::{MoiraConn, RpcClient};
pub use glue::DirectClient;
pub use server_thread::ServerThread;
