//! The `MoiraConn` trait and the RPC client (§5.6.2).

use bytes::Bytes;
use moira_common::errors::{MrError, MrResult};
use moira_krb::ticket::{Authenticator, Ticket};
use moira_protocol::transport::{recv_blocking, Channel, TcpChannel};
use moira_protocol::wire::{MajorRequest, Reply, Request};

/// The connection interface shared by the RPC client and the direct glue
/// library — "the direct 'glue' library provides the exact same interface
/// as the RPC library" (§5.6).
pub trait MoiraConn {
    /// `mr_noop`: handshake for testing and performance measurement.
    fn noop(&mut self) -> MrResult<()>;

    /// `mr_auth` in trusted mode: authenticate as a bare principal.
    fn auth(&mut self, principal: &str, client_name: &str) -> MrResult<()>;

    /// `mr_access`: checks the user's access to a query without running it
    /// — "a hint as to whether or not the particular query will succeed, so
    /// that they won't bother to prompt the user for a large number of
    /// arguments if the query is doomed to failure".
    fn access(&mut self, name: &str, args: &[&str]) -> MrResult<()>;

    /// `mr_query`: runs a query; `callback` is invoked once per returned
    /// tuple.
    fn query(
        &mut self,
        name: &str,
        args: &[&str],
        callback: &mut dyn FnMut(&[String]),
    ) -> MrResult<()>;

    /// Requests an immediate DCM run (`Trigger_DCM`).
    fn trigger_dcm(&mut self) -> MrResult<()>;

    /// Convenience: run a query and collect the tuples.
    fn query_collect(&mut self, name: &str, args: &[&str]) -> MrResult<Vec<Vec<String>>> {
        let mut rows = Vec::new();
        self.query(name, args, &mut |tuple| rows.push(tuple.to_vec()))?;
        Ok(rows)
    }
}

/// How long `recv` polls before giving up (spin iterations) — the default
/// per-request deadline.
const RECV_TRIES: u32 = 5_000_000;

/// Default resend attempts when the server sheds a request with `MR_BUSY`.
const BUSY_RETRIES: u32 = 4;

/// Default base for the busy-retry backoff, milliseconds (doubles per
/// attempt).
const BUSY_BACKOFF_BASE_MS: u64 = 1;

/// The RPC client over a framed channel.
pub struct RpcClient {
    chan: Option<Box<dyn Channel>>,
    /// Per-request deadline, in receive-poll iterations.
    recv_tries: u32,
    /// How many times a `MR_BUSY` shed is retried before surfacing.
    busy_retries: u32,
    /// Base backoff between busy retries, milliseconds.
    busy_backoff_base_ms: u64,
    /// Requests resent after a `MR_BUSY` shed, over the client's lifetime.
    pub busy_resends: u64,
}

impl RpcClient {
    /// `mr_connect` over an already-established channel (in-process pair or
    /// TCP).
    pub fn connect(chan: Box<dyn Channel>) -> RpcClient {
        RpcClient {
            chan: Some(chan),
            recv_tries: RECV_TRIES,
            busy_retries: BUSY_RETRIES,
            busy_backoff_base_ms: BUSY_BACKOFF_BASE_MS,
            busy_resends: 0,
        }
    }

    /// `mr_connect` to a TCP address (single attempt).
    pub fn connect_tcp(addr: &str) -> MrResult<RpcClient> {
        RpcClient::connect_tcp_retry(addr, 1, 0)
    }

    /// `mr_connect` to a TCP address with up to `attempts` connection
    /// attempts, sleeping `backoff_ms · 2^n` between consecutive failures —
    /// a server that is restarting (or briefly drowning in connections) is
    /// reached as soon as it returns.
    pub fn connect_tcp_retry(addr: &str, attempts: u32, backoff_ms: u64) -> MrResult<RpcClient> {
        let mut wait = backoff_ms;
        for attempt in 0..attempts.max(1) {
            match TcpChannel::connect(addr) {
                Ok(chan) => return Ok(RpcClient::connect(Box::new(chan))),
                Err(_) if attempt + 1 < attempts.max(1) => {
                    if wait > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(wait));
                        wait = wait.saturating_mul(2);
                    }
                }
                Err(_) => break,
            }
        }
        Err(MrError::Aborted)
    }

    /// Overrides the per-request deadline (receive-poll iterations). Short
    /// deadlines make lost replies surface as [`MrError::Aborted`] quickly
    /// instead of hanging the caller.
    pub fn set_deadline_tries(&mut self, tries: u32) {
        self.recv_tries = tries;
    }

    /// Configures the `MR_BUSY` retry loop: how many resends, and the base
    /// backoff (milliseconds, doubling per attempt). Zero retries surfaces
    /// [`MrError::Busy`] to the caller immediately.
    pub fn set_busy_retry(&mut self, retries: u32, backoff_base_ms: u64) {
        self.busy_retries = retries;
        self.busy_backoff_base_ms = backoff_base_ms;
    }

    /// `mr_disconnect`: drops the connection. Returns
    /// `MR_NOT_CONNECTED` if no connection was there in the first place.
    pub fn disconnect(&mut self) -> MrResult<()> {
        if self.chan.take().is_none() {
            return Err(MrError::NotConnected);
        }
        Ok(())
    }

    /// `mr_auth` with real Kerberos credentials.
    pub fn auth_krb(
        &mut self,
        ticket: &Ticket,
        authenticator: &Authenticator,
        client_name: &str,
    ) -> MrResult<()> {
        let mut req = Request::new(MajorRequest::Auth, &[]);
        req.args = vec![
            Bytes::from(ticket.sealed.clone()),
            Bytes::from(authenticator.sealed.clone()),
            Bytes::copy_from_slice(client_name.as_bytes()),
        ];
        let replies = self.round_trip(req)?;
        status_of(&replies)
    }

    fn chan(&mut self) -> MrResult<&mut Box<dyn Channel>> {
        self.chan.as_mut().ok_or(MrError::NotConnected)
    }

    /// One request/reply exchange, transparently retrying `MR_BUSY` sheds
    /// with exponential backoff — the client half of the server's overload
    /// protection: shed work retries *later*, off the overload peak,
    /// instead of immediately re-piling onto it.
    fn round_trip(&mut self, req: Request) -> MrResult<Vec<Reply>> {
        let mut wait_ms = self.busy_backoff_base_ms;
        let mut attempt = 0u32;
        loop {
            let replies = self.round_trip_once(&req)?;
            let busy = replies
                .last()
                .is_some_and(|r| r.code == MrError::Busy.code());
            if !busy || attempt >= self.busy_retries {
                return Ok(replies);
            }
            attempt += 1;
            self.busy_resends += 1;
            if wait_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(wait_ms));
                wait_ms = wait_ms.saturating_mul(2);
            }
        }
    }

    fn round_trip_once(&mut self, req: &Request) -> MrResult<Vec<Reply>> {
        let deadline = self.recv_tries;
        let chan = self.chan()?;
        if chan.send(req.encode()).is_err() {
            self.chan = None;
            return Err(MrError::Aborted);
        }
        let mut replies = Vec::new();
        loop {
            let frame = match recv_blocking(chan.as_mut(), deadline) {
                Ok(f) => f,
                Err(_) => {
                    self.chan = None;
                    return Err(MrError::Aborted);
                }
            };
            let reply = Reply::decode(frame)?;
            let done = !reply.is_more_data();
            replies.push(reply);
            if done {
                return Ok(replies);
            }
        }
    }
}

fn status_of(replies: &[Reply]) -> MrResult<()> {
    let code = replies
        .last()
        .map(|r| r.code)
        .unwrap_or(MrError::Aborted.code());
    if code == 0 {
        Ok(())
    } else {
        Err(MrError::from_code(code).unwrap_or(MrError::Internal))
    }
}

impl MoiraConn for RpcClient {
    fn noop(&mut self) -> MrResult<()> {
        let replies = self.round_trip(Request::new(MajorRequest::Noop, &[]))?;
        status_of(&replies)
    }

    fn auth(&mut self, principal: &str, client_name: &str) -> MrResult<()> {
        let replies =
            self.round_trip(Request::new(MajorRequest::Auth, &[principal, client_name]))?;
        status_of(&replies)
    }

    fn access(&mut self, name: &str, args: &[&str]) -> MrResult<()> {
        let mut all = vec![name];
        all.extend_from_slice(args);
        let replies = self.round_trip(Request::new(MajorRequest::Access, &all))?;
        status_of(&replies)
    }

    fn query(
        &mut self,
        name: &str,
        args: &[&str],
        callback: &mut dyn FnMut(&[String]),
    ) -> MrResult<()> {
        let mut all = vec![name];
        all.extend_from_slice(args);
        let replies = self.round_trip(Request::new(MajorRequest::Query, &all))?;
        for reply in &replies {
            if reply.is_more_data() {
                callback(&reply.string_fields()?);
            }
        }
        status_of(&replies)
    }

    fn trigger_dcm(&mut self) -> MrResult<()> {
        let replies = self.round_trip(Request::new(MajorRequest::TriggerDcm, &[]))?;
        status_of(&replies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server_thread::ServerThread;
    use moira_core::server::standard_server;

    fn harness() -> (ServerThread, RpcClient) {
        let (server, state, _) = standard_server(moira_common::VClock::new());
        {
            let mut s = state.write();
            let uid = moira_core::queries::testutil::add_test_user(&mut s, "ops", 1);
            s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
                .unwrap();
        }
        let thread = ServerThread::spawn(server);
        let client = thread.connect();
        (thread, client)
    }

    #[test]
    fn noop_and_disconnect() {
        let (_thread, mut client) = harness();
        client.noop().unwrap();
        client.disconnect().unwrap();
        assert_eq!(client.disconnect(), Err(MrError::NotConnected));
        assert_eq!(client.noop(), Err(MrError::NotConnected));
    }

    #[test]
    fn query_with_callback() {
        let (_thread, mut client) = harness();
        client.auth("ops", "test").unwrap();
        client
            .query("add_machine", &["BOX1", "VAX"], &mut |_| {})
            .unwrap();
        client
            .query("add_machine", &["BOX2", "RT"], &mut |_| {})
            .unwrap();
        let mut names = Vec::new();
        client
            .query("get_machine", &["BOX*"], &mut |tuple| {
                names.push(tuple[0].clone())
            })
            .unwrap();
        assert_eq!(names, vec!["BOX1", "BOX2"]);
        let rows = client.query_collect("get_machine", &["BOX1"]).unwrap();
        assert_eq!(rows[0][1], "VAX");
    }

    #[test]
    fn errors_map_back() {
        let (_thread, mut client) = harness();
        client.auth("ops", "test").unwrap();
        assert_eq!(
            client.query_collect("get_machine", &["NOPE"]).unwrap_err(),
            MrError::NoMatch
        );
        assert_eq!(
            client.query_collect("no_such_query", &[]).unwrap_err(),
            MrError::NoHandle
        );
        assert_eq!(
            client.query_collect("get_machine", &[]).unwrap_err(),
            MrError::Args
        );
    }

    #[test]
    fn busy_shed_retries_then_surfaces() {
        // A server with a zero dispatch budget sheds everything; the
        // client's backoff loop resends the configured number of times and
        // then surfaces the distinct Busy error (not Aborted, not a hang).
        let (mut server, _state, _) = standard_server(moira_common::VClock::new());
        server.set_overload_limit(Some(0));
        let thread = ServerThread::spawn(server);
        let mut client = thread.connect();
        client.set_busy_retry(2, 0);
        assert_eq!(client.noop(), Err(MrError::Busy));
        assert_eq!(client.busy_resends, 2);
        // With retries disabled the shed surfaces immediately.
        let mut impatient = thread.connect();
        impatient.set_busy_retry(0, 0);
        assert_eq!(impatient.noop(), Err(MrError::Busy));
        assert_eq!(impatient.busy_resends, 0);
    }

    #[test]
    fn short_deadline_aborts_lost_reply() {
        // A channel nobody answers: the configured deadline turns a lost
        // reply into a prompt Aborted instead of a five-million-spin hang.
        let (client_end, _server_end) = moira_protocol::transport::pair();
        let mut client = RpcClient::connect(Box::new(client_end));
        client.set_deadline_tries(50);
        assert_eq!(client.noop(), Err(MrError::Aborted));
    }

    #[test]
    fn connect_tcp_retry_reaches_late_listener() {
        use std::net::TcpListener;
        // Nothing listening: all attempts fail, Aborted.
        assert!(RpcClient::connect_tcp_retry("127.0.0.1:1", 2, 1).is_err());
        // A listener that exists from the start is reached on attempt one.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        assert!(RpcClient::connect_tcp_retry(&addr, 3, 1).is_ok());
    }

    #[test]
    fn access_hint() {
        let (_thread, mut client) = harness();
        assert_eq!(
            client.access("add_machine", &["X", "VAX"]),
            Err(MrError::Perm)
        );
        client.auth("ops", "test").unwrap();
        client.access("add_machine", &["X", "VAX"]).unwrap();
    }
}
