//! The `MoiraConn` trait and the RPC client (§5.6.2).

use bytes::Bytes;
use moira_common::errors::{MrError, MrResult};
use moira_krb::ticket::{Authenticator, Ticket};
use moira_protocol::transport::{recv_blocking, Channel, TcpChannel};
use moira_protocol::wire::{MajorRequest, Reply, Request};

/// The connection interface shared by the RPC client and the direct glue
/// library — "the direct 'glue' library provides the exact same interface
/// as the RPC library" (§5.6).
pub trait MoiraConn {
    /// `mr_noop`: handshake for testing and performance measurement.
    fn noop(&mut self) -> MrResult<()>;

    /// `mr_auth` in trusted mode: authenticate as a bare principal.
    fn auth(&mut self, principal: &str, client_name: &str) -> MrResult<()>;

    /// `mr_access`: checks the user's access to a query without running it
    /// — "a hint as to whether or not the particular query will succeed, so
    /// that they won't bother to prompt the user for a large number of
    /// arguments if the query is doomed to failure".
    fn access(&mut self, name: &str, args: &[&str]) -> MrResult<()>;

    /// `mr_query`: runs a query; `callback` is invoked once per returned
    /// tuple.
    fn query(
        &mut self,
        name: &str,
        args: &[&str],
        callback: &mut dyn FnMut(&[String]),
    ) -> MrResult<()>;

    /// Requests an immediate DCM run (`Trigger_DCM`).
    fn trigger_dcm(&mut self) -> MrResult<()>;

    /// Convenience: run a query and collect the tuples.
    fn query_collect(&mut self, name: &str, args: &[&str]) -> MrResult<Vec<Vec<String>>> {
        let mut rows = Vec::new();
        self.query(name, args, &mut |tuple| rows.push(tuple.to_vec()))?;
        Ok(rows)
    }
}

/// How long `recv` polls before giving up (spin iterations).
const RECV_TRIES: u32 = 5_000_000;

/// The RPC client over a framed channel.
pub struct RpcClient {
    chan: Option<Box<dyn Channel>>,
}

impl RpcClient {
    /// `mr_connect` over an already-established channel (in-process pair or
    /// TCP).
    pub fn connect(chan: Box<dyn Channel>) -> RpcClient {
        RpcClient { chan: Some(chan) }
    }

    /// `mr_connect` to a TCP address.
    pub fn connect_tcp(addr: &str) -> MrResult<RpcClient> {
        let chan = TcpChannel::connect(addr).map_err(|_| MrError::Aborted)?;
        Ok(RpcClient::connect(Box::new(chan)))
    }

    /// `mr_disconnect`: drops the connection. Returns
    /// `MR_NOT_CONNECTED` if no connection was there in the first place.
    pub fn disconnect(&mut self) -> MrResult<()> {
        if self.chan.take().is_none() {
            return Err(MrError::NotConnected);
        }
        Ok(())
    }

    /// `mr_auth` with real Kerberos credentials.
    pub fn auth_krb(
        &mut self,
        ticket: &Ticket,
        authenticator: &Authenticator,
        client_name: &str,
    ) -> MrResult<()> {
        let mut req = Request::new(MajorRequest::Auth, &[]);
        req.args = vec![
            Bytes::from(ticket.sealed.clone()),
            Bytes::from(authenticator.sealed.clone()),
            Bytes::copy_from_slice(client_name.as_bytes()),
        ];
        let replies = self.round_trip(req)?;
        status_of(&replies)
    }

    fn chan(&mut self) -> MrResult<&mut Box<dyn Channel>> {
        self.chan.as_mut().ok_or(MrError::NotConnected)
    }

    fn round_trip(&mut self, req: Request) -> MrResult<Vec<Reply>> {
        let chan = self.chan()?;
        if chan.send(req.encode()).is_err() {
            self.chan = None;
            return Err(MrError::Aborted);
        }
        let mut replies = Vec::new();
        loop {
            let frame = match recv_blocking(chan.as_mut(), RECV_TRIES) {
                Ok(f) => f,
                Err(_) => {
                    self.chan = None;
                    return Err(MrError::Aborted);
                }
            };
            let reply = Reply::decode(frame)?;
            let done = !reply.is_more_data();
            replies.push(reply);
            if done {
                return Ok(replies);
            }
        }
    }
}

fn status_of(replies: &[Reply]) -> MrResult<()> {
    let code = replies
        .last()
        .map(|r| r.code)
        .unwrap_or(MrError::Aborted.code());
    if code == 0 {
        Ok(())
    } else {
        Err(MrError::from_code(code).unwrap_or(MrError::Internal))
    }
}

impl MoiraConn for RpcClient {
    fn noop(&mut self) -> MrResult<()> {
        let replies = self.round_trip(Request::new(MajorRequest::Noop, &[]))?;
        status_of(&replies)
    }

    fn auth(&mut self, principal: &str, client_name: &str) -> MrResult<()> {
        let replies =
            self.round_trip(Request::new(MajorRequest::Auth, &[principal, client_name]))?;
        status_of(&replies)
    }

    fn access(&mut self, name: &str, args: &[&str]) -> MrResult<()> {
        let mut all = vec![name];
        all.extend_from_slice(args);
        let replies = self.round_trip(Request::new(MajorRequest::Access, &all))?;
        status_of(&replies)
    }

    fn query(
        &mut self,
        name: &str,
        args: &[&str],
        callback: &mut dyn FnMut(&[String]),
    ) -> MrResult<()> {
        let mut all = vec![name];
        all.extend_from_slice(args);
        let replies = self.round_trip(Request::new(MajorRequest::Query, &all))?;
        for reply in &replies {
            if reply.is_more_data() {
                callback(&reply.string_fields()?);
            }
        }
        status_of(&replies)
    }

    fn trigger_dcm(&mut self) -> MrResult<()> {
        let replies = self.round_trip(Request::new(MajorRequest::TriggerDcm, &[]))?;
        status_of(&replies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server_thread::ServerThread;
    use moira_core::server::standard_server;

    fn harness() -> (ServerThread, RpcClient) {
        let (server, state, _) = standard_server(moira_common::VClock::new());
        {
            let mut s = state.lock();
            let uid = moira_core::queries::testutil::add_test_user(&mut s, "ops", 1);
            s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
                .unwrap();
        }
        let thread = ServerThread::spawn(server);
        let client = thread.connect();
        (thread, client)
    }

    #[test]
    fn noop_and_disconnect() {
        let (_thread, mut client) = harness();
        client.noop().unwrap();
        client.disconnect().unwrap();
        assert_eq!(client.disconnect(), Err(MrError::NotConnected));
        assert_eq!(client.noop(), Err(MrError::NotConnected));
    }

    #[test]
    fn query_with_callback() {
        let (_thread, mut client) = harness();
        client.auth("ops", "test").unwrap();
        client
            .query("add_machine", &["BOX1", "VAX"], &mut |_| {})
            .unwrap();
        client
            .query("add_machine", &["BOX2", "RT"], &mut |_| {})
            .unwrap();
        let mut names = Vec::new();
        client
            .query("get_machine", &["BOX*"], &mut |tuple| {
                names.push(tuple[0].clone())
            })
            .unwrap();
        assert_eq!(names, vec!["BOX1", "BOX2"]);
        let rows = client.query_collect("get_machine", &["BOX1"]).unwrap();
        assert_eq!(rows[0][1], "VAX");
    }

    #[test]
    fn errors_map_back() {
        let (_thread, mut client) = harness();
        client.auth("ops", "test").unwrap();
        assert_eq!(
            client.query_collect("get_machine", &["NOPE"]).unwrap_err(),
            MrError::NoMatch
        );
        assert_eq!(
            client.query_collect("no_such_query", &[]).unwrap_err(),
            MrError::NoHandle
        );
        assert_eq!(
            client.query_collect("get_machine", &[]).unwrap_err(),
            MrError::Args
        );
    }

    #[test]
    fn access_hint() {
        let (_thread, mut client) = harness();
        assert_eq!(
            client.access("add_machine", &["X", "VAX"]),
            Err(MrError::Perm)
        );
        client.auth("ops", "test").unwrap();
        client.access("add_machine", &["X", "VAX"]).unwrap();
    }
}
