//! The twelve administrative interface programs (§5.1.H: "Currently there
//! are twelve interface programs").
//!
//! "For each service, there is at least one application interface which
//! provides the capability to manipulate the Moira database." Each program
//! here is a thin flow over [`MoiraConn`]: it pre-checks access with
//! `mr_access` where the original would have (so it "won't bother to prompt
//! the user … if the query is doomed to failure"), runs the queries, and
//! returns a human-readable transcript line.

use moira_common::errors::{MrError, MrResult};
use moira_common::menu::Menu;

use crate::conn::MoiraConn;

/// 1. `chsh` — change a login shell.
pub fn chsh(conn: &mut dyn MoiraConn, login: &str, shell: &str) -> MrResult<String> {
    conn.access("update_user_shell", &[login, shell])?;
    conn.query("update_user_shell", &[login, shell], &mut |_| {})?;
    Ok(format!("Shell for {login} changed to {shell}"))
}

/// 2. `chfn` — change finger information (unspecified fields keep their previous values).
pub fn chfn(conn: &mut dyn MoiraConn, login: &str, updates: &[(&str, &str)]) -> MrResult<String> {
    conn.access(
        "update_finger_by_login",
        &[login, "", "", "", "", "", "", "", ""],
    )?;
    let current = conn.query_collect("get_finger_by_login", &[login])?;
    let mut fields: Vec<String> = current[0][1..10].to_vec();
    let names = [
        "fullname",
        "nickname",
        "home_addr",
        "home_phone",
        "office_addr",
        "office_phone",
        "department",
        "affiliation",
    ];
    for (name, value) in updates {
        if let Some(i) = names.iter().position(|n| n == name) {
            fields[i] = value.to_string();
        } else {
            return Err(MrError::Args);
        }
    }
    let mut args = vec![login.to_owned()];
    args.extend(fields.iter().take(8).cloned());
    let refs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
    conn.query("update_finger_by_login", &refs, &mut |_| {})?;
    Ok(format!("Finger information for {login} updated"))
}

/// 3. `chpobox` — inspect or move a post office box.
pub fn chpobox(
    conn: &mut dyn MoiraConn,
    login: &str,
    potype: &str,
    box_: &str,
) -> MrResult<String> {
    conn.query("set_pobox", &[login, potype, box_], &mut |_| {})?;
    let rows = conn.query_collect("get_pobox", &[login])?;
    Ok(format!(
        "Mail for {login} now goes to {} {}",
        rows[0][1], rows[0][2]
    ))
}

/// 4. `usermaint` — account administration.
pub struct UserMaint;

impl UserMaint {
    /// Adds a registerable account from a registrar record.
    pub fn add_registerable(
        conn: &mut dyn MoiraConn,
        last: &str,
        first: &str,
        middle: &str,
        hashed_id: &str,
        class: &str,
    ) -> MrResult<String> {
        conn.query(
            "add_user",
            &[
                "#",
                "UNIQUE_UID",
                "/bin/csh",
                last,
                first,
                middle,
                "0",
                hashed_id,
                class,
            ],
            &mut |_| {},
        )?;
        Ok(format!("Added registerable account for {first} {last}"))
    }

    /// Activates a half-registered account.
    pub fn activate(conn: &mut dyn MoiraConn, login: &str) -> MrResult<String> {
        conn.query("update_user_status", &[login, "1"], &mut |_| {})?;
        Ok(format!("Account {login} activated"))
    }

    /// Marks an account for deletion (status 3).
    pub fn deactivate(conn: &mut dyn MoiraConn, login: &str) -> MrResult<String> {
        conn.query("update_user_status", &[login, "3"], &mut |_| {})?;
        Ok(format!("Account {login} marked for deletion"))
    }

    /// Changes a user's disk quota — the paper's own §3 example: "the user
    /// accounts administrator … change the disk quota assigned to a user
    /// … the change will automatically take place on the proper server a
    /// short time later."
    pub fn set_quota(
        conn: &mut dyn MoiraConn,
        filesystem: &str,
        login: &str,
        quota: i64,
    ) -> MrResult<String> {
        let q = quota.to_string();
        match conn.query("update_nfs_quota", &[filesystem, login, &q], &mut |_| {}) {
            Err(MrError::NoQuota) => {
                conn.query("add_nfs_quota", &[filesystem, login, &q], &mut |_| {})?
            }
            other => other?,
        }
        Ok(format!("Quota for {login} on {filesystem} set to {quota}"))
    }
}

/// 5. `listmaint` — general list administration.
pub struct ListMaint;

impl ListMaint {
    /// Creates a list.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        conn: &mut dyn MoiraConn,
        name: &str,
        flags: &ListFlags,
        ace_type: &str,
        ace_name: &str,
        description: &str,
    ) -> MrResult<String> {
        conn.query(
            "add_list",
            &[
                name,
                bool_arg(flags.active),
                bool_arg(flags.public),
                bool_arg(flags.hidden),
                bool_arg(flags.maillist),
                bool_arg(flags.group),
                "-1",
                ace_type,
                ace_name,
                description,
            ],
            &mut |_| {},
        )?;
        Ok(format!("List {name} created"))
    }

    /// Adds a member.
    pub fn add_member(
        conn: &mut dyn MoiraConn,
        list: &str,
        mtype: &str,
        member: &str,
    ) -> MrResult<String> {
        conn.query("add_member_to_list", &[list, mtype, member], &mut |_| {})?;
        Ok(format!("{member} added to {list}"))
    }

    /// Removes a member.
    pub fn delete_member(
        conn: &mut dyn MoiraConn,
        list: &str,
        mtype: &str,
        member: &str,
    ) -> MrResult<String> {
        conn.query(
            "delete_member_from_list",
            &[list, mtype, member],
            &mut |_| {},
        )?;
        Ok(format!("{member} removed from {list}"))
    }

    /// Shows a list's members as display lines.
    pub fn show(conn: &mut dyn MoiraConn, list: &str) -> MrResult<Vec<String>> {
        let rows = conn.query_collect("get_members_of_list", &[list])?;
        Ok(rows
            .into_iter()
            .map(|t| format!("{}: {}", t[0], t[1]))
            .collect())
    }
}

/// Boolean flags for [`ListMaint::create`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ListFlags {
    /// Extracted in service updates.
    pub active: bool,
    /// Anyone may self-subscribe.
    pub public: bool,
    /// Membership not divulged.
    pub hidden: bool,
    /// It is a mailing list.
    pub maillist: bool,
    /// It is a unix group.
    pub group: bool,
}

fn bool_arg(b: bool) -> &'static str {
    if b {
        "1"
    } else {
        "0"
    }
}

/// 6. `mailmaint` — the user-facing mailing-list client (the paper's §3 example of a user adding themselves to a public mailing list).
pub struct MailMaint;

impl MailMaint {
    /// Self-subscribes the authenticated user to a public list.
    pub fn subscribe(conn: &mut dyn MoiraConn, me: &str, list: &str) -> MrResult<String> {
        conn.query("add_member_to_list", &[list, "USER", me], &mut |_| {})?;
        Ok(format!("{me} subscribed to {list}"))
    }

    /// Self-unsubscribes.
    pub fn unsubscribe(conn: &mut dyn MoiraConn, me: &str, list: &str) -> MrResult<String> {
        conn.query("delete_member_from_list", &[list, "USER", me], &mut |_| {})?;
        Ok(format!("{me} unsubscribed from {list}"))
    }

    /// Lists the public mailing lists available for self-service.
    pub fn public_lists(conn: &mut dyn MoiraConn) -> MrResult<Vec<String>> {
        let rows = conn.query_collect(
            "qualified_get_lists",
            &["TRUE", "TRUE", "FALSE", "TRUE", "DONTCARE"],
        )?;
        Ok(rows.into_iter().map(|t| t[0].clone()).collect())
    }
}

/// 7. `machmaint` — machine administration.
pub struct MachMaint;

impl MachMaint {
    /// Adds a machine.
    pub fn add(conn: &mut dyn MoiraConn, name: &str, mtype: &str) -> MrResult<String> {
        conn.query("add_machine", &[name, mtype], &mut |_| {})?;
        Ok(format!("Machine {} added", name.to_ascii_uppercase()))
    }

    /// Removes a machine.
    pub fn delete(conn: &mut dyn MoiraConn, name: &str) -> MrResult<String> {
        conn.query("delete_machine", &[name], &mut |_| {})?;
        Ok(format!("Machine {name} deleted"))
    }
}

/// 8. `clustermaint` — cluster administration.
pub struct ClusterMaint;

impl ClusterMaint {
    /// Creates a cluster and optionally attaches service data.
    pub fn create(
        conn: &mut dyn MoiraConn,
        name: &str,
        desc: &str,
        location: &str,
        data: &[(&str, &str)],
    ) -> MrResult<String> {
        conn.query("add_cluster", &[name, desc, location], &mut |_| {})?;
        for (label, value) in data {
            conn.query("add_cluster_data", &[name, label, value], &mut |_| {})?;
        }
        Ok(format!(
            "Cluster {name} created with {} data items",
            data.len()
        ))
    }

    /// Assigns a machine to a cluster.
    pub fn assign(conn: &mut dyn MoiraConn, machine: &str, cluster: &str) -> MrResult<String> {
        conn.query("add_machine_to_cluster", &[machine, cluster], &mut |_| {})?;
        Ok(format!("{machine} assigned to {cluster}"))
    }
}

/// 9. `dcm_maint` — DCM service and server-host administration.
pub struct DcmMaint;

impl DcmMaint {
    /// Registers a service for DCM updates.
    #[allow(clippy::too_many_arguments)]
    pub fn add_service(
        conn: &mut dyn MoiraConn,
        name: &str,
        interval_minutes: i64,
        target: &str,
        script: &str,
        service_type: &str,
    ) -> MrResult<String> {
        conn.query(
            "add_server_info",
            &[
                name,
                &interval_minutes.to_string(),
                target,
                script,
                service_type,
                "1",
                "NONE",
                "NONE",
            ],
            &mut |_| {},
        )?;
        Ok(format!(
            "Service {} registered (every {interval_minutes} min)",
            name.to_ascii_uppercase()
        ))
    }

    /// Adds a host serving a service.
    pub fn add_host(
        conn: &mut dyn MoiraConn,
        service: &str,
        machine: &str,
        value1: i64,
        value2: i64,
        value3: &str,
    ) -> MrResult<String> {
        conn.query(
            "add_server_host_info",
            &[
                service,
                machine,
                "1",
                &value1.to_string(),
                &value2.to_string(),
                value3,
            ],
            &mut |_| {},
        )?;
        Ok(format!("{machine} now serves {service}"))
    }

    /// Forces an immediate update of one host.
    pub fn force_update(
        conn: &mut dyn MoiraConn,
        service: &str,
        machine: &str,
    ) -> MrResult<String> {
        conn.query("set_server_host_override", &[service, machine], &mut |_| {})?;
        Ok(format!(
            "Update of {service} on {machine} scheduled immediately"
        ))
    }

    /// Shows DCM status lines for services matching a pattern.
    pub fn status(conn: &mut dyn MoiraConn, pattern: &str) -> MrResult<Vec<String>> {
        let rows = conn.query_collect("get_server_info", &[pattern])?;
        Ok(rows
            .into_iter()
            .map(|t| {
                format!(
                    "{}: interval {}m enable={} inprogress={} harderror={} ({})",
                    t[0], t[1], t[7], t[8], t[9], t[10]
                )
            })
            .collect())
    }
}

/// 10. `filsysmaint` — filesystem administration.
pub struct FilsysMaint;

impl FilsysMaint {
    /// Registers an NFS partition on a server.
    pub fn add_partition(
        conn: &mut dyn MoiraConn,
        machine: &str,
        dir: &str,
        device: &str,
        status: i64,
        size: i64,
    ) -> MrResult<String> {
        conn.query(
            "add_nfsphys",
            &[
                machine,
                dir,
                device,
                &status.to_string(),
                "0",
                &size.to_string(),
            ],
            &mut |_| {},
        )?;
        Ok(format!(
            "Partition {dir} on {machine} registered ({size} units)"
        ))
    }

    /// Creates a project locker.
    pub fn add_locker(
        conn: &mut dyn MoiraConn,
        label: &str,
        machine: &str,
        packname: &str,
        owner: &str,
        owners: &str,
    ) -> MrResult<String> {
        conn.query(
            "add_filesys",
            &[
                label,
                "NFS",
                machine,
                packname,
                &format!("/mit/{label}"),
                "w",
                "project locker",
                owner,
                owners,
                "1",
                "PROJECT",
            ],
            &mut |_| {},
        )?;
        Ok(format!("Locker {label} created on {machine}:{packname}"))
    }
}

/// 11. `printermaint` — printcap administration.
pub struct PrinterMaint;

impl PrinterMaint {
    /// Adds a printer.
    pub fn add(
        conn: &mut dyn MoiraConn,
        printer: &str,
        spool_host: &str,
        comments: &str,
    ) -> MrResult<String> {
        let dir = format!("/usr/spool/printer/{printer}");
        conn.query(
            "add_printcap",
            &[printer, spool_host, &dir, printer, comments],
            &mut |_| {},
        )?;
        Ok(format!("Printer {printer} spooled on {spool_host}"))
    }
}

/// 12. `zephyrmaint` — Zephyr class ACL administration.
pub struct ZephyrMaint;

impl ZephyrMaint {
    /// Restricts a class: transmit by `xmt_ace`, everything else open.
    pub fn restrict_class(
        conn: &mut dyn MoiraConn,
        class: &str,
        ace_type: &str,
        ace_name: &str,
    ) -> MrResult<String> {
        conn.query(
            "add_zephyr_class",
            &[
                class, ace_type, ace_name, "NONE", "NONE", "NONE", "NONE", "NONE", "NONE",
            ],
            &mut |_| {},
        )?;
        Ok(format!(
            "Zephyr class {class} transmit restricted to {ace_type} {ace_name}"
        ))
    }
}

/// Builds the interactive `usermaint` menu over a shared connection — the
/// menu package at work (§5.6.3).
pub fn usermaint_menu(conn: std::rc::Rc<std::cell::RefCell<Box<dyn MoiraConn>>>) -> Menu {
    let c1 = conn.clone();
    let c2 = conn.clone();
    let c3 = conn;
    Menu::new("usermaint")
        .command(
            "chsh",
            "Change a login shell",
            &["Login", "New shell"],
            move |args| {
                chsh(c1.borrow_mut().as_mut(), &args[0], &args[1]).map_err(|e| e.to_string())
            },
        )
        .command("activate", "Activate an account", &["Login"], move |args| {
            UserMaint::activate(c2.borrow_mut().as_mut(), &args[0]).map_err(|e| e.to_string())
        })
        .command(
            "quota",
            "Change a disk quota",
            &["Filesystem", "Login", "New quota"],
            move |args| {
                let quota: i64 = args[2]
                    .parse()
                    .map_err(|_| "quota must be a number".to_owned())?;
                UserMaint::set_quota(c3.borrow_mut().as_mut(), &args[0], &args[1], quota)
                    .map_err(|e| e.to_string())
            },
        )
}

/// The canonical names of the twelve interface programs, for the
/// deployment-shape experiment (E11).
pub const INTERFACE_PROGRAMS: &[&str] = &[
    "chsh",
    "chfn",
    "chpobox",
    "usermaint",
    "listmaint",
    "mailmaint",
    "machmaint",
    "clustermaint",
    "dcm_maint",
    "filsysmaint",
    "printermaint",
    "zephyrmaint",
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::glue::DirectClient;
    use moira_core::queries::testutil::state_with_admin;
    use moira_core::registry::Registry;
    use std::sync::Arc;

    fn ops_conn() -> DirectClient {
        let (state, _) = state_with_admin("ops");
        DirectClient::connect(
            moira_core::state::shared(state),
            Arc::new(Registry::standard()),
            "ops",
            "apps-test",
        )
    }

    fn with_user(conn: &mut DirectClient, login: &str, uid: &str) {
        conn.query(
            "add_user",
            &[
                login, uid, "/bin/csh", "Last", "First", "M", "1", "xid", "1990",
            ],
            &mut |_| {},
        )
        .unwrap();
    }

    #[test]
    fn twelve_programs_exactly() {
        assert_eq!(INTERFACE_PROGRAMS.len(), 12);
    }

    #[test]
    fn chsh_and_chfn() {
        let mut conn = ops_conn();
        with_user(&mut conn, "babette", "6530");
        assert!(chsh(&mut conn, "babette", "/bin/sh")
            .unwrap()
            .contains("/bin/sh"));
        chfn(
            &mut conn,
            "babette",
            &[("nickname", "Harm"), ("department", "EECS")],
        )
        .unwrap();
        let f = conn
            .query_collect("get_finger_by_login", &["babette"])
            .unwrap();
        assert_eq!(f[0][2], "Harm");
        assert_eq!(f[0][7], "EECS");
        // Earlier fields preserved.
        assert!(!f[0][1].is_empty());
        assert_eq!(
            chfn(&mut conn, "babette", &[("bogus", "x")]).unwrap_err(),
            MrError::Args
        );
    }

    #[test]
    fn chpobox_flow() {
        let mut conn = ops_conn();
        with_user(&mut conn, "babette", "6530");
        MachMaint::add(&mut conn, "athena-po-1.mit.edu", "VAX").unwrap();
        let msg = chpobox(&mut conn, "babette", "POP", "ATHENA-PO-1.MIT.EDU").unwrap();
        assert!(msg.contains("POP ATHENA-PO-1.MIT.EDU"));
    }

    #[test]
    fn list_and_mail_maint() {
        let mut conn = ops_conn();
        with_user(&mut conn, "babette", "6530");
        with_user(&mut conn, "paul", "6531");
        ListMaint::create(
            &mut conn,
            "video-users",
            &ListFlags {
                active: true,
                public: true,
                maillist: true,
                ..Default::default()
            },
            "USER",
            "paul",
            "Video Users",
        )
        .unwrap();
        ListMaint::add_member(&mut conn, "video-users", "USER", "paul").unwrap();
        MailMaint::subscribe(&mut conn, "babette", "video-users").unwrap();
        let members = ListMaint::show(&mut conn, "video-users").unwrap();
        assert_eq!(members.len(), 2);
        assert!(MailMaint::public_lists(&mut conn)
            .unwrap()
            .contains(&"video-users".to_owned()));
        MailMaint::unsubscribe(&mut conn, "babette", "video-users").unwrap();
        assert_eq!(ListMaint::show(&mut conn, "video-users").unwrap().len(), 1);
    }

    #[test]
    fn quota_set_creates_or_updates() {
        let mut conn = ops_conn();
        with_user(&mut conn, "aab", "7000");
        ListMaint::create(
            &mut conn,
            "aab-g",
            &ListFlags {
                active: true,
                group: true,
                ..Default::default()
            },
            "NONE",
            "NONE",
            "",
        )
        .unwrap();
        MachMaint::add(&mut conn, "CHARON", "VAX").unwrap();
        FilsysMaint::add_partition(&mut conn, "CHARON", "/u1/lockers", "ra0c", 1, 50_000).unwrap();
        FilsysMaint::add_locker(
            &mut conn,
            "aab",
            "CHARON",
            "/u1/lockers/aab",
            "aab",
            "aab-g",
        )
        .unwrap();
        // First call adds…
        UserMaint::set_quota(&mut conn, "aab", "aab", 300).unwrap();
        // …second updates.
        UserMaint::set_quota(&mut conn, "aab", "aab", 500).unwrap();
        let q = conn
            .query_collect("get_nfs_quota", &["aab", "aab"])
            .unwrap();
        assert_eq!(q[0][2], "500");
    }

    #[test]
    fn dcm_maint_flow() {
        let mut conn = ops_conn();
        MachMaint::add(&mut conn, "SUOMI.MIT.EDU", "VAX").unwrap();
        DcmMaint::add_service(
            &mut conn,
            "hesiod",
            360,
            "/tmp/hesiod.out",
            "hes.sh",
            "REPLICAT",
        )
        .unwrap();
        DcmMaint::add_host(&mut conn, "HESIOD", "SUOMI.MIT.EDU", 0, 0, "").unwrap();
        let status = DcmMaint::status(&mut conn, "*").unwrap();
        assert!(status[0].contains("HESIOD"));
        DcmMaint::force_update(&mut conn, "HESIOD", "SUOMI.MIT.EDU").unwrap();
    }

    #[test]
    fn printer_and_zephyr_and_cluster() {
        let mut conn = ops_conn();
        MachMaint::add(&mut conn, "EVE.PIKA.MIT.EDU", "VAX").unwrap();
        PrinterMaint::add(&mut conn, "la-pika", "EVE.PIKA.MIT.EDU", "pika lw").unwrap();
        let p = conn.query_collect("get_printcap", &["la-pika"]).unwrap();
        assert_eq!(p[0][2], "/usr/spool/printer/la-pika");
        ZephyrMaint::restrict_class(&mut conn, "MOIRA", "LIST", "moira-admins").unwrap();
        ClusterMaint::create(
            &mut conn,
            "bldge40-vs",
            "E40 VSs",
            "E40",
            &[("zephyr", "neskaya.mit.edu"), ("lpr", "e40")],
        )
        .unwrap();
        MachMaint::add(&mut conn, "TOTO", "RT").unwrap();
        ClusterMaint::assign(&mut conn, "TOTO", "bldge40-vs").unwrap();
        let map = conn
            .query_collect("get_machine_to_cluster_map", &["TOTO", "*"])
            .unwrap();
        assert_eq!(map[0][1], "bldge40-vs");
    }

    #[test]
    fn usermaint_menu_drives_connection() {
        let mut conn = ops_conn();
        with_user(&mut conn, "babette", "6530");
        let conn: std::rc::Rc<std::cell::RefCell<Box<dyn MoiraConn>>> =
            std::rc::Rc::new(std::cell::RefCell::new(Box::new(conn)));
        let menu = usermaint_menu(conn);
        let mut out = String::new();
        let script = [
            "chsh",
            "babette",
            "/bin/tcsh",
            "quota",
            "nofs",
            "babette",
            "100",
            "q",
        ];
        menu.run(&mut script.into_iter(), &mut out);
        assert!(out.contains("Shell for babette changed to /bin/tcsh"));
        assert!(
            out.contains("Error:"),
            "quota on missing filesystem reports error"
        );
    }
}
