//! Runs a [`MoiraServer`] loop on a background thread so blocking clients
//! can talk to it from the same process.
//!
//! The production deployment runs the server as its own UNIX process; for
//! tests, examples, and the simulator we host it on a thread. New
//! connections are handed to the loop through a channel, preserving the
//! single-threaded, non-blocking character of the server itself.
//!
//! The loop is event-driven: between passes it blocks in the server's
//! reactor wait instead of sleeping a fixed interval, and the handle's
//! [`moira_core::Waker`] interrupts that wait whenever a command (attach,
//! stop) is enqueued — idle costs no CPU and commands take effect
//! immediately rather than on the next tick.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use moira_core::server::MoiraServer;
use moira_core::Waker;
use moira_protocol::transport::{pair, Channel};

use crate::conn::RpcClient;

/// Fallback wait bound per pass: how stale a command can go if the waker
/// notification is ever lost. Wakers make delivery immediate; this only
/// caps the worst case.
const COMMAND_TICK: Duration = Duration::from_millis(25);

enum Command {
    Attach(Box<dyn Channel>),
}

/// Handle on a server loop running on a background thread.
pub struct ServerThread {
    commands: Sender<Command>,
    waker: Waker,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<MoiraServer>>,
}

impl ServerThread {
    /// Spawns the loop.
    pub fn spawn(mut server: MoiraServer) -> ServerThread {
        let (tx, rx) = unbounded::<Command>();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let waker = server.waker();
        let handle = std::thread::spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                while let Ok(Command::Attach(chan)) = rx.try_recv() {
                    server.attach(chan, "local", 0);
                }
                // Blocks in the reactor wait until traffic, a waker
                // notification (attach/stop), or the fallback tick.
                server.poll_with_timeout(Some(COMMAND_TICK));
            }
            server
        });
        ServerThread {
            commands: tx,
            waker,
            stop,
            handle: Some(handle),
        }
    }

    /// Creates a new in-process connection to the running server.
    pub fn connect(&self) -> RpcClient {
        let (client_end, server_end) = pair();
        self.commands
            .send(Command::Attach(Box::new(server_end)))
            .expect("server thread alive");
        self.waker.wake();
        RpcClient::connect(Box::new(client_end))
    }

    /// Stops the loop and returns the server.
    pub fn shutdown(mut self) -> MoiraServer {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        self.handle
            .take()
            .expect("not yet joined")
            .join()
            .expect("server thread")
    }
}

impl Drop for ServerThread {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::MoiraConn;
    use moira_core::server::standard_server;

    #[test]
    fn multiple_concurrent_clients() {
        let (server, state, _) = standard_server(moira_common::VClock::new());
        {
            let mut s = state.write();
            let uid = moira_core::queries::testutil::add_test_user(&mut s, "ops", 1);
            s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
                .unwrap();
        }
        let thread = ServerThread::spawn(server);
        let mut handles = Vec::new();
        for i in 0..8 {
            let mut client = thread.connect();
            handles.push(std::thread::spawn(move || {
                client.auth("ops", "stress").unwrap();
                client
                    .query("add_machine", &[&format!("BOX{i}"), "VAX"], &mut |_| {})
                    .unwrap();
                client.noop().unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let server = thread.shutdown();
        let s = server.state();
        let count = s.read().db.table("machine").len();
        assert_eq!(count, 8);
    }

    #[test]
    fn shutdown_interrupts_a_blocked_wait_promptly() {
        // With no traffic the loop sits in the reactor wait; the waker
        // must bring it down in far less time than a sleep-loop would.
        let (server, _state, _) = standard_server(moira_common::VClock::new());
        let thread = ServerThread::spawn(server);
        std::thread::sleep(Duration::from_millis(20));
        let t0 = std::time::Instant::now();
        let _server = thread.shutdown();
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "shutdown waited on a sleeping loop"
        );
    }
}
