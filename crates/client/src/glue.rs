//! The direct "glue" library (§5.6).
//!
//! "For use by the DCM and other utilities, there exists a version of the
//! library which does direct calls to Ingres, rather than going through the
//! server. Use of this library should result in significantly higher
//! throughput, and will also reduce the load on the server itself. The
//! direct glue library provides the exact same interface as the RPC
//! library, except that it does not use Kerberos authentication."
//!
//! The glue library follows the server's read/write tier split: retrieves
//! and `Access` pre-checks take the shared guard (so concurrent glue
//! readers — DCM dump threads, reporting tools — never serialize against
//! each other), while mutations take the exclusive guard.

use std::sync::Arc;

use moira_common::errors::MrResult;
use moira_core::registry::Registry;
use moira_core::state::{Caller, SharedState};

use crate::conn::MoiraConn;

/// A client wired straight to the database.
pub struct DirectClient {
    state: SharedState,
    registry: Arc<Registry>,
    caller: Caller,
}

impl DirectClient {
    /// Opens a direct connection as an (unverified) principal — the glue
    /// library trusts its caller, as the original trusted local root.
    pub fn connect(
        state: SharedState,
        registry: Arc<Registry>,
        principal: &str,
        client_name: &str,
    ) -> DirectClient {
        DirectClient {
            state,
            registry,
            caller: Caller::new(principal, client_name),
        }
    }

    /// The DCM's connection: "it connects to the database and authenticates
    /// as root" (§5.7.1).
    pub fn connect_as_root(
        state: SharedState,
        registry: Arc<Registry>,
        client_name: &str,
    ) -> DirectClient {
        DirectClient {
            state,
            registry,
            caller: Caller::root(client_name),
        }
    }

    /// The shared state (the DCM needs direct access for locking).
    pub fn state(&self) -> SharedState {
        self.state.clone()
    }
}

impl MoiraConn for DirectClient {
    fn noop(&mut self) -> MrResult<()> {
        Ok(())
    }

    fn auth(&mut self, principal: &str, client_name: &str) -> MrResult<()> {
        self.caller = Caller::new(principal, client_name);
        Ok(())
    }

    fn access(&mut self, name: &str, args: &[&str]) -> MrResult<()> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        // Access checks never mutate: shared guard.
        let state = self.state.read();
        self.registry
            .check_access(&state, &self.caller, name, &args)
    }

    fn query(
        &mut self,
        name: &str,
        args: &[&str],
        callback: &mut dyn FnMut(&[String]),
    ) -> MrResult<()> {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        let rows = if self.registry.is_read_query(name) {
            let state = self.state.read();
            self.registry
                .execute_read(&state, &self.caller, name, &args)?
        } else {
            let mut state = self.state.write();
            self.registry
                .execute(&mut state, &self.caller, name, &args)?
        };
        for row in &rows {
            callback(row);
        }
        Ok(())
    }

    fn trigger_dcm(&mut self) -> MrResult<()> {
        self.state.write().dcm_trigger = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moira_common::errors::MrError;
    use moira_core::queries::testutil::state_with_admin;
    use moira_core::state::shared;

    fn setup() -> (SharedState, Arc<Registry>) {
        let (state, _) = state_with_admin("ops");
        (shared(state), Arc::new(Registry::standard()))
    }

    #[test]
    fn direct_queries_work() {
        let (state, registry) = setup();
        let mut glue = DirectClient::connect_as_root(state, registry, "dcm");
        glue.noop().unwrap();
        glue.query("add_machine", &["GLUEBOX", "VAX"], &mut |_| {})
            .unwrap();
        let rows = glue.query_collect("get_machine", &["GLUEBOX"]).unwrap();
        assert_eq!(rows[0][1], "VAX");
    }

    #[test]
    fn glue_still_enforces_acls_for_plain_principals() {
        let (state, registry) = setup();
        let mut glue = DirectClient::connect(state, registry, "nobody", "test");
        assert_eq!(
            glue.query("add_machine", &["X", "VAX"], &mut |_| {})
                .unwrap_err(),
            MrError::Perm
        );
        glue.auth("ops", "test").unwrap();
        glue.query("add_machine", &["X", "VAX"], &mut |_| {})
            .unwrap();
    }

    #[test]
    fn trigger_sets_flag() {
        let (state, registry) = setup();
        let mut glue = DirectClient::connect_as_root(state.clone(), registry, "dcm");
        glue.trigger_dcm().unwrap();
        assert!(state.read().dcm_trigger);
    }

    #[test]
    fn retrieves_run_under_the_shared_guard() {
        // A reader holding the shared guard does not block glue retrieves —
        // the read tier only needs another shared guard. The outside reader
        // lives on its own thread: re-reading on the *same* thread is the
        // recursive-read hazard the lock-order witness rejects (it
        // deadlocks the moment a writer queues between the two reads).
        let (state, registry) = setup();
        let mut glue = DirectClient::connect_as_root(state.clone(), registry, "dcm");
        glue.query("add_machine", &["RO", "VAX"], &mut |_| {})
            .unwrap();
        let outside = state.clone();
        let (locked_tx, locked_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let reader = std::thread::spawn(move || {
            let guard = outside.read();
            locked_tx.send(()).unwrap();
            done_rx.recv().unwrap();
            drop(guard);
        });
        locked_rx.recv().unwrap();
        let rows = glue.query_collect("get_machine", &["RO"]).unwrap();
        assert_eq!(rows[0][0], "RO");
        done_tx.send(()).unwrap();
        reader.join().unwrap();
    }
}
