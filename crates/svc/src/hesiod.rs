//! The Hesiod nameserver.
//!
//! "The hesiod server is a primary source of contact for many athena
//! operations… The server automatically loads the files from disk into
//! memory when it is started" (§5.8.2). This implementation parses the
//! BIND-format lines Moira generates (`HS UNSPECA` data records and
//! `HS CNAME` indirections) and answers `resolve(name, type)` queries the
//! way `login`, `attach`, `lpr` and friends did.

use std::collections::HashMap;

/// One parsed record.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Record {
    /// `HS UNSPECA "data"` — a data record.
    Data(String),
    /// `HS CNAME target` — an alias to another fully-qualified entry.
    CName(String),
}

/// Errors answering a Hesiod query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HesiodError {
    /// No record for the name/type pair.
    NotFound,
    /// A CNAME chain exceeded the hop limit (loop).
    CnameLoop,
    /// A line could not be parsed at load time.
    ParseError(String),
}

/// The in-memory nameserver.
#[derive(Debug, Default)]
pub struct HesiodServer {
    /// `"babette.passwd"` → records.
    records: HashMap<String, Vec<Record>>,
    /// How many files have been loaded since start/restart.
    pub files_loaded: usize,
    /// How many times the server has been (re)started.
    pub restarts: u64,
}

impl HesiodServer {
    /// Creates an empty server.
    pub fn new() -> HesiodServer {
        HesiodServer::default()
    }

    /// Kills and restarts the server, dropping all records — Moira's
    /// install script "will kill the running server and then restart it,
    /// causing the newly updated files to be read into memory".
    pub fn restart(&mut self) {
        self.records.clear();
        self.files_loaded = 0;
        self.restarts += 1;
    }

    /// Loads one `.db` file's contents.
    pub fn load_db(&mut self, contents: &str) -> Result<usize, HesiodError> {
        let mut count = 0;
        for line in contents.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with(';') {
                continue;
            }
            let (name, record) = parse_line(line)?;
            self.records.entry(name).or_default().push(record);
            count += 1;
        }
        self.files_loaded += 1;
        Ok(count)
    }

    /// Resolves `(name, type)` — e.g. `("babette", "passwd")` — following
    /// CNAME chains, returning the data strings.
    pub fn resolve(&self, name: &str, kind: &str) -> Result<Vec<String>, HesiodError> {
        let mut key = format!("{name}.{kind}");
        for _ in 0..8 {
            let Some(records) = self.records.get(&key) else {
                return Err(HesiodError::NotFound);
            };
            // A CNAME must be the only record at a name.
            if let [Record::CName(target)] = records.as_slice() {
                key = target.clone();
                continue;
            }
            let data: Vec<String> = records
                .iter()
                .filter_map(|r| match r {
                    Record::Data(d) => Some(d.clone()),
                    Record::CName(_) => None,
                })
                .collect();
            if data.is_empty() {
                return Err(HesiodError::NotFound);
            }
            return Ok(data);
        }
        Err(HesiodError::CnameLoop)
    }

    /// Number of distinct names served.
    pub fn name_count(&self) -> usize {
        self.records.len()
    }
}

fn parse_line(line: &str) -> Result<(String, Record), HesiodError> {
    let mut parts = line.split_whitespace();
    let name = parts
        .next()
        .ok_or_else(|| HesiodError::ParseError(line.into()))?
        .to_owned();
    let class = parts
        .next()
        .ok_or_else(|| HesiodError::ParseError(line.into()))?;
    let rtype = parts
        .next()
        .ok_or_else(|| HesiodError::ParseError(line.into()))?;
    if class != "HS" {
        return Err(HesiodError::ParseError(line.into()));
    }
    match rtype {
        "CNAME" => {
            let target = parts
                .next()
                .ok_or_else(|| HesiodError::ParseError(line.into()))?
                .to_owned();
            Ok((name, Record::CName(target)))
        }
        "UNSPECA" => {
            // The remainder is either a quoted string or a bare token.
            let data = line_tail(line).unwrap_or_default().trim();
            let data = data
                .strip_prefix('"')
                .and_then(|d| d.strip_suffix('"'))
                .unwrap_or(data);
            Ok((name, Record::Data(data.to_owned())))
        }
        _ => Err(HesiodError::ParseError(line.into())),
    }
}

/// Everything after the `UNSPECA` token.
fn line_tail(line: &str) -> Option<&str> {
    let idx = line.find("UNSPECA")?;
    Some(line[idx + "UNSPECA".len()..].trim())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "; lines for per-cluster info\n",
        "bldge40-vs.cluster\tHS UNSPECA\t\"zephyr neskaya.mit.edu\"\n",
        "bldge40-rt.cluster\tHS UNSPECA\t\"lpr e40\"\n",
        "TOTO.cluster\tHS CNAME\tbldge40-rt.cluster\n",
        "babette.passwd\tHS UNSPECA\t\"babette:*:6530:101:Harmon C Fowler,,,,:/mit/babette:/bin/csh\"\n",
        "6530.uid\tHS CNAME\tbabette.passwd\n",
    );

    #[test]
    fn loads_and_resolves() {
        let mut h = HesiodServer::new();
        let n = h.load_db(SAMPLE).unwrap();
        assert_eq!(n, 5);
        assert_eq!(h.files_loaded, 1);
        let data = h.resolve("babette", "passwd").unwrap();
        assert_eq!(
            data[0],
            "babette:*:6530:101:Harmon C Fowler,,,,:/mit/babette:/bin/csh"
        );
    }

    #[test]
    fn cname_chains() {
        let mut h = HesiodServer::new();
        h.load_db(SAMPLE).unwrap();
        // uid -> passwd.
        assert_eq!(
            h.resolve("6530", "uid").unwrap()[0]
                .split(':')
                .next()
                .unwrap(),
            "babette"
        );
        // machine -> cluster data.
        assert_eq!(h.resolve("TOTO", "cluster").unwrap(), vec!["lpr e40"]);
    }

    #[test]
    fn multiple_records_per_name() {
        let mut h = HesiodServer::new();
        h.load_db("x.cluster HS UNSPECA \"lpr e40\"\nx.cluster HS UNSPECA \"zephyr z1\"\n")
            .unwrap();
        let data = h.resolve("x", "cluster").unwrap();
        assert_eq!(data.len(), 2);
    }

    #[test]
    fn not_found_and_loops() {
        let mut h = HesiodServer::new();
        h.load_db(SAMPLE).unwrap();
        assert_eq!(h.resolve("ghost", "passwd"), Err(HesiodError::NotFound));
        h.load_db("a.x HS CNAME b.x\nb.x HS CNAME a.x\n").unwrap();
        assert_eq!(h.resolve("a", "x"), Err(HesiodError::CnameLoop));
    }

    #[test]
    fn parse_errors_reported() {
        let mut h = HesiodServer::new();
        assert!(matches!(
            h.load_db("garbage"),
            Err(HesiodError::ParseError(_))
        ));
        assert!(matches!(
            h.load_db("a.x IN A 1.2.3.4"),
            Err(HesiodError::ParseError(_))
        ));
    }

    #[test]
    fn unquoted_data_accepted() {
        // sloc entries are unquoted in the paper's example.
        let mut h = HesiodServer::new();
        h.load_db("HESIOD.sloc HS UNSPECA KIWI.MIT.EDU\n").unwrap();
        assert_eq!(h.resolve("HESIOD", "sloc").unwrap(), vec!["KIWI.MIT.EDU"]);
    }

    #[test]
    fn restart_clears_records() {
        let mut h = HesiodServer::new();
        h.load_db(SAMPLE).unwrap();
        assert!(h.name_count() > 0);
        h.restart();
        assert_eq!(h.name_count(), 0);
        assert_eq!(h.restarts, 1);
        assert_eq!(h.resolve("babette", "passwd"), Err(HesiodError::NotFound));
    }
}
