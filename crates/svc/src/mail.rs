//! The mail hub.
//!
//! Loads `/usr/lib/aliases` (sendmail aliases format, as Moira generates
//! it) and resolves addresses: aliases expand recursively, pobox routing
//! lines (`login: login@PO.LOCAL`) terminate at a post office, and
//! non-local addresses leave the hub as-is.

use std::collections::{HashMap, HashSet};

/// Where a resolved recipient ends up.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Destination {
    /// Delivered to a POP box: `(user, post office host)`.
    PoBox {
        /// Box owner.
        user: String,
        /// Post office short name.
        office: String,
    },
    /// Relayed off-hub to a remote address.
    Remote(String),
    /// Discarded (`/dev/null`).
    Discard,
    /// No alias and no pobox: returned to sender.
    Bounce(String),
}

/// Errors loading the aliases file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MailError {
    /// A non-comment line without a colon.
    ParseError(String),
}

/// One entry known to the mail hub's finger server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerEntry {
    /// Unix uid.
    pub uid: i64,
    /// Full name (GECOS first field).
    pub fullname: String,
    /// Home directory.
    pub home: String,
    /// Login shell.
    pub shell: String,
}

/// The mail hub.
#[derive(Debug, Default)]
pub struct MailHub {
    aliases: HashMap<String, Vec<String>>,
    finger: HashMap<String, FingerEntry>,
    /// Delivered messages: `(destination, message)` log.
    pub delivered: Vec<(Destination, String)>,
}

impl MailHub {
    /// Creates an empty hub.
    pub fn new() -> MailHub {
        MailHub::default()
    }

    /// Loads an aliases file, replacing the alias table. ("This file is not
    /// automatically installed … the mail spool must be disabled during the
    /// switchover" — the swap is atomic from the hub's view.)
    pub fn load_aliases(&mut self, contents: &str) -> Result<usize, MailError> {
        let mut fresh = HashMap::new();
        for line in contents.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, rhs) = line
                .split_once(':')
                .ok_or_else(|| MailError::ParseError(line.into()))?;
            let targets: Vec<String> = rhs
                .split(',')
                .map(|t| t.trim().to_owned())
                .filter(|t| !t.is_empty())
                .collect();
            fresh.insert(name.trim().to_owned(), targets);
        }
        let n = fresh.len();
        self.aliases = fresh;
        Ok(n)
    }

    /// Resolves one address to its final destinations.
    pub fn resolve(&self, address: &str) -> Vec<Destination> {
        let mut out = HashSet::new();
        let mut seen = HashSet::new();
        self.resolve_into(address, &mut out, &mut seen, 0);
        let mut v: Vec<Destination> = out.into_iter().collect();
        v.sort();
        v
    }

    fn resolve_into(
        &self,
        address: &str,
        out: &mut HashSet<Destination>,
        seen: &mut HashSet<String>,
        depth: usize,
    ) {
        if depth > 16 || !seen.insert(address.to_owned()) {
            return;
        }
        if address == "/dev/null" {
            out.insert(Destination::Discard);
            return;
        }
        if let Some((user, host)) = address.split_once('@') {
            if let Some(office) = host.strip_suffix(".LOCAL") {
                out.insert(Destination::PoBox {
                    user: user.to_owned(),
                    office: office.to_owned(),
                });
            } else {
                out.insert(Destination::Remote(address.to_owned()));
            }
            return;
        }
        match self.aliases.get(address) {
            Some(targets) => {
                for t in targets {
                    self.resolve_into(t, out, seen, depth + 1);
                }
            }
            None => {
                out.insert(Destination::Bounce(address.to_owned()));
            }
        }
    }

    /// Delivers a message to an address, logging final destinations;
    /// returns them.
    pub fn deliver(&mut self, address: &str, message: &str) -> Vec<Destination> {
        let destinations = self.resolve(address);
        for d in &destinations {
            self.delivered.push((d.clone(), message.to_owned()));
        }
        destinations
    }

    /// Number of loaded aliases.
    pub fn alias_count(&self) -> usize {
        self.aliases.len()
    }

    /// Loads the distributed password file — "a complete password file so
    /// that the finger server on the mailhub will know about everybody"
    /// (§5.8.2).
    pub fn load_passwd(&mut self, contents: &str) -> Result<usize, MailError> {
        let mut fresh = HashMap::new();
        for line in contents.lines().filter(|l| !l.trim().is_empty()) {
            let fields: Vec<&str> = line.split(':').collect();
            if fields.len() < 7 {
                return Err(MailError::ParseError(line.into()));
            }
            let uid: i64 = fields[2]
                .parse()
                .map_err(|_| MailError::ParseError(line.into()))?;
            let fullname = fields[4].split(',').next().unwrap_or_default().to_owned();
            fresh.insert(
                fields[0].to_owned(),
                FingerEntry {
                    uid,
                    fullname,
                    home: fields[5].to_owned(),
                    shell: fields[6].to_owned(),
                },
            );
        }
        let n = fresh.len();
        self.finger = fresh;
        Ok(n)
    }

    /// The finger server: looks a login up in the distributed passwd file.
    pub fn finger(&self, login: &str) -> Option<&FingerEntry> {
        self.finger.get(login)
    }

    /// Number of accounts the finger server knows.
    pub fn finger_count(&self) -> usize {
        self.finger.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALIASES: &str = concat!(
        "# Video Users\n",
        "owner-video-users: paul\n",
        "video-users: smyser, paul, rubin@media-lab.mit.edu\n",
        "babette: babette@ATHENA-PO-2.LOCAL\n",
        "paul: paul@ATHENA-PO-1.LOCAL\n",
        "smyser: smyser@media-lab.mit.edu\n",
        "empty-list: /dev/null\n",
    );

    #[test]
    fn load_and_count() {
        let mut hub = MailHub::new();
        assert_eq!(hub.load_aliases(ALIASES).unwrap(), 6);
        assert!(hub.load_aliases("no colon here").is_err());
    }

    #[test]
    fn direct_pobox_routing() {
        let mut hub = MailHub::new();
        hub.load_aliases(ALIASES).unwrap();
        assert_eq!(
            hub.resolve("babette"),
            vec![Destination::PoBox {
                user: "babette".into(),
                office: "ATHENA-PO-2".into()
            }]
        );
    }

    #[test]
    fn list_expands_through_poboxes_and_remotes() {
        let mut hub = MailHub::new();
        hub.load_aliases(ALIASES).unwrap();
        let dests = hub.resolve("video-users");
        assert_eq!(dests.len(), 3);
        assert!(dests.contains(&Destination::PoBox {
            user: "paul".into(),
            office: "ATHENA-PO-1".into()
        }));
        assert!(dests.contains(&Destination::Remote("smyser@media-lab.mit.edu".into())));
        assert!(dests.contains(&Destination::Remote("rubin@media-lab.mit.edu".into())));
    }

    #[test]
    fn unknown_bounces() {
        let mut hub = MailHub::new();
        hub.load_aliases(ALIASES).unwrap();
        assert_eq!(
            hub.resolve("stranger"),
            vec![Destination::Bounce("stranger".into())]
        );
    }

    #[test]
    fn dev_null_discards() {
        let mut hub = MailHub::new();
        hub.load_aliases(ALIASES).unwrap();
        assert_eq!(hub.resolve("empty-list"), vec![Destination::Discard]);
    }

    #[test]
    fn alias_cycles_terminate() {
        let mut hub = MailHub::new();
        hub.load_aliases("a: b\nb: a, c@x.edu\n").unwrap();
        let dests = hub.resolve("a");
        assert_eq!(dests, vec![Destination::Remote("c@x.edu".into())]);
    }

    #[test]
    fn deliver_logs() {
        let mut hub = MailHub::new();
        hub.load_aliases(ALIASES).unwrap();
        hub.deliver("video-users", "movie night");
        assert_eq!(hub.delivered.len(), 3);
        assert!(hub.delivered.iter().all(|(_, m)| m == "movie night"));
    }

    #[test]
    fn finger_server_loads_passwd() {
        let mut hub = MailHub::new();
        let n = hub
            .load_passwd(concat!(
                "babette:*:6530:101:Harmon C Fowler,,,:/mit/babette:/bin/csh\n",
                "pjd:*:6535:101:Peter J Delaney,,,:/mit/pjd:/bin/csh\n",
            ))
            .unwrap();
        assert_eq!(n, 2);
        assert_eq!(hub.finger_count(), 2);
        let e = hub.finger("babette").unwrap();
        assert_eq!(e.uid, 6530);
        assert_eq!(e.fullname, "Harmon C Fowler");
        assert_eq!(e.shell, "/bin/csh");
        assert!(hub.finger("nobody").is_none());
        assert!(hub.load_passwd("too:few:fields\n").is_err());
        assert!(hub.load_passwd("bad:*:uid:101:X,,,:/h:/bin/sh\n").is_err());
    }

    #[test]
    fn reload_replaces() {
        let mut hub = MailHub::new();
        hub.load_aliases(ALIASES).unwrap();
        hub.load_aliases("only: only@PO.LOCAL\n").unwrap();
        assert_eq!(hub.alias_count(), 1);
        assert_eq!(
            hub.resolve("babette"),
            vec![Destination::Bounce("babette".into())]
        );
    }
}
