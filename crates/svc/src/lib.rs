#![warn(missing_docs)]

//! The consumers of Moira-distributed data (§5.8).
//!
//! "Currently, Moira acts to update a variety of servers" — these are
//! those servers, built as working consumers so every generated file is
//! not just produced but *used*:
//!
//! - [`hesiod`] — the Athena nameserver: loads the eleven BIND-format
//!   `.db` files and answers typed lookups (including CNAME chains and the
//!   pseudo-cluster indirection).
//! - [`zephyr`] — the notification service: class ACLs loaded from the
//!   distributed `*.acl` files, transmit/subscribe checks, and notice
//!   delivery (the DCM's own failure notices ride on this).
//! - [`nfs`] — the locker server: applies the credentials, quotas, and
//!   directories files the way the install shell script did
//!   (`mkdir <username>, chown, chgrp, chmod … setquota`).
//! - [`mail`] — the mail hub: resolves `/usr/lib/aliases` (recursive
//!   aliases, pobox routing) and delivers to post office boxes.

pub mod hesiod;
pub mod mail;
pub mod nfs;
pub mod zephyr;

pub use hesiod::HesiodServer;
pub use mail::MailHub;
pub use nfs::NfsServer;
pub use zephyr::ZephyrServer;
