//! The Zephyr notification service.
//!
//! "The zephyr system has access control lists associated with some actions
//! on some classes of message. Moira updates these access control lists on
//! the zephyr servers from lists stored in Moira" (§5.8.2). The server here
//! enforces those ACLs on transmit and subscribe, and delivers notices to
//! subscribers — it is also the channel the DCM's own failure notices ride
//! on (class MOIRA, instance DCM).

use std::collections::{HashMap, HashSet};

/// The ACL slots distributed per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AclSlot {
    /// Who may transmit on the class.
    Transmit,
    /// Who may subscribe.
    Subscribe,
    /// Instance wildcard specification.
    InstanceWildcard,
    /// Instance UID identity.
    InstanceUid,
}

impl AclSlot {
    /// The file suffix Moira uses for this slot.
    pub fn suffix(self) -> &'static str {
        match self {
            AclSlot::Transmit => "xmt",
            AclSlot::Subscribe => "sub",
            AclSlot::InstanceWildcard => "iws",
            AclSlot::InstanceUid => "iui",
        }
    }

    /// Parses a file suffix.
    pub fn from_suffix(s: &str) -> Option<AclSlot> {
        Some(match s {
            "xmt" => AclSlot::Transmit,
            "sub" => AclSlot::Subscribe,
            "iws" => AclSlot::InstanceWildcard,
            "iui" => AclSlot::InstanceUid,
            _ => return None,
        })
    }
}

/// A delivered notice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notice {
    /// Class the notice was sent on.
    pub class: String,
    /// Instance within the class.
    pub instance: String,
    /// Sending principal.
    pub sender: String,
    /// Body.
    pub message: String,
}

/// Errors from the Zephyr server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZephyrError {
    /// Sender not on the class's transmit ACL.
    TransmitDenied,
    /// Subscriber not on the class's subscription ACL.
    SubscribeDenied,
}

/// One ACL: a set of principals, or open.
#[derive(Debug, Clone, Default)]
struct Acl {
    open: bool,
    members: HashSet<String>,
}

impl Acl {
    fn from_file(contents: &str) -> Acl {
        let mut acl = Acl::default();
        for line in contents.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if line == "*.*@*" {
                acl.open = true;
            } else {
                acl.members.insert(line.to_owned());
            }
        }
        acl
    }

    fn permits(&self, principal: &str) -> bool {
        self.open
            || self.members.contains(principal)
            || self
                .members
                .contains(&format!("{principal}@ATHENA.MIT.EDU"))
    }
}

/// The Zephyr server.
#[derive(Debug, Default)]
pub struct ZephyrServer {
    acls: HashMap<(String, AclSlot), Acl>,
    subscriptions: HashMap<String, HashSet<String>>,
    /// Every notice delivered, in order.
    pub delivered: Vec<Notice>,
}

impl ZephyrServer {
    /// Creates a server with no restricted classes (everything open).
    pub fn new() -> ZephyrServer {
        ZephyrServer::default()
    }

    /// Installs one distributed ACL file, named `<class>.<slot>.acl`.
    ///
    /// Returns false if the file name is not an ACL file.
    pub fn install_acl_file(&mut self, file_name: &str, contents: &str) -> bool {
        let Some(stem) = file_name.strip_suffix(".acl") else {
            return false;
        };
        let Some((class, suffix)) = stem.rsplit_once('.') else {
            return false;
        };
        let Some(slot) = AclSlot::from_suffix(suffix) else {
            return false;
        };
        self.acls
            .insert((class.to_owned(), slot), Acl::from_file(contents));
        true
    }

    fn check(&self, class: &str, slot: AclSlot, principal: &str) -> bool {
        match self.acls.get(&(class.to_owned(), slot)) {
            // Unrestricted class/slot: permitted.
            None => true,
            Some(acl) => acl.permits(principal),
        }
    }

    /// Subscribes a principal to a class.
    pub fn subscribe(&mut self, principal: &str, class: &str) -> Result<(), ZephyrError> {
        if !self.check(class, AclSlot::Subscribe, principal) {
            return Err(ZephyrError::SubscribeDenied);
        }
        self.subscriptions
            .entry(class.to_owned())
            .or_default()
            .insert(principal.to_owned());
        Ok(())
    }

    /// Transmits a notice; returns how many subscribers received it.
    pub fn transmit(
        &mut self,
        sender: &str,
        class: &str,
        instance: &str,
        message: &str,
    ) -> Result<usize, ZephyrError> {
        if !self.check(class, AclSlot::Transmit, sender) {
            return Err(ZephyrError::TransmitDenied);
        }
        let notice = Notice {
            class: class.to_owned(),
            instance: instance.to_owned(),
            sender: sender.to_owned(),
            message: message.to_owned(),
        };
        let count = self.subscriptions.get(class).map(|s| s.len()).unwrap_or(0);
        self.delivered.push(notice);
        Ok(count)
    }

    /// Number of classes with at least one installed ACL.
    pub fn restricted_class_count(&self) -> usize {
        self.acls
            .keys()
            .map(|(c, _)| c.clone())
            .collect::<HashSet<_>>()
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_by_default() {
        let mut z = ZephyrServer::new();
        z.subscribe("anyone", "CHATTER").unwrap();
        assert_eq!(z.transmit("anyone", "CHATTER", "general", "hi").unwrap(), 1);
        assert_eq!(z.delivered.len(), 1);
    }

    #[test]
    fn acl_file_restricts_transmit() {
        let mut z = ZephyrServer::new();
        assert!(z.install_acl_file("MOIRA.xmt.acl", "wheel@ATHENA.MIT.EDU\n"));
        assert_eq!(
            z.transmit("randal", "MOIRA", "DCM", "spoof"),
            Err(ZephyrError::TransmitDenied)
        );
        z.transmit("wheel", "MOIRA", "DCM", "real").unwrap();
        // Other classes unaffected.
        z.transmit("randal", "OTHER", "x", "ok").unwrap();
    }

    #[test]
    fn wildcard_line_opens_slot() {
        let mut z = ZephyrServer::new();
        z.install_acl_file("MOIRA.xmt.acl", "*.*@*\n");
        z.transmit("anyone", "MOIRA", "DCM", "open").unwrap();
    }

    #[test]
    fn subscribe_acl() {
        let mut z = ZephyrServer::new();
        z.install_acl_file("SECRET.sub.acl", "insider@ATHENA.MIT.EDU\n");
        assert_eq!(
            z.subscribe("outsider", "SECRET"),
            Err(ZephyrError::SubscribeDenied)
        );
        z.subscribe("insider", "SECRET").unwrap();
        assert_eq!(z.transmit("insider", "SECRET", "i", "m").unwrap(), 1);
    }

    #[test]
    fn reinstall_replaces_acl() {
        let mut z = ZephyrServer::new();
        z.install_acl_file("C.xmt.acl", "a@ATHENA.MIT.EDU\n");
        assert!(z.transmit("b", "C", "i", "m").is_err());
        z.install_acl_file("C.xmt.acl", "b@ATHENA.MIT.EDU\n");
        z.transmit("b", "C", "i", "m").unwrap();
        assert!(z.transmit("a", "C", "i", "m").is_err());
    }

    #[test]
    fn non_acl_files_rejected() {
        let mut z = ZephyrServer::new();
        assert!(!z.install_acl_file("passwd.db", "stuff"));
        assert!(!z.install_acl_file("X.bogus.acl", "stuff"));
        assert_eq!(z.restricted_class_count(), 0);
    }

    #[test]
    fn slot_suffix_round_trip() {
        for slot in [
            AclSlot::Transmit,
            AclSlot::Subscribe,
            AclSlot::InstanceWildcard,
            AclSlot::InstanceUid,
        ] {
            assert_eq!(AclSlot::from_suffix(slot.suffix()), Some(slot));
        }
    }
}
