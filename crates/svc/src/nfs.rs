//! The NFS locker server.
//!
//! Applies the three Moira-distributed files (§5.8.2): `credentials`
//! (username → uid + group list, used for access checks), the per-partition
//! `quotas` file, and the `directories` file whose application is the
//! install script's job — "mkdir \<username\>, chown, chgrp, chmod - using
//! directories file; setquota \<quota\> - using quotas file".

use std::collections::HashMap;

/// A user's credentials on the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Credential {
    /// Unix uid.
    pub uid: i64,
    /// Group ids, primary first.
    pub gids: Vec<i64>,
}

/// One created locker directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Locker {
    /// Owning uid.
    pub uid: i64,
    /// Owning gid.
    pub gid: i64,
    /// Locker type (HOMEDIR lockers get init files).
    pub lockertype: String,
    /// True if default init files were installed (HOMEDIR only).
    pub init_files: bool,
}

/// Errors applying distributed files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NfsError {
    /// A line failed to parse.
    ParseError(String),
}

/// The NFS server state.
#[derive(Debug, Default)]
pub struct NfsServer {
    credentials: HashMap<String, Credential>,
    quotas: HashMap<i64, i64>,
    lockers: HashMap<String, Locker>,
    /// Usage charged against quotas, by uid (for enforcement checks).
    pub usage: HashMap<i64, i64>,
}

impl NfsServer {
    /// Creates an empty server.
    pub fn new() -> NfsServer {
        NfsServer::default()
    }

    /// Applies a credentials file, replacing the previous mapping.
    pub fn apply_credentials(&mut self, contents: &str) -> Result<usize, NfsError> {
        let mut fresh = HashMap::new();
        for line in contents.lines().filter(|l| !l.trim().is_empty()) {
            let mut parts = line.split(':');
            let login = parts.next().unwrap_or_default().to_owned();
            let uid: i64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| NfsError::ParseError(line.into()))?;
            let gids = parts
                .map(|g| {
                    g.parse::<i64>()
                        .map_err(|_| NfsError::ParseError(line.into()))
                })
                .collect::<Result<Vec<_>, _>>()?;
            fresh.insert(login, Credential { uid, gids });
        }
        let n = fresh.len();
        self.credentials = fresh;
        Ok(n)
    }

    /// Applies a quotas file (`uid quota` per line).
    pub fn apply_quotas(&mut self, contents: &str) -> Result<usize, NfsError> {
        let mut count = 0;
        for line in contents.lines().filter(|l| !l.trim().is_empty()) {
            let mut parts = line.split_whitespace();
            let uid: i64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| NfsError::ParseError(line.into()))?;
            let quota: i64 = parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| NfsError::ParseError(line.into()))?;
            self.quotas.insert(uid, quota);
            count += 1;
        }
        Ok(count)
    }

    /// Applies a directories file (`name uid gid type` per line): creates
    /// any locker that "does not already exist … with the specified
    /// ownership", loading init files for HOMEDIRs.
    pub fn apply_dirs(&mut self, contents: &str) -> Result<usize, NfsError> {
        let mut created = 0;
        for line in contents.lines().filter(|l| !l.trim().is_empty()) {
            let mut parts = line.split_whitespace();
            let (Some(name), Some(uid), Some(gid), Some(ltype)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                return Err(NfsError::ParseError(line.into()));
            };
            let uid: i64 = uid.parse().map_err(|_| NfsError::ParseError(line.into()))?;
            let gid: i64 = gid.parse().map_err(|_| NfsError::ParseError(line.into()))?;
            if self.lockers.contains_key(name) {
                continue;
            }
            let is_home = ltype == "HOMEDIR";
            self.lockers.insert(
                name.to_owned(),
                Locker {
                    uid,
                    gid,
                    lockertype: ltype.to_owned(),
                    init_files: is_home,
                },
            );
            created += 1;
        }
        Ok(created)
    }

    /// Credential lookup (what the server consults on each NFS request).
    pub fn credential(&self, login: &str) -> Option<&Credential> {
        self.credentials.get(login)
    }

    /// Quota for a uid, if assigned.
    pub fn quota(&self, uid: i64) -> Option<i64> {
        self.quotas.get(&uid).copied()
    }

    /// A locker by path.
    pub fn locker(&self, path: &str) -> Option<&Locker> {
        self.lockers.get(path)
    }

    /// Number of lockers present.
    pub fn locker_count(&self) -> usize {
        self.lockers.len()
    }

    /// Charges `blocks` of usage to a uid; false (and no charge) when it
    /// would exceed the quota.
    pub fn charge(&mut self, uid: i64, blocks: i64) -> bool {
        let used = self.usage.get(&uid).copied().unwrap_or(0);
        if let Some(q) = self.quota(uid) {
            if used + blocks > q {
                return false;
            }
        }
        self.usage.insert(uid, used + blocks);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credentials_parse() {
        let mut n = NfsServer::new();
        let count = n
            .apply_credentials("mtalford:14956:5904:689\nmstai:9296:5899\n")
            .unwrap();
        assert_eq!(count, 2);
        let c = n.credential("mtalford").unwrap();
        assert_eq!(c.uid, 14956);
        assert_eq!(c.gids, vec![5904, 689]);
        assert!(n.credential("nobody").is_none());
        assert!(n.apply_credentials("bad:uid\n").is_err());
    }

    #[test]
    fn credentials_replacement_semantics() {
        let mut n = NfsServer::new();
        n.apply_credentials("old:1:2\n").unwrap();
        n.apply_credentials("new:3:4\n").unwrap();
        assert!(
            n.credential("old").is_none(),
            "stale users dropped on reload"
        );
        assert!(n.credential("new").is_some());
    }

    #[test]
    fn quotas_and_enforcement() {
        let mut n = NfsServer::new();
        n.apply_quotas("6530 300\n6531 500\n").unwrap();
        assert_eq!(n.quota(6530), Some(300));
        assert!(n.charge(6530, 250));
        assert!(!n.charge(6530, 100), "would exceed quota");
        assert!(n.charge(6530, 50), "exactly at quota is fine");
        // Unquota'd users are unlimited.
        assert!(n.charge(9999, 1_000_000));
        assert!(n.apply_quotas("x y\n").is_err());
    }

    #[test]
    fn dirs_create_once_with_init_files() {
        let mut n = NfsServer::new();
        let created = n
            .apply_dirs(
                "/mit/lockers/babette 6530 10914 HOMEDIR\n/mit/lockers/proj 0 101 PROJECT\n",
            )
            .unwrap();
        assert_eq!(created, 2);
        let home = n.locker("/mit/lockers/babette").unwrap();
        assert_eq!(home.uid, 6530);
        assert!(home.init_files, "HOMEDIR gets default init files");
        let proj = n.locker("/mit/lockers/proj").unwrap();
        assert!(!proj.init_files);
        // Re-applying is idempotent: "If the directory does not already
        // exist, it will be created" — existing ones untouched.
        let created = n
            .apply_dirs("/mit/lockers/babette 9999 1 HOMEDIR\n")
            .unwrap();
        assert_eq!(created, 0);
        assert_eq!(n.locker("/mit/lockers/babette").unwrap().uid, 6530);
        assert_eq!(n.locker_count(), 2);
    }

    #[test]
    fn dirs_parse_errors() {
        let mut n = NfsServer::new();
        assert!(n.apply_dirs("/short 1\n").is_err());
        assert!(n.apply_dirs("/x notanint 2 HOMEDIR\n").is_err());
    }
}
