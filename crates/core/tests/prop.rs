//! Property-based fuzzing of the query layer: random sequences of
//! predefined queries must never panic, and a set of global database
//! invariants must hold afterwards no matter what succeeded or failed.

use moira_core::queries::testutil::state_with_admin;
use moira_core::registry::Registry;
use moira_core::state::{Caller, MoiraState};
use moira_db::Pred;
use proptest::prelude::*;

/// The global invariants Moira's referential rules are supposed to
/// maintain.
fn check_invariants(state: &MoiraState) {
    let db = &state.db;

    // 1. Every members row references an existing list.
    for (row, _) in db.table("members").iter() {
        let list_id = db.cell("members", row, "list_id").as_int();
        assert!(
            db.table("list")
                .select_one(&Pred::Eq("list_id", list_id.into()))
                .is_some(),
            "dangling members.list_id {list_id}"
        );
        // USER members reference existing users.
        if db.cell("members", row, "member_type").as_str() == "USER" {
            let uid = db.cell("members", row, "member_id").as_int();
            assert!(
                db.table("users")
                    .select_one(&Pred::Eq("users_id", uid.into()))
                    .is_some(),
                "dangling USER member {uid}"
            );
        }
    }

    // 2. Per-partition allocation equals the sum of its quotas plus any
    //    manual adjustments — here no manual adjustments are generated, so
    //    equality must hold exactly.
    for (prow, _) in db.table("nfsphys").iter() {
        let phys_id = db.cell("nfsphys", prow, "nfsphys_id").as_int();
        let allocated = db.cell("nfsphys", prow, "allocated").as_int();
        let sum: i64 = db
            .select("nfsquota", &Pred::Eq("phys_id", phys_id.into()))
            .into_iter()
            .map(|q| db.cell("nfsquota", q, "quota").as_int())
            .sum();
        assert_eq!(allocated, sum, "allocation drift on partition {phys_id}");
    }

    // 3. Every quota references an existing filesystem and user.
    for (qrow, _) in db.table("nfsquota").iter() {
        let fid = db.cell("nfsquota", qrow, "filsys_id").as_int();
        let uid = db.cell("nfsquota", qrow, "users_id").as_int();
        assert!(
            db.table("filesys")
                .select_one(&Pred::Eq("filsys_id", fid.into()))
                .is_some(),
            "dangling quota filesys {fid}"
        );
        assert!(
            db.table("users")
                .select_one(&Pred::Eq("users_id", uid.into()))
                .is_some(),
            "dangling quota user {uid}"
        );
    }

    // 4. POP poboxes point at existing machines.
    for (urow, _) in db.table("users").iter() {
        if db.cell("users", urow, "potype").as_str() == "POP" {
            let mid = db.cell("users", urow, "pop_id").as_int();
            assert!(
                db.table("machine")
                    .select_one(&Pred::Eq("mach_id", mid.into()))
                    .is_some(),
                "pobox on unknown machine {mid}"
            );
        }
    }

    // 5. Serverhosts reference existing services and machines.
    for (srow, _) in db.table("serverhosts").iter() {
        let svc = db.cell("serverhosts", srow, "service").render();
        let mid = db.cell("serverhosts", srow, "mach_id").as_int();
        assert!(
            db.table("servers")
                .select_one(&Pred::Eq("name", svc.clone().into()))
                .is_some(),
            "dangling serverhost service {svc}"
        );
        assert!(
            db.table("machine")
                .select_one(&Pred::Eq("mach_id", mid.into()))
                .is_some(),
            "serverhost on unknown machine {mid}"
        );
    }
}

#[derive(Debug, Clone)]
struct FuzzOp {
    query: &'static str,
    args: Vec<String>,
}

/// Small pools keep collisions (the interesting cases) frequent.
fn name(i: u8) -> String {
    format!("n{}", i % 6)
}

fn op_strategy() -> impl Strategy<Value = FuzzOp> {
    let u = any::<u8>();
    prop_oneof![
        (u, any::<u8>()).prop_map(|(a, b)| FuzzOp {
            query: "add_user",
            args: vec![
                name(a),
                (7000 + b as i64).to_string(),
                "/bin/csh".into(),
                "Last".into(),
                "First".into(),
                "".into(),
                (b % 3).to_string(),
                format!("id{a}"),
                "1990".into(),
            ],
        }),
        u.prop_map(|a| FuzzOp {
            query: "delete_user",
            args: vec![name(a)]
        }),
        (u, any::<u8>()).prop_map(|(a, b)| FuzzOp {
            query: "update_user_status",
            args: vec![name(a), (b % 3).to_string()],
        }),
        u.prop_map(|a| FuzzOp {
            query: "add_machine",
            args: vec![name(a), "VAX".into()]
        }),
        u.prop_map(|a| FuzzOp {
            query: "delete_machine",
            args: vec![name(a)]
        }),
        (u, u).prop_map(|(a, m)| FuzzOp {
            query: "set_pobox",
            args: vec![name(a), "POP".into(), name(m)],
        }),
        u.prop_map(|a| FuzzOp {
            query: "delete_pobox",
            args: vec![name(a)]
        }),
        u.prop_map(|a| FuzzOp {
            query: "add_list",
            args: vec![
                format!("l{}", a % 4),
                "1".into(),
                "0".into(),
                "0".into(),
                "0".into(),
                "1".into(),
                "-1".into(),
                "NONE".into(),
                "NONE".into(),
                "".into(),
            ],
        }),
        u.prop_map(|a| FuzzOp {
            query: "delete_list",
            args: vec![format!("l{}", a % 4)]
        }),
        (u, u).prop_map(|(l, a)| FuzzOp {
            query: "add_member_to_list",
            args: vec![format!("l{}", l % 4), "USER".into(), name(a)],
        }),
        (u, u).prop_map(|(l, a)| FuzzOp {
            query: "delete_member_from_list",
            args: vec![format!("l{}", l % 4), "USER".into(), name(a)],
        }),
        (u, u).prop_map(|(m, _)| FuzzOp {
            query: "add_nfsphys",
            args: vec![
                name(m),
                "/u1/lockers".into(),
                "ra0c".into(),
                "1".into(),
                "0".into(),
                "100000".into(),
            ],
        }),
        (u, u).prop_map(|(f, m)| FuzzOp {
            query: "add_filesys",
            args: vec![
                format!("fs{}", f % 4),
                "NFS".into(),
                name(m),
                format!("/u1/lockers/fs{}", f % 4),
                format!("/mit/fs{}", f % 4),
                "w".into(),
                "".into(),
                name(f),
                format!("l{}", f % 4),
                "1".into(),
                "HOMEDIR".into(),
            ],
        }),
        u.prop_map(|f| FuzzOp {
            query: "delete_filesys",
            args: vec![format!("fs{}", f % 4)]
        }),
        (u, u, 1u8..4).prop_map(|(f, a, q)| FuzzOp {
            query: "add_nfs_quota",
            args: vec![
                format!("fs{}", f % 4),
                name(a),
                (q as i64 * 100).to_string()
            ],
        }),
        (u, u, 1u8..4).prop_map(|(f, a, q)| FuzzOp {
            query: "update_nfs_quota",
            args: vec![format!("fs{}", f % 4), name(a), (q as i64 * 50).to_string()],
        }),
        (u, u).prop_map(|(f, a)| FuzzOp {
            query: "delete_nfs_quota",
            args: vec![format!("fs{}", f % 4), name(a)],
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// No sequence of (valid or invalid) queries panics the server or
    /// breaks the referential invariants.
    #[test]
    fn random_query_sequences_preserve_invariants(
        ops in prop::collection::vec(op_strategy(), 0..80)
    ) {
        let (mut state, _) = state_with_admin("ops");
        let registry = Registry::standard();
        let root = Caller::root("fuzz");
        for op in ops {
            // Failures are expected constantly (collisions, missing
            // objects, in-use refusals); panics and invariant breaks are
            // not.
            let _ = registry.execute(&mut state, &root, op.query, &op.args);
        }
        check_invariants(&state);
        // The journal replays cleanly onto a fresh state and produces the
        // same relation contents.
        let (mut replayed, _) = state_with_admin("ops");
        for entry in state.journal.entries() {
            let caller = Caller::new(&entry.who, &entry.with);
            let result = registry.execute(&mut replayed, &caller, &entry.query, &entry.args);
            prop_assert!(result.is_ok(), "journaled {} must replay: {:?}", entry.query, result);
        }
        for table in ["users", "machine", "list", "members", "filesys", "nfsquota", "nfsphys"] {
            let a: Vec<_> = state.db.table(table).iter().map(|(_, r)| r.to_vec()).collect();
            let b: Vec<_> = replayed.db.table(table).iter().map(|(_, r)| r.to_vec()).collect();
            prop_assert_eq!(a.len(), b.len(), "{} diverged after replay", table);
        }
    }

    /// Random garbage arguments never panic the dispatcher.
    #[test]
    fn arbitrary_arguments_never_panic(
        query_pick in any::<u16>(),
        args in prop::collection::vec(".{0,24}", 0..12),
    ) {
        let (mut state, _) = state_with_admin("ops");
        let registry = Registry::standard();
        let handles = registry.handles();
        let handle = &handles[query_pick as usize % handles.len()];
        let root = Caller::root("fuzz");
        let _ = registry.execute(&mut state, &root, handle.name, &args);
        let _ = registry.check_access(&state, &Caller::anonymous("x"), handle.name, &args);
    }
}
