//! Targeted edge-case tests for query-catalog paths not covered by the
//! per-module unit tests.

use moira_common::errors::{MrError, MrResult};
use moira_core::queries::testutil::{add_test_machine, state_with_admin};
use moira_core::registry::Registry;
use moira_core::state::{Caller, MoiraState};

fn run(
    s: &mut MoiraState,
    r: &Registry,
    who: &Caller,
    q: &str,
    args: &[&str],
) -> MrResult<Vec<Vec<String>>> {
    let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
    r.execute(s, who, q, &args)
}

fn setup() -> (MoiraState, Registry, Caller) {
    let (s, _) = state_with_admin("ops");
    (s, Registry::standard(), Caller::new("ops", "edge"))
}

#[test]
fn update_filesys_moves_between_machines() {
    let (mut s, r, ops) = setup();
    add_test_machine(&mut s, "OLDHOST");
    add_test_machine(&mut s, "NEWHOST");
    run(
        &mut s,
        &r,
        &ops,
        "add_user",
        &["own", "7000", "/bin/csh", "L", "F", "", "1", "x", "G"],
    )
    .unwrap();
    run(
        &mut s,
        &r,
        &ops,
        "add_list",
        &["og", "1", "0", "0", "0", "1", "-1", "NONE", "NONE", ""],
    )
    .unwrap();
    for host in ["OLDHOST", "NEWHOST"] {
        run(
            &mut s,
            &r,
            &ops,
            "add_nfsphys",
            &[host, "/u1/lockers", "ra0c", "1", "0", "9999"],
        )
        .unwrap();
    }
    run(
        &mut s,
        &r,
        &ops,
        "add_filesys",
        &[
            "proj",
            "NFS",
            "OLDHOST",
            "/u1/lockers/proj",
            "/mit/proj",
            "w",
            "",
            "own",
            "og",
            "1",
            "PROJECT",
        ],
    )
    .unwrap();
    // Rename + move to the new host; type stays NFS so the pack is
    // re-validated against the new host's exports.
    run(
        &mut s,
        &r,
        &ops,
        "update_filesys",
        &[
            "proj",
            "proj2",
            "NFS",
            "NEWHOST",
            "/u1/lockers/proj2",
            "/mit/proj2",
            "r",
            "moved",
            "own",
            "og",
            "0",
            "PROJECT",
        ],
    )
    .unwrap();
    let fs = run(&mut s, &r, &ops, "get_filesys_by_label", &["proj2"]).unwrap();
    assert_eq!(fs[0][2], "NEWHOST");
    assert_eq!(fs[0][5], "r");
    assert_eq!(fs[0][9], "0");
    // The old label is gone; the old machine serves nothing.
    assert_eq!(
        run(&mut s, &r, &ops, "get_filesys_by_label", &["proj"]).unwrap_err(),
        MrError::NoMatch
    );
    assert_eq!(
        run(&mut s, &r, &ops, "get_filesys_by_machine", &["OLDHOST"]).unwrap_err(),
        MrError::NoMatch
    );
    // Moving to an unexported pack fails.
    assert_eq!(
        run(
            &mut s,
            &r,
            &ops,
            "update_filesys",
            &[
                "proj2",
                "proj2",
                "NFS",
                "NEWHOST",
                "/u9/void/x",
                "/mit/x",
                "w",
                "",
                "own",
                "og",
                "0",
                "PROJECT",
            ]
        )
        .unwrap_err(),
        MrError::Nfs
    );
}

#[test]
fn update_nfsphys_and_wildcard_rejection() {
    let (mut s, r, ops) = setup();
    add_test_machine(&mut s, "SRV");
    run(
        &mut s,
        &r,
        &ops,
        "add_nfsphys",
        &["SRV", "/u1/a", "ra0c", "1", "0", "100"],
    )
    .unwrap();
    run(
        &mut s,
        &r,
        &ops,
        "update_nfsphys",
        &["SRV", "/u1/a", "ra1c", "3", "10", "500"],
    )
    .unwrap();
    let p = run(&mut s, &r, &ops, "get_nfsphys", &["SRV", "/u1/a"]).unwrap();
    assert_eq!(p[0][2], "ra1c");
    assert_eq!(p[0][3], "3");
    assert_eq!(p[0][5], "500");
    // Unknown partition.
    assert_eq!(
        run(
            &mut s,
            &r,
            &ops,
            "update_nfsphys",
            &["SRV", "/nope", "d", "1", "0", "9"]
        )
        .unwrap_err(),
        MrError::Nfsphys
    );
    // Wildcards rejected in machine names that must match exactly one.
    run(&mut s, &r, &ops, "add_machine", &["SRV2", "VAX"]).unwrap();
    assert_eq!(
        run(&mut s, &r, &ops, "get_nfsphys", &["SRV*", "*"]).unwrap_err(),
        MrError::NotUnique
    );
}

#[test]
fn delete_user_by_uid_flow() {
    let (mut s, r, ops) = setup();
    run(
        &mut s,
        &r,
        &ops,
        "add_user",
        &["gone", "7777", "/bin/csh", "L", "F", "", "0", "x", "G"],
    )
    .unwrap();
    run(&mut s, &r, &ops, "delete_user_by_uid", &["7777"]).unwrap();
    assert_eq!(
        run(&mut s, &r, &ops, "get_user_by_login", &["gone"]).unwrap_err(),
        MrError::NoMatch
    );
    assert_eq!(
        run(&mut s, &r, &ops, "delete_user_by_uid", &["7777"]).unwrap_err(),
        MrError::User
    );
    assert_eq!(
        run(&mut s, &r, &ops, "delete_user_by_uid", &["seven"]).unwrap_err(),
        MrError::Integer
    );
}

#[test]
fn pobox_smtp_then_restore_pop() {
    let (mut s, r, ops) = setup();
    add_test_machine(&mut s, "PO-1");
    run(
        &mut s,
        &r,
        &ops,
        "add_user",
        &["mv", "7100", "/bin/csh", "L", "F", "", "1", "x", "G"],
    )
    .unwrap();
    run(&mut s, &r, &ops, "set_pobox", &["mv", "POP", "PO-1"]).unwrap();
    // Switch to SMTP, then set_pobox_pop restores the remembered machine.
    run(
        &mut s,
        &r,
        &ops,
        "set_pobox",
        &["mv", "SMTP", "mv@elsewhere.edu"],
    )
    .unwrap();
    let p = run(&mut s, &r, &ops, "get_pobox", &["mv"]).unwrap();
    assert_eq!(p[0][1], "SMTP");
    run(&mut s, &r, &ops, "set_pobox_pop", &["mv"]).unwrap();
    let p = run(&mut s, &r, &ops, "get_pobox", &["mv"]).unwrap();
    assert_eq!(p[0][1], "POP");
    assert_eq!(p[0][2], "PO-1");
    // Calling it again when already POP is a no-op success.
    run(&mut s, &r, &ops, "set_pobox_pop", &["mv"]).unwrap();
}

#[test]
fn shortname_execution_and_help() {
    let (mut s, r, ops) = setup();
    // Queries execute by four-character tag too.
    run(&mut s, &r, &ops, "amac", &["TAGBOX", "VAX"]).unwrap();
    let m = run(&mut s, &r, &ops, "gmac", &["TAGBOX"]).unwrap();
    assert_eq!(m[0][1], "VAX");
    // _help resolves tags as well.
    let help = run(&mut s, &r, &ops, "_help", &["amac"]).unwrap();
    assert!(help[0][0].contains("add_machine"));
}

#[test]
fn expand_list_names_and_count_acl() {
    let (mut s, r, ops) = setup();
    for (name, hidden) in [("pub-a", "0"), ("pub-b", "0"), ("hid-a", "1")] {
        run(
            &mut s,
            &r,
            &ops,
            "add_list",
            &[name, "1", "0", hidden, "0", "0", "-1", "NONE", "NONE", ""],
        )
        .unwrap();
    }
    run(
        &mut s,
        &r,
        &ops,
        "add_user",
        &["pleb", "7200", "/bin/csh", "L", "F", "", "1", "x", "G"],
    )
    .unwrap();
    let pleb = Caller::new("pleb", "edge");
    // A plain user expanding "*" sees only unhidden lists.
    let names = run(&mut s, &r, &pleb, "expand_list_names", &["*-a"]).unwrap();
    assert_eq!(names, vec![vec!["pub-a".to_owned()]]);
    // Admins see hidden ones too.
    let names = run(&mut s, &r, &ops, "expand_list_names", &["*-a"]).unwrap();
    assert_eq!(names.len(), 2);
    // Hidden list counting denied to plain users.
    assert_eq!(
        run(&mut s, &r, &pleb, "count_members_of_list", &["hid-a"]).unwrap_err(),
        MrError::Perm
    );
}

#[test]
fn machine_rename_cascades_to_serverhost_lookup() {
    let (mut s, r, ops) = setup();
    add_test_machine(&mut s, "WAS");
    run(
        &mut s,
        &r,
        &ops,
        "add_server_info",
        &["SVC1", "60", "/t", "s", "UNIQUE", "1", "NONE", "NONE"],
    )
    .unwrap();
    run(
        &mut s,
        &r,
        &ops,
        "add_server_host_info",
        &["SVC1", "WAS", "1", "0", "0", ""],
    )
    .unwrap();
    // Rename the machine: the serverhost row references mach_id, so the
    // rename is visible through get_server_locations immediately.
    run(&mut s, &r, &ops, "update_machine", &["WAS", "IS", "VAX"]).unwrap();
    let locs = run(&mut s, &r, &ops, "get_server_locations", &["SVC1"]).unwrap();
    assert_eq!(locs[0][1], "IS");
    // And the machine cannot be deleted while the serverhost exists.
    assert_eq!(
        run(&mut s, &r, &ops, "delete_machine", &["IS"]).unwrap_err(),
        MrError::InUse
    );
}

#[test]
fn anonymous_catalog_introspection() {
    let (mut s, r, _) = setup();
    let anon = Caller::anonymous("probe");
    let queries = run(&mut s, &r, &anon, "_list_queries", &[]).unwrap();
    assert!(queries.len() > 100);
    let stats = run(&mut s, &r, &anon, "get_all_table_stats", &[]).unwrap();
    assert_eq!(stats.len(), 20);
    // But the roster is not open.
    assert_eq!(
        run(&mut s, &r, &anon, "get_all_logins", &[]).unwrap_err(),
        MrError::Perm
    );
}
