//! Concurrency tests for the read/write tier split.
//!
//! The read tier's contract: any number of concurrent retrieves under
//! shared guards return exactly what the same retrieves would return run
//! serially — byte for byte — and a slow scan on one connection does not
//! delay a point lookup on another beyond the poll pass they share.

use std::sync::Arc;

use moira_core::queries::testutil::{add_test_machine, add_test_user, state_with_admin};
use moira_core::registry::Registry;
use moira_core::seed::seed_capacls;
use moira_core::server::MoiraServer;
use moira_core::state::{shared, Caller, MoiraState, SharedState};
use proptest::prelude::*;

/// A seeded state with enough rows for wildcard scans to do real work.
fn populated() -> (SharedState, Arc<Registry>) {
    let (mut s, _) = state_with_admin("ops");
    for i in 0..40 {
        add_test_machine(&mut s, &format!("VS{i:03}"));
        add_test_user(&mut s, &format!("reader{i:02}"), 2000 + i);
    }
    (shared(s), Arc::new(Registry::standard()))
}

/// The pool of retrieve-class requests the property test draws from.
/// Each is (query, args) — all registered as `Handler::Read`.
const READS: &[(&str, &[&str])] = &[
    ("get_machine", &["*"]),
    ("get_machine", &["VS0*"]),
    ("get_machine", &["VS01?"]),
    ("get_user_by_login", &["reader*"]),
    ("get_user_by_login", &["reader07"]),
    ("get_all_logins", &["*"]),
    ("get_list_info", &["*"]),
    ("get_server_info", &["*"]),
    ("_list_queries", &[]),
];

/// Runs one request against a shared guard, capturing the full result
/// (rows or error code) as comparable bytes.
fn run_read(registry: &Registry, state: &MoiraState, caller: &Caller, idx: usize) -> String {
    let (name, args) = READS[idx];
    let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
    match registry.execute_read(state, caller, name, &args) {
        Ok(rows) => format!("ok:{rows:?}"),
        Err(e) => format!("err:{}", e.code()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any interleaving of concurrent reads is byte-identical to serial
    /// execution: the workload is split across threads that all hold
    /// shared guards at once, and every per-request result must match the
    /// single-threaded reference run against the same seed state.
    #[test]
    fn concurrent_reads_equal_serial(
        picks in prop::collection::vec(0usize..9, 1..24),
        threads in 2usize..5,
    ) {
        let (state, registry) = populated();
        let caller = Caller::root("prop");

        // Reference: serial execution under one shared guard.
        let serial: Vec<String> = {
            let guard = state.read();
            picks
                .iter()
                .map(|&i| run_read(&registry, &guard, &caller, i))
                .collect()
        };

        // Concurrent: the same requests round-robined over worker threads,
        // each thread holding its own shared guard for its whole slice.
        let mut concurrent: Vec<(usize, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let state = state.clone();
                    let registry = registry.clone();
                    let caller = caller.clone();
                    let slice: Vec<(usize, usize)> = picks
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(threads)
                        .map(|(slot, &q)| (slot, q))
                        .collect();
                    scope.spawn(move || {
                        let guard = state.read();
                        slice
                            .into_iter()
                            .map(|(slot, q)| (slot, run_read(&registry, &guard, &caller, q)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("reader thread"))
                .collect()
        });
        concurrent.sort_by_key(|(slot, _)| *slot);

        prop_assert_eq!(concurrent.len(), serial.len());
        for (slot, result) in concurrent {
            prop_assert_eq!(&result, &serial[slot], "request {} diverged", slot);
        }
    }
}

/// The obs counters are exact under concurrency: with the 4-worker read
/// pool dispatching retrieves in parallel, interleaved with write batches
/// and an overload burst that sheds, `server.reads_dispatched`,
/// `server.writes_dispatched`, and `server.shed_requests` in the registry
/// equal the server's own ledgers to the unit — no lost updates.
#[test]
fn obs_counters_exact_under_worker_pool() {
    use moira_protocol::transport::{pair, recv_blocking, Channel};
    use moira_protocol::wire::{MajorRequest, Reply, Request};

    let registry = Arc::new(Registry::standard());
    let (mut s, _) = state_with_admin("ops");
    seed_capacls(&mut s, &registry);
    for i in 0..20 {
        add_test_machine(&mut s, &format!("VS{i:03}"));
    }
    let state = shared(s);
    let mut server = MoiraServer::new(state, registry, None);
    server.set_read_workers(4);

    let mut clients = Vec::new();
    for _ in 0..6 {
        let (client, end) = pair();
        server.attach(Box::new(end), "local", 0);
        clients.push(client);
    }
    for c in &mut clients {
        c.send(Request::new(MajorRequest::Auth, &["ops", "test"]).encode())
            .unwrap();
    }
    server.run_until_idle(2);
    for c in &mut clients {
        let r = Reply::decode(recv_blocking(c, 100).unwrap()).unwrap();
        assert_eq!(r.code, 0);
    }

    // Interleaved rounds: even clients scan on the read pool while odd
    // clients append machines on the serial tier, all within one pass.
    for round in 0..5 {
        for (i, c) in clients.iter_mut().enumerate() {
            let req = if i % 2 == 0 {
                Request::new(MajorRequest::Query, &["get_machine", "VS*"])
            } else {
                let name = format!("NEW{round}X{i}");
                Request::new(MajorRequest::Query, &["add_machine", &name, "VAX"])
            };
            c.send(req.encode()).unwrap();
        }
        server.run_until_idle(2);
        for c in &mut clients {
            loop {
                let r = Reply::decode(recv_blocking(c, 100).unwrap()).unwrap();
                if !r.is_more_data() {
                    break;
                }
            }
        }
    }

    // Overload burst: with a limit of 2, a 6-request pass sheds 4.
    server.set_overload_limit(Some(2));
    for c in &mut clients {
        c.send(Request::new(MajorRequest::Query, &["get_machine", "VS001"]).encode())
            .unwrap();
    }
    server.run_until_idle(2);
    for c in &mut clients {
        loop {
            let r = Reply::decode(recv_blocking(c, 100).unwrap()).unwrap();
            if !r.is_more_data() {
                break;
            }
        }
    }

    let (reads, writes) = server.dispatch_counts();
    let sheds = server.shed_requests();
    assert!(reads > 0 && writes > 0, "both tiers exercised");
    assert!(sheds > 0, "the overload burst shed something");

    let snap = server.obs().snapshot();
    assert_eq!(snap.counter("server.reads_dispatched"), reads);
    assert_eq!(snap.counter("server.writes_dispatched"), writes);
    assert_eq!(snap.counter("server.shed_requests"), sheds);
    // The latency histograms saw every dispatched request too.
    assert_eq!(
        snap.histogram("server.latency.read").map_or(0, |h| h.count),
        reads
    );
    assert_eq!(
        snap.histogram("server.latency.write")
            .map_or(0, |h| h.count),
        writes
    );
}

/// A long wildcard scan on one connection must not delay a point lookup on
/// another beyond the poll pass they share: both replies are ready after a
/// single `poll_once`, and both ran on the shared tier.
#[test]
fn slow_scan_does_not_delay_point_query() {
    use moira_protocol::transport::{pair, recv_blocking, Channel};
    use moira_protocol::wire::{MajorRequest, Reply, Request};

    let registry = Arc::new(Registry::standard());
    let (mut s, _) = state_with_admin("ops");
    seed_capacls(&mut s, &registry);
    for i in 0..300 {
        add_test_machine(&mut s, &format!("FARM{i:04}"));
    }
    add_test_user(&mut s, "pointy", 9001);
    let state = shared(s);
    let mut server = MoiraServer::new(state, registry, None);
    server.set_read_workers(2);
    server.enable_service_trace();

    let (mut scanner, scan_end) = pair();
    let (mut pointer, point_end) = pair();
    server.attach(Box::new(scan_end), "local", 0);
    server.attach(Box::new(point_end), "local", 0);

    // Authenticate both (separate pass; Auth is write-tier).
    for c in [&mut scanner, &mut pointer] {
        c.send(Request::new(MajorRequest::Auth, &["ops", "test"]).encode())
            .unwrap();
    }
    server.run_until_idle(2);
    for c in [&mut scanner, &mut pointer] {
        let r = Reply::decode(recv_blocking(c, 100).unwrap()).unwrap();
        assert_eq!(r.code, 0);
    }
    server.take_service_trace();

    // Both requests land before the next pass: a 300-row Like scan and a
    // point lookup.
    scanner
        .send(Request::new(MajorRequest::Query, &["get_machine", "FARM*"]).encode())
        .unwrap();
    pointer
        .send(Request::new(MajorRequest::Query, &["get_user_by_login", "pointy"]).encode())
        .unwrap();
    let processed = server.poll_once();
    assert_eq!(processed, 2);

    // The point query's reply is available NOW — one pass, no waiting for
    // the scan to finish on some serial queue.
    let tuple = Reply::decode(recv_blocking(&mut pointer, 100).unwrap()).unwrap();
    assert!(tuple.is_more_data());
    assert_eq!(tuple.string_fields().unwrap()[0], "pointy");
    let done = Reply::decode(recv_blocking(&mut pointer, 100).unwrap()).unwrap();
    assert_eq!(done.code, 0);

    // The scan also completed in the same pass, with all 300 tuples.
    let mut scan_replies = Vec::new();
    loop {
        let r = Reply::decode(recv_blocking(&mut scanner, 100).unwrap()).unwrap();
        let done = !r.is_more_data();
        scan_replies.push(r);
        if done {
            break;
        }
    }
    assert_eq!(scan_replies.len(), 301);

    // Both dispatched on the shared tier.
    let trace = server.take_service_trace();
    assert_eq!(trace.len(), 2);
    assert!(trace.iter().all(|t| t.read_tier));
}
