//! Crash-recovery torture: randomized kill points, byte-identical
//! convergence.
//!
//! The gate (EXPERIMENTS.md E16): for every armed kill point — spread
//! across WAL appends, fsyncs, and snapshot renames — the server crashes
//! mid-operation, reboots from durable media, re-applies the workload
//! suffix the crash swallowed, and lands on a state **byte-identical** to
//! a server that never crashed: same rows, same row slots, same per-row
//! generation stamps, same tombstones, same free-list order, same
//! journal. The fingerprint is the full snapshot encoding (epoch line
//! excluded: each boot draws a distinct epoch by design).

use moira_common::clock::{VClock, ATHENA_EPOCH};
use moira_common::errors::MrError;
use moira_core::recovery::boot_durable;
use moira_core::registry::Registry;
use moira_core::state::{Caller, MoiraState};
use moira_db::snapshot::encode_snapshot;
use moira_db::storage::{GroupCommitConfig, OpKind, SimMedia};

/// Deterministic workload: appends, updates, and deletes touching users
/// and machines, exercising tombstones and slot reuse.
const STEPS: usize = 36;

fn step(i: usize) -> (&'static str, Vec<String>) {
    match i % 6 {
        0 => ("add_machine", vec![format!("M{i}.MIT.EDU"), "VAX".into()]),
        1 => (
            "add_user",
            vec![
                format!("tort{i}"),
                format!("{}", 9000 + i),
                "/bin/sh".into(),
                "Torture".into(),
                "Test".into(),
                String::new(),
                "1".into(),
                format!("x{i}"),
                "1990".into(),
            ],
        ),
        2 => (
            "update_user_shell",
            vec![format!("tort{}", i - 1), "/bin/csh".into()],
        ),
        3 => ("add_machine", vec![format!("T{i}.MIT.EDU"), "VAX".into()]),
        4 => ("delete_machine", vec![format!("T{}.MIT.EDU", i - 1)]),
        _ => (
            "update_user_shell",
            vec![format!("tort{}", i - 4), format!("/bin/s{i}")],
        ),
    }
}

/// Applies workload steps `from..STEPS`; returns how many applied before
/// the media died (committed steps only).
fn apply_from(registry: &Registry, state: &mut MoiraState, clock: &VClock, from: usize) -> usize {
    let root = Caller::root("torture");
    for i in from..STEPS {
        clock.set(ATHENA_EPOCH + 60 * (i as i64 + 1));
        let (query, args) = step(i);
        match registry.execute(state, &root, query, &args) {
            Ok(_) => {}
            Err(MrError::Durability) => return i - from,
            Err(e) => panic!("workload step {i} ({query}) failed with {e:?}"),
        }
    }
    STEPS - from
}

/// The convergence fingerprint: the exact snapshot encoding minus the
/// epoch line (each boot allocates a fresh epoch; everything else must
/// match byte for byte).
fn fingerprint(state: &MoiraState) -> String {
    encode_snapshot(&state.db, &state.journal, 0)
        .lines()
        .filter(|l| !l.starts_with("epoch:"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn cfg() -> GroupCommitConfig {
    GroupCommitConfig {
        flush_interval_secs: 0,
        flush_bytes: 1,    // every append fsyncs: maximal durable coverage
        snapshot_every: 3, // frequent snapshots: maximal rename coverage
    }
}

fn oracle_fingerprint() -> String {
    let clock = VClock::new();
    let registry = Registry::standard();
    let media = SimMedia::new();
    let (mut state, report) =
        boot_durable(clock.clone(), &registry, Box::new(media), cfg()).expect("oracle boot");
    assert!(!report.recovered);
    let applied = apply_from(&registry, &mut state, &clock, 0);
    assert_eq!(applied, STEPS, "oracle never crashes");
    state.storage.flush().expect("oracle flush");
    fingerprint(&state)
}

#[test]
fn kill_points_converge_byte_identical_to_no_crash_oracle() {
    let oracle = oracle_fingerprint();
    let registry = Registry::standard();

    // ≥50 kill points across the three crash-prone operation classes.
    let mut grid: Vec<(OpKind, u64)> = Vec::new();
    for nth in 0..20 {
        grid.push((OpKind::Append, nth));
        grid.push((OpKind::Fsync, nth));
    }
    for nth in 0..10 {
        grid.push((OpKind::Rename, nth));
    }
    assert!(
        grid.len() >= 50,
        "the gate requires at least 50 kill points"
    );

    let mut crashes = 0u64;
    for &(kind, nth) in &grid {
        let clock = VClock::new();
        let media = SimMedia::new();
        let (mut state, _) = boot_durable(clock.clone(), &registry, Box::new(media.clone()), cfg())
            .unwrap_or_else(|e| panic!("boot before {kind:?}#{nth}: {e:?}"));
        let epoch = state.db.epoch();

        media.arm_crash(kind, nth);
        apply_from(&registry, &mut state, &clock, 0);
        assert!(
            media.crashed(),
            "{kind:?}#{nth} never fired — widen the workload or shrink the grid"
        );
        crashes += 1;
        drop(state); // the dead server's memory is gone

        media.power_cycle();
        let (mut recovered, report) =
            boot_durable(clock.clone(), &registry, Box::new(media.clone()), cfg())
                .unwrap_or_else(|e| panic!("recovery after {kind:?}#{nth}: {e:?}"));
        assert!(report.recovered, "{kind:?}#{nth}");
        assert_eq!(
            recovered.db.epoch(),
            epoch,
            "{kind:?}#{nth}: epoch must survive recovery"
        );

        // The journal length is exactly the durable commit count; re-apply
        // the suffix the crash swallowed and demand byte-identity.
        let committed = recovered.journal.len();
        assert!(
            committed <= STEPS,
            "{kind:?}#{nth}: recovered more than was ever committed"
        );
        let reapplied = apply_from(&registry, &mut recovered, &clock, committed);
        assert_eq!(
            reapplied,
            STEPS - committed,
            "{kind:?}#{nth}: replacement server must not crash again"
        );
        recovered.storage.flush().expect("post-recovery flush");
        assert_eq!(
            fingerprint(&recovered),
            oracle,
            "{kind:?}#{nth}: crashed-at-{committed} run diverged from the oracle"
        );
    }
    assert_eq!(crashes, grid.len() as u64);
}

/// Double-crash: a second kill while recovering from the first (during
/// the post-replay re-seal) must still recover cleanly on the third boot.
#[test]
fn crash_during_recovery_snapshot_recovers_again() {
    let registry = Registry::standard();
    let clock = VClock::new();
    let media = SimMedia::new();
    let (mut state, _) =
        boot_durable(clock.clone(), &registry, Box::new(media.clone()), cfg()).expect("boot");
    media.arm_crash(OpKind::Append, 7);
    apply_from(&registry, &mut state, &clock, 0);
    assert!(media.crashed());
    drop(state);

    // Second crash: the recovery boot's own snapshot rename.
    media.power_cycle();
    media.arm_crash(OpKind::Rename, 0);
    assert!(
        boot_durable(clock.clone(), &registry, Box::new(media.clone()), cfg()).is_err(),
        "recovery died mid-seal"
    );

    // Third boot completes and the workload finishes.
    media.power_cycle();
    let (mut recovered, report) =
        boot_durable(clock.clone(), &registry, Box::new(media), cfg()).expect("third boot");
    assert!(report.recovered);
    let committed = recovered.journal.len();
    assert_eq!(
        apply_from(&registry, &mut recovered, &clock, committed),
        STEPS - committed
    );
}
