//! Adversarial connection-tier tests over real TCP: a slow-loris client
//! dribbling one byte per readiness event, a reader that never drains its
//! replies, mid-frame disconnects, and hostile frame headers.
//!
//! Every scenario must leave the server spotless: no lingering connection,
//! no registered client, an idle lock manager, and a connection gauge back
//! at zero — a hostile peer costs the server a bounded amount of memory
//! and nothing after it leaves.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use moira_core::server::{standard_server, MoiraServer};
use moira_core::state::{Caller, SharedState};
use moira_protocol::wire::{MajorRequest, Reply, Request};

const TICK: Duration = Duration::from_millis(1);

/// A raw TCP client speaking the length-prefixed frame protocol directly,
/// driven in lock-step with the server loop on the test thread.
struct RawClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RawClient {
    fn connect(addr: &str) -> RawClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nonblocking(true).expect("nonblocking");
        stream.set_nodelay(true).expect("nodelay");
        RawClient {
            stream,
            buf: Vec::new(),
        }
    }

    fn send(&mut self, req: &Request) {
        let payload = req.encode();
        let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
        bytes.extend_from_slice(&payload);
        self.stream.write_all(&bytes).expect("request fits buffers");
    }

    /// Pulls whatever the socket has, then pops one complete frame.
    fn try_frame(&mut self) -> Option<Reply> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(_) => break,
            }
        }
        if self.buf.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if self.buf.len() < 4 + len {
            return None;
        }
        let frame = bytes::Bytes::copy_from_slice(&self.buf[4..4 + len]);
        self.buf.drain(..4 + len);
        Some(Reply::decode(frame).expect("well-formed reply"))
    }

    /// Interleaves server passes with client reads until a frame arrives.
    fn pump_frame(&mut self, server: &mut MoiraServer) -> Reply {
        for _ in 0..10_000 {
            if let Some(reply) = self.try_frame() {
                return reply;
            }
            server.poll_with_timeout(Some(TICK));
        }
        panic!("no reply within the deadline");
    }
}

/// Shrinks the client's receive buffer so the kernel cannot absorb the
/// reply flood on its own — without this, loopback autotuning buffers
/// multiple megabytes and the server's outbox never backs up.
#[cfg(target_os = "linux")]
fn clamp_rcvbuf(stream: &TcpStream) {
    use std::os::unix::io::AsRawFd;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            val: *const std::ffi::c_void,
            len: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    // Big enough to stream without zero-window stalls (loopback MSS is
    // 64 KiB), small enough that the reply flood still overruns it.
    let size: i32 = 128 * 1024;
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            &size as *const i32 as *const std::ffi::c_void,
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF)");
}

#[cfg(not(target_os = "linux"))]
fn clamp_rcvbuf(_stream: &TcpStream) {}

fn server_with_admin() -> (MoiraServer, SharedState, String) {
    let (mut server, state, registry) = standard_server(moira_common::VClock::new());
    {
        let mut s = state.write();
        let uid = moira_core::queries::testutil::add_test_user(&mut s, "ops", 1);
        s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
            .unwrap();
        let root = Caller::root("reactor-test");
        for i in 0..100 {
            registry
                .execute(
                    &mut s,
                    &root,
                    "add_machine",
                    &[format!("ADV{i}.MIT.EDU"), "VAX".into()],
                )
                .unwrap();
        }
    }
    let addr = server.listen_tcp("127.0.0.1:0").unwrap().to_string();
    (server, state, addr)
}

/// Polls until the server has torn the connection down, then asserts the
/// client registry and the lock manager hold nothing.
fn assert_spotless(server: &mut MoiraServer, state: &SharedState) {
    for _ in 0..10_000 {
        server.poll_with_timeout(Some(TICK));
        if server.connection_count() == 0 {
            break;
        }
    }
    assert_eq!(server.connection_count(), 0, "connection not reaped");
    let snap = server.obs().snapshot();
    assert_eq!(snap.gauge("server.connections.open"), 0);
    let s = state.read();
    assert!(s.clients.is_empty(), "client registry not cleaned");
    assert!(s.locks.is_idle(), "lock manager left non-idle");
}

#[test]
fn slow_loris_byte_dribble_is_assembled_and_answered() {
    let (mut server, state, addr) = server_with_admin();
    let mut client = RawClient::connect(&addr);

    let payload = Request::new(MajorRequest::Noop, &[]).encode();
    let mut bytes = (payload.len() as u32).to_be_bytes().to_vec();
    bytes.extend_from_slice(&payload);

    // One byte per readiness event: each write wakes the reactor, the
    // server accumulates the partial frame and must neither answer early
    // nor give up on the connection.
    let (last, dribble) = bytes.split_last().unwrap();
    for b in dribble {
        client.stream.write_all(&[*b]).unwrap();
        server.poll_with_timeout(Some(TICK));
        server.poll_with_timeout(Some(TICK));
        assert_eq!(server.connection_count(), 1, "loris must not be dropped");
        assert!(
            client.try_frame().is_none(),
            "no reply before the frame completes"
        );
    }
    client.stream.write_all(&[*last]).unwrap();
    let reply = client.pump_frame(&mut server);
    assert_eq!(reply.code, 0, "the dribbled noop is served normally");

    drop(client);
    assert_spotless(&mut server, &state);
}

#[test]
fn mid_frame_disconnect_leaves_no_residue() {
    let (mut server, state, addr) = server_with_admin();

    // An authenticated session first, so teardown has real registry and
    // lock-manager state to clean, not just a blank connection.
    let mut client = RawClient::connect(&addr);
    client.send(&Request::new(MajorRequest::Auth, &["ops", "loris"]));
    let reply = client.pump_frame(&mut server);
    assert_eq!(reply.code, 0, "auth");

    // A header promising 64 bytes, 7 delivered, then a vanished peer.
    client.stream.write_all(&64u32.to_be_bytes()).unwrap();
    client.stream.write_all(b"partial").unwrap();
    for _ in 0..20 {
        server.poll_with_timeout(Some(TICK));
    }
    assert_eq!(server.connection_count(), 1, "partial frame keeps waiting");
    drop(client);

    assert_spotless(&mut server, &state);
    let snap = server.obs().snapshot();
    assert_eq!(snap.counter("server.connections.accepted"), 1);
    assert_eq!(snap.counter("server.connections.closed"), 1);
}

#[test]
fn hostile_frame_header_poisons_only_that_connection() {
    let (mut server, state, addr) = server_with_admin();
    let mut evil = RawClient::connect(&addr);
    let mut good = RawClient::connect(&addr);

    // The hostile header (2 GiB) must kill evil's connection without the
    // inbox ever growing toward it — and without touching good's session.
    evil.stream.write_all(&(2u32 << 30).to_be_bytes()).unwrap();
    for _ in 0..10_000 {
        server.poll_with_timeout(Some(TICK));
        if server.connection_count() == 1 {
            break;
        }
    }
    assert_eq!(server.connection_count(), 1, "evil reaped, good kept");

    good.send(&Request::new(MajorRequest::Noop, &[]));
    let reply = good.pump_frame(&mut server);
    assert_eq!(reply.code, 0, "the innocent neighbor is unaffected");

    drop(good);
    drop(evil);
    assert_spotless(&mut server, &state);
}

#[test]
fn never_draining_reader_is_paused_with_bounded_memory() {
    let (mut server, state, addr) = server_with_admin();
    server.set_write_cap(2048);

    let mut client = RawClient::connect(&addr);
    clamp_rcvbuf(&client.stream);
    client.send(&Request::new(MajorRequest::Auth, &["ops", "greedy"]));
    let reply = client.pump_frame(&mut server);
    assert_eq!(reply.code, 0, "auth");

    // Wave 1: each query streams 100 tuples (~15 KiB of replies); the
    // client reads nothing, so once the socket buffers fill the outbox
    // overruns the cap, backpressure engages, and the connection
    // survives. The volume is sized to defeat kernel buffering: even
    // with the client's receive buffer clamped, the server-side send
    // buffer autotunes up to tcp_wmem's ~4 MiB ceiling and silently
    // absorbs that much reply traffic before write() ever says WouldBlock.
    const WAVE: usize = 1000;
    let query = Request::new(MajorRequest::Query, &["get_machine", "ADV*"]);
    for _ in 0..WAVE {
        client.send(&query);
    }
    let mut q1 = 0usize;
    for _ in 0..10_000 {
        server.poll_with_timeout(Some(TICK));
        q1 = server
            .connection_queued_bytes()
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        let engaged = server
            .obs()
            .snapshot()
            .counter("server.backpressure.engaged");
        if engaged >= 1 && q1 > 2048 {
            break;
        }
    }
    assert!(q1 > 2048, "outbox passed the cap ({q1} bytes)");
    assert!(
        server
            .obs()
            .snapshot()
            .counter("server.backpressure.engaged")
            >= 1,
        "pause transition counted"
    );
    assert_eq!(server.connection_count(), 1, "slow reader stays connected");

    // Wave 2: a paused connection is never read, so nothing it sends can
    // grow the outbox — the bounded-memory contract under a peer that
    // keeps pushing while refusing to drain. (The kernel may still accept
    // a few queued bytes as its buffers autotune, so the bound is
    // "cannot grow", not "frozen exactly".)
    for _ in 0..WAVE {
        client.send(&query);
    }
    for _ in 0..50 {
        server.poll_with_timeout(Some(TICK));
    }
    let q2 = server
        .connection_queued_bytes()
        .iter()
        .copied()
        .max()
        .unwrap_or(0);
    assert!(q2 <= q1, "paused connection's outbox grew ({q1} -> {q2})");

    // The reader finally drains: every queued query is answered (each
    // yields 100 tuples + the closing status), the outbox empties, and
    // the session still works afterwards.
    let expected = 2 * WAVE * 101;
    let mut frames = 0usize;
    for _ in 0..4_000_000 {
        if client.try_frame().is_some() {
            frames += 1;
            if frames == expected {
                break;
            }
        } else {
            server.poll_with_timeout(Some(TICK));
        }
    }
    assert_eq!(frames, expected, "entire backlog answered after resume");
    for _ in 0..100 {
        server.poll_with_timeout(Some(TICK));
        if server.connection_queued_bytes().iter().all(|&q| q == 0) {
            break;
        }
    }
    assert!(
        server.connection_queued_bytes().iter().all(|&q| q == 0),
        "outbox drained after resume"
    );
    client.send(&Request::new(MajorRequest::Noop, &[]));
    assert_eq!(client.pump_frame(&mut server).code, 0, "session survives");

    drop(client);
    assert_spotless(&mut server, &state);
}
