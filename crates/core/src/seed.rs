//! Bootstrap contents of a fresh Moira database: type-checking aliases,
//! server values, the bootstrap lists, and the CAPACLS capability table.

use moira_db::Value;

use crate::registry::{AccessRule, Registry};
use crate::state::MoiraState;

/// Default new-user quota in quota units (`def_quota` in VALUES).
pub const DEFAULT_QUOTA: i64 = 300;

/// Type-checking alias entries: `(name, TYPE, legal value)` per §6 ALIAS.
const TYPE_ALIASES: &[(&str, &str)] = &[
    ("class", "1988"),
    ("class", "1989"),
    ("class", "1990"),
    ("class", "1991"),
    ("class", "1992"),
    ("class", "G"),
    ("class", "STAFF"),
    ("class", "FACULTY"),
    ("class", "OTHER"),
    ("class", "TEST"),
    ("mach_type", "VAX"),
    ("mach_type", "RT"),
    ("service", "UNIQUE"),
    ("service", "REPLICAT"),
    ("lockertype", "HOMEDIR"),
    ("lockertype", "PROJECT"),
    ("lockertype", "COURSE"),
    ("lockertype", "SYSTEM"),
    ("lockertype", "OTHER"),
    ("pobox", "POP"),
    ("pobox", "SMTP"),
    ("pobox", "NONE"),
    ("protocol", "TCP"),
    ("protocol", "UDP"),
    ("filesys", "NFS"),
    ("filesys", "RVD"),
    ("filesys", "ERR"),
    ("slabel", "usrlib"),
    ("slabel", "syslib"),
    ("slabel", "zephyr"),
    ("slabel", "lpr"),
    ("ace_type", "USER"),
    ("ace_type", "LIST"),
    ("ace_type", "NONE"),
    ("member", "USER"),
    ("member", "LIST"),
    ("member", "STRING"),
    ("alias", "TYPE"),
    ("alias", "PRINTER"),
    ("alias", "SERVICE"),
    ("alias", "FILESYS"),
    ("alias", "TYPEDATA"),
    ("boolean", "TRUE"),
    ("boolean", "FALSE"),
    ("boolean", "DONTCARE"),
];

/// Type translations: what kind of datum accompanies each pobox type.
const TYPEDATA_ALIASES: &[(&str, &str)] =
    &[("POP", "machine"), ("SMTP", "string"), ("NONE", "none")];

/// Populates aliases, values, and the bootstrap lists.
pub fn seed(state: &mut MoiraState) {
    for &(name, trans) in TYPE_ALIASES {
        state
            .db
            .append("alias", vec![name.into(), "TYPE".into(), trans.into()])
            .expect("seed alias");
    }
    for &(name, trans) in TYPEDATA_ALIASES {
        state
            .db
            .append("alias", vec![name.into(), "TYPEDATA".into(), trans.into()])
            .expect("seed typedata");
    }
    state.set_value("dcm_enable", 1);
    state.set_value("def_quota", DEFAULT_QUOTA);

    for (name, list_id, desc) in [
        ("everybody", 1i64, "All authenticated users"),
        ("moira-admins", 2, "Moira database administrators"),
        ("dbadmin", 3, "Database maintenance staff"),
    ] {
        state
            .db
            .append(
                "list",
                vec![
                    name.into(),
                    list_id.into(),
                    true.into(),
                    false.into(),
                    false.into(),
                    false.into(),
                    false.into(),
                    Value::Int(-1),
                    desc.into(),
                    "LIST".into(),
                    2.into(), // moira-admins administers the bootstrap lists
                    state.now().into(),
                    "seed".into(),
                    "seed".into(),
                ],
            )
            .expect("seed list");
    }
    state.set_value("list_id", 4);
}

/// Populates CAPACLS with one capability row per registered query, plus the
/// `trigger_dcm` pseudo-query (§5.3): public retrieves are tied to
/// `everybody`, everything else to `moira-admins`.
pub fn seed_capacls(state: &mut MoiraState, registry: &Registry) {
    let everybody = 1i64;
    let admins = 2i64;
    for handle in registry.handles() {
        let list_id = match handle.access {
            AccessRule::Public => everybody,
            _ => admins,
        };
        state
            .db
            .append(
                "capacls",
                vec![handle.name.into(), handle.shortname.into(), list_id.into()],
            )
            .expect("seed capacl");
    }
    state
        .db
        .append(
            "capacls",
            vec!["trigger_dcm".into(), "tdcm".into(), admins.into()],
        )
        .expect("seed tdcm capacl");
}

#[cfg(test)]
mod tests {
    use super::*;
    use moira_common::VClock;
    use moira_db::Pred;

    #[test]
    fn seeded_aliases_present() {
        let s = MoiraState::new(VClock::new());
        let t = s.db.table("alias");
        assert!(!t
            .select(&Pred::Eq("name", "pobox".into()).and(Pred::Eq("trans", "POP".into())))
            .is_empty());
        assert!(!t
            .select(&Pred::Eq("name", "POP".into()).and(Pred::Eq("type", "TYPEDATA".into())))
            .is_empty());
    }

    #[test]
    fn bootstrap_lists_exist() {
        let s = MoiraState::new(VClock::new());
        for name in ["everybody", "moira-admins", "dbadmin"] {
            assert!(
                s.db.table("list")
                    .select_one(&Pred::Eq("name", name.into()))
                    .is_some(),
                "{name}"
            );
        }
    }

    #[test]
    fn capacls_cover_every_query() {
        let mut s = MoiraState::new(VClock::new());
        let r = Registry::standard();
        seed_capacls(&mut s, &r);
        // One row per handle plus trigger_dcm.
        assert_eq!(s.db.table("capacls").len(), r.len() + 1);
        assert!(s
            .db
            .table("capacls")
            .select_one(&Pred::Eq("capability", "trigger_dcm".into()))
            .is_some());
    }
}
