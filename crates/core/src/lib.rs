#![warn(missing_docs)]

//! The Moira server — the paper's primary contribution.
//!
//! Moira provides "a single point of contact for administrative changes
//! that affect more than one Athena service" (§2). This crate implements
//! the server side of that contract:
//!
//! - [`schema`] — the 21 relations of §6 (USERS through TBLSTATS).
//! - [`seed`] — the initial aliases, values, capability ACLs and bootstrap
//!   lists a fresh database needs.
//! - [`state`] — [`state::MoiraState`]: database, journal, lock manager,
//!   access cache, connected-client registry.
//! - [`ids`] — ID allocation from the `values` relation's hints.
//! - [`ace`] — access control entities (USER / LIST / NONE) and recursive
//!   list-membership resolution.
//! - [`access`] — per-query ACL checks via the CAPACLS relation, with the
//!   access cache §5.5 anticipates ("some form of access caching will
//!   eventually be worked into the server").
//! - [`registry`] — the query-handle catalog: every predefined query of §7,
//!   with argument signatures, validation, and access rules.
//! - [`queries`] — the handlers themselves, one module per §7 sub-section.
//! - [`reactor`] — readiness event collection over the `polling` shim
//!   (epoll/kqueue/poll(2)): the connection tier's single blocking point.
//! - [`server`] — the single-process, non-blocking connection loop
//!   dispatching Noop / Auth / Query / Access / Trigger_DCM (§5.3–§5.4).
//! - [`userreg`] — the registration server of §5.10 (verify_user,
//!   grab_login, set_password) with its encrypted-ID authenticator scheme.

//! - [`recovery`] — durable boot: snapshot load + WAL replay that
//!   preserves the database epoch and per-row generations across crashes.

pub mod access;
pub mod ace;
pub mod ids;
pub mod queries;
pub mod reactor;
pub mod recovery;
pub mod registry;
pub mod schema;
pub mod seed;
pub mod server;
pub mod state;
pub mod userreg;

pub use reactor::Waker;
pub use recovery::{boot_durable, BootReport};
pub use registry::{QueryHandle, QueryKind, Registry};
pub use server::MoiraServer;
pub use state::{Caller, MoiraState};
