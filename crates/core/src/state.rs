//! Server state: database, journal, locks, access cache, connected clients.

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use moira_common::clock::VClock;
use moira_common::lockorder::{order_mode, OrderMode};
use moira_db::journal::Journal;
use moira_db::lock::LockManager;
use moira_db::storage::{NullStorage, Storage};
use moira_db::Database;
use parking_lot::RwLock;

use crate::access::AccessCache;
use crate::schema;
use crate::seed;

/// The shared handle every component holds on the server state.
///
/// A reader-writer lock, not a mutex: the read tier of the query path
/// dispatches retrieves concurrently under shared guards while mutations
/// serialize under the exclusive guard.
///
/// The handle is a struct (not a bare `Arc<RwLock<..>>`) so acquisition
/// can feed the runtime lock-order witness: under `MOIRA_LOCK_ORDER`
/// (default `observe` in debug builds) every `read()`/`write()` checks a
/// thread-local held-set, and a same-thread re-acquisition — a guaranteed
/// self-deadlock under parking_lot's non-reentrant lock — is counted
/// (observe) or panics at the acquisition site (strict) instead of
/// hanging the test run. The static lint proves this for calls it can
/// resolve; the witness covers dynamic dispatch and closures.
#[derive(Clone)]
pub struct SharedState {
    inner: Arc<RwLock<MoiraState>>,
}

/// Same-thread re-acquisitions observed process-wide (observe mode).
static STATE_REENTRIES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// `Arc` addresses of the state locks this thread currently holds.
    static HELD_STATES: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Removes one held-set entry when its guard drops.
struct HeldEntry {
    key: Option<usize>,
}

impl Drop for HeldEntry {
    fn drop(&mut self) {
        if let Some(key) = self.key {
            HELD_STATES.with(|h| {
                let mut held = h.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&k| k == key) {
                    held.swap_remove(pos);
                }
            });
        }
    }
}

/// A shared guard on the state; derefs to [`MoiraState`].
pub struct StateReadGuard<'a> {
    guard: parking_lot::RwLockReadGuard<'a, MoiraState>,
    _held: HeldEntry,
}

impl Deref for StateReadGuard<'_> {
    type Target = MoiraState;
    fn deref(&self) -> &MoiraState {
        &self.guard
    }
}

/// An exclusive guard on the state; derefs to [`MoiraState`].
pub struct StateWriteGuard<'a> {
    guard: parking_lot::RwLockWriteGuard<'a, MoiraState>,
    _held: HeldEntry,
}

impl Deref for StateWriteGuard<'_> {
    type Target = MoiraState;
    fn deref(&self) -> &MoiraState {
        &self.guard
    }
}

impl DerefMut for StateWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut MoiraState {
        &mut self.guard
    }
}

impl SharedState {
    /// Acquires the shared (read) guard, blocking until granted.
    pub fn read(&self) -> StateReadGuard<'_> {
        let held = self.note_acquire(true);
        StateReadGuard {
            guard: self.inner.read(),
            _held: held,
        }
    }

    /// Acquires the exclusive (write) guard, blocking until granted.
    pub fn write(&self) -> StateWriteGuard<'_> {
        let held = self.note_acquire(true);
        StateWriteGuard {
            guard: self.inner.write(),
            _held: held,
        }
    }

    /// Non-blocking shared acquisition.
    pub fn try_read(&self) -> Option<StateReadGuard<'_>> {
        let held = self.note_acquire(false);
        Some(StateReadGuard {
            guard: self.inner.try_read()?,
            _held: held,
        })
    }

    /// Non-blocking exclusive acquisition.
    pub fn try_write(&self) -> Option<StateWriteGuard<'_>> {
        let held = self.note_acquire(false);
        Some(StateWriteGuard {
            guard: self.inner.try_write()?,
            _held: held,
        })
    }

    /// Witness hook, called BEFORE the lock operation so strict mode can
    /// panic at the re-acquisition site rather than hang in it.
    ///
    /// Only *blocking* acquisitions are checked for same-thread reentry:
    /// a `try_*` while the lock is held on this thread cannot deadlock —
    /// it fails and the caller sheds (the read-tier Busy path), so, as
    /// with lockdep and trylocks, it establishes nothing.
    fn note_acquire(&self, blocking: bool) -> HeldEntry {
        let mode = order_mode();
        if mode == OrderMode::Off {
            return HeldEntry { key: None };
        }
        let key = Arc::as_ptr(&self.inner) as usize;
        if blocking {
            let reentrant = HELD_STATES.with(|h| h.borrow().contains(&key));
            if reentrant {
                STATE_REENTRIES.fetch_add(1, Ordering::Relaxed);
                if mode == OrderMode::Strict {
                    panic!(
                        "lock-order violation: same-thread re-acquisition of the state lock — \
                         a guaranteed self-deadlock under the non-reentrant RwLock"
                    );
                }
            }
        }
        HELD_STATES.with(|h| h.borrow_mut().push(key));
        HeldEntry { key: Some(key) }
    }
}

/// Same-thread state re-acquisitions the witness has observed process-wide
/// (always 0 when the witness is off or strict — strict panics instead).
pub fn state_reentries() -> u64 {
    STATE_REENTRIES.load(Ordering::Relaxed)
}

/// Wraps a state in the [`SharedState`] handle.
pub fn shared(state: MoiraState) -> SharedState {
    SharedState {
        inner: Arc::new(RwLock::new(state)),
    }
}

/// The identity on whose behalf a request runs.
///
/// "All requests received after this \[Authenticate\] request should be
/// performed on behalf of the principal identified by the authenticator"
/// (§5.3).
#[derive(Debug, Clone, Default)]
pub struct Caller {
    /// Authenticated Kerberos principal; `None` before authentication.
    pub principal: Option<String>,
    /// Name of the program acting on behalf of the user (`mr_auth`'s
    /// `clientname`), recorded as `modwith`.
    pub client_name: String,
}

impl Caller {
    /// An authenticated caller.
    pub fn new(principal: &str, client_name: &str) -> Caller {
        Caller {
            principal: Some(principal.to_owned()),
            client_name: client_name.to_owned(),
        }
    }

    /// An unauthenticated caller (read-only queries only).
    pub fn anonymous(client_name: &str) -> Caller {
        Caller {
            principal: None,
            client_name: client_name.to_owned(),
        }
    }

    /// The privileged identity the DCM and backup tools use ("connects to
    /// the database and authenticates as **root**", §5.7.1).
    pub fn root(client_name: &str) -> Caller {
        Caller::new("root", client_name)
    }

    /// The principal, or `"???"` for anonymous callers — the string written
    /// into `modby`.
    pub fn who(&self) -> &str {
        self.principal.as_deref().unwrap_or("???")
    }

    /// True for the all-powerful principals that bypass ACLs (`root`, used
    /// by the DCM, and the registration server's identity).
    pub fn is_privileged(&self) -> bool {
        matches!(
            self.principal.as_deref(),
            Some("root") | Some("sms") | Some("register")
        )
    }
}

/// One connected client, for the `_list_users` introspection query.
#[derive(Debug, Clone)]
pub struct ClientInfo {
    /// Authenticated principal, if any.
    pub principal: Option<String>,
    /// Peer host (address or `"local"`).
    pub host: String,
    /// Peer port number (0 for in-process connections).
    pub port: u16,
    /// Unix time of connection.
    pub connect_time: i64,
    /// Monotonic client number.
    pub client_number: u64,
}

/// The entire mutable state of the Moira server.
pub struct MoiraState {
    /// The database of §6.
    pub db: Database,
    /// Journal of successful side-effecting queries (§5.2.2).
    pub journal: Journal,
    /// Service/host lock manager used by the DCM (§5.7.1).
    pub locks: LockManager,
    /// The §5.5 access cache.
    pub access_cache: AccessCache,
    /// Connected clients (maintained by the server loop).
    pub clients: Vec<ClientInfo>,
    /// Set by a `Trigger_DCM` request; drained by whoever runs DCM cycles.
    pub dcm_trigger: bool,
    /// The instrument registry every layer records into (server dispatch,
    /// lock manager, DCM stages) and `get_server_statistics` snapshots.
    pub obs: moira_obs::Registry,
    /// The durable backend committed mutations are appended to. Defaults
    /// to [`NullStorage`] (the historical in-memory server); the durable
    /// boot path swaps in a `DurableEngine`.
    pub storage: Box<dyn Storage>,
    next_client_no: u64,
}

impl MoiraState {
    /// Creates a fully seeded server state on the given clock.
    pub fn new(clock: VClock) -> MoiraState {
        let mut db = Database::new(clock);
        schema::create_all_tables(&mut db);
        let mut state = MoiraState::bare(db);
        seed::seed(&mut state);
        state
    }

    /// Assembles a state around an already-recovered database and journal
    /// (schema created, rows imported, epoch preserved). No seeding: the
    /// snapshot and WAL replay are the only sources of truth.
    pub fn recovered(db: Database, journal: Journal) -> MoiraState {
        MoiraState {
            journal,
            ..MoiraState::bare(db)
        }
    }

    fn bare(mut db: Database) -> MoiraState {
        let obs = moira_obs::Registry::new();
        db.set_obs(&obs);
        MoiraState {
            db,
            journal: Journal::new(),
            locks: LockManager::with_obs(obs.clone()),
            access_cache: AccessCache::new(),
            clients: Vec::new(),
            dcm_trigger: false,
            obs,
            storage: Box::new(NullStorage),
            next_client_no: 0,
        }
    }

    /// Current time from the database clock.
    pub fn now(&self) -> i64 {
        self.db.now()
    }

    /// Cuts a mutation-generation cursor over `tables`. Callers holding the
    /// PR-2 shared read lock get a consistent snapshot: the cursor and any
    /// `changed_since` reads taken under the same guard describe the same
    /// database version, since writers need the exclusive lock to mutate.
    pub fn generation_cursor(&self, tables: &[&'static str]) -> moira_db::GenCursor {
        self.db.cursor(tables)
    }

    /// Allocates the next client number for `_list_users`.
    pub fn next_client_number(&mut self) -> u64 {
        self.next_client_no += 1;
        self.next_client_no
    }

    /// Reads an integer from the `values` relation (§6 VALUES).
    pub fn get_value(&self, name: &str) -> Option<i64> {
        let t = self.db.table("values");
        t.select_one(&moira_db::Pred::Eq("name", name.into()))
            .map(|id| t.cell(id, "value").as_int())
    }

    /// Writes an integer into the `values` relation, creating it if absent.
    pub fn set_value(&mut self, name: &str, value: i64) {
        let existing = self
            .db
            .table("values")
            .select_one(&moira_db::Pred::Eq("name", name.into()));
        match existing {
            Some(id) => self
                .db
                .update("values", id, &[("value", value.into())])
                .expect("values update"),
            None => {
                self.db
                    .append("values", vec![name.into(), value.into()])
                    .expect("values append");
            }
        }
    }
}

// The read tier hands shared references to worker threads; losing Send +
// Sync on MoiraState would silently serialize the server again, so make it
// a compile error instead.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MoiraState>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_seeded() {
        let s = MoiraState::new(VClock::new());
        assert!(s.get_value("dcm_enable").is_some());
        assert!(s.db.table("alias").len() > 10);
    }

    #[test]
    fn values_round_trip() {
        let mut s = MoiraState::new(VClock::new());
        assert_eq!(s.get_value("bogus"), None);
        s.set_value("bogus", 7);
        assert_eq!(s.get_value("bogus"), Some(7));
        s.set_value("bogus", 8);
        assert_eq!(s.get_value("bogus"), Some(8));
    }

    #[test]
    fn caller_identities() {
        assert_eq!(Caller::anonymous("x").who(), "???");
        assert_eq!(Caller::new("babette", "chsh").who(), "babette");
        assert!(Caller::root("dcm").is_privileged());
        assert!(!Caller::new("babette", "chsh").is_privileged());
    }

    #[test]
    fn client_numbers_increment() {
        let mut s = MoiraState::new(VClock::new());
        assert_eq!(s.next_client_number(), 1);
        assert_eq!(s.next_client_number(), 2);
    }

    #[test]
    fn witness_counts_same_thread_reentry_in_observe_mode() {
        // The mode is process-wide (read once from MOIRA_LOCK_ORDER), so
        // this test only has something to say in observe mode: strict
        // would panic on the nested read and off records nothing.
        if order_mode() != OrderMode::Observe {
            return;
        }
        let s = shared(MoiraState::new(VClock::new()));
        let before = state_reentries();
        let outer = s.read();
        let inner = s.read();
        drop(inner);
        drop(outer);
        assert_eq!(state_reentries() - before, 1);
        // try_* acquisitions under a held guard shed instead of deadlock,
        // so they are exempt from the reentry count (trylock rule).
        let held = s.write();
        assert!(s.try_write().is_none());
        drop(held);
        assert_eq!(state_reentries() - before, 1);
    }
}
