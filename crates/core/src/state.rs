//! Server state: database, journal, locks, access cache, connected clients.

use std::sync::Arc;

use moira_common::clock::VClock;
use moira_db::journal::Journal;
use moira_db::lock::LockManager;
use moira_db::storage::{NullStorage, Storage};
use moira_db::Database;
use parking_lot::RwLock;

use crate::access::AccessCache;
use crate::schema;
use crate::seed;

/// The shared handle every component holds on the server state.
///
/// A reader-writer lock, not a mutex: the read tier of the query path
/// dispatches retrieves concurrently under shared guards while mutations
/// serialize under the exclusive guard.
pub type SharedState = Arc<RwLock<MoiraState>>;

/// Wraps a state in the [`SharedState`] handle.
pub fn shared(state: MoiraState) -> SharedState {
    Arc::new(RwLock::new(state))
}

/// The identity on whose behalf a request runs.
///
/// "All requests received after this \[Authenticate\] request should be
/// performed on behalf of the principal identified by the authenticator"
/// (§5.3).
#[derive(Debug, Clone, Default)]
pub struct Caller {
    /// Authenticated Kerberos principal; `None` before authentication.
    pub principal: Option<String>,
    /// Name of the program acting on behalf of the user (`mr_auth`'s
    /// `clientname`), recorded as `modwith`.
    pub client_name: String,
}

impl Caller {
    /// An authenticated caller.
    pub fn new(principal: &str, client_name: &str) -> Caller {
        Caller {
            principal: Some(principal.to_owned()),
            client_name: client_name.to_owned(),
        }
    }

    /// An unauthenticated caller (read-only queries only).
    pub fn anonymous(client_name: &str) -> Caller {
        Caller {
            principal: None,
            client_name: client_name.to_owned(),
        }
    }

    /// The privileged identity the DCM and backup tools use ("connects to
    /// the database and authenticates as **root**", §5.7.1).
    pub fn root(client_name: &str) -> Caller {
        Caller::new("root", client_name)
    }

    /// The principal, or `"???"` for anonymous callers — the string written
    /// into `modby`.
    pub fn who(&self) -> &str {
        self.principal.as_deref().unwrap_or("???")
    }

    /// True for the all-powerful principals that bypass ACLs (`root`, used
    /// by the DCM, and the registration server's identity).
    pub fn is_privileged(&self) -> bool {
        matches!(
            self.principal.as_deref(),
            Some("root") | Some("sms") | Some("register")
        )
    }
}

/// One connected client, for the `_list_users` introspection query.
#[derive(Debug, Clone)]
pub struct ClientInfo {
    /// Authenticated principal, if any.
    pub principal: Option<String>,
    /// Peer host (address or `"local"`).
    pub host: String,
    /// Peer port number (0 for in-process connections).
    pub port: u16,
    /// Unix time of connection.
    pub connect_time: i64,
    /// Monotonic client number.
    pub client_number: u64,
}

/// The entire mutable state of the Moira server.
pub struct MoiraState {
    /// The database of §6.
    pub db: Database,
    /// Journal of successful side-effecting queries (§5.2.2).
    pub journal: Journal,
    /// Service/host lock manager used by the DCM (§5.7.1).
    pub locks: LockManager,
    /// The §5.5 access cache.
    pub access_cache: AccessCache,
    /// Connected clients (maintained by the server loop).
    pub clients: Vec<ClientInfo>,
    /// Set by a `Trigger_DCM` request; drained by whoever runs DCM cycles.
    pub dcm_trigger: bool,
    /// The instrument registry every layer records into (server dispatch,
    /// lock manager, DCM stages) and `get_server_statistics` snapshots.
    pub obs: moira_obs::Registry,
    /// The durable backend committed mutations are appended to. Defaults
    /// to [`NullStorage`] (the historical in-memory server); the durable
    /// boot path swaps in a `DurableEngine`.
    pub storage: Box<dyn Storage>,
    next_client_no: u64,
}

impl MoiraState {
    /// Creates a fully seeded server state on the given clock.
    pub fn new(clock: VClock) -> MoiraState {
        let mut db = Database::new(clock);
        schema::create_all_tables(&mut db);
        let mut state = MoiraState::bare(db);
        seed::seed(&mut state);
        state
    }

    /// Assembles a state around an already-recovered database and journal
    /// (schema created, rows imported, epoch preserved). No seeding: the
    /// snapshot and WAL replay are the only sources of truth.
    pub fn recovered(db: Database, journal: Journal) -> MoiraState {
        MoiraState {
            journal,
            ..MoiraState::bare(db)
        }
    }

    fn bare(mut db: Database) -> MoiraState {
        let obs = moira_obs::Registry::new();
        db.set_obs(&obs);
        MoiraState {
            db,
            journal: Journal::new(),
            locks: LockManager::with_obs(obs.clone()),
            access_cache: AccessCache::new(),
            clients: Vec::new(),
            dcm_trigger: false,
            obs,
            storage: Box::new(NullStorage),
            next_client_no: 0,
        }
    }

    /// Current time from the database clock.
    pub fn now(&self) -> i64 {
        self.db.now()
    }

    /// Cuts a mutation-generation cursor over `tables`. Callers holding the
    /// PR-2 shared read lock get a consistent snapshot: the cursor and any
    /// `changed_since` reads taken under the same guard describe the same
    /// database version, since writers need the exclusive lock to mutate.
    pub fn generation_cursor(&self, tables: &[&'static str]) -> moira_db::GenCursor {
        self.db.cursor(tables)
    }

    /// Allocates the next client number for `_list_users`.
    pub fn next_client_number(&mut self) -> u64 {
        self.next_client_no += 1;
        self.next_client_no
    }

    /// Reads an integer from the `values` relation (§6 VALUES).
    pub fn get_value(&self, name: &str) -> Option<i64> {
        let t = self.db.table("values");
        t.select_one(&moira_db::Pred::Eq("name", name.into()))
            .map(|id| t.cell(id, "value").as_int())
    }

    /// Writes an integer into the `values` relation, creating it if absent.
    pub fn set_value(&mut self, name: &str, value: i64) {
        let existing = self
            .db
            .table("values")
            .select_one(&moira_db::Pred::Eq("name", name.into()));
        match existing {
            Some(id) => self
                .db
                .update("values", id, &[("value", value.into())])
                .expect("values update"),
            None => {
                self.db
                    .append("values", vec![name.into(), value.into()])
                    .expect("values append");
            }
        }
    }
}

// The read tier hands shared references to worker threads; losing Send +
// Sync on MoiraState would silently serialize the server again, so make it
// a compile error instead.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MoiraState>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_seeded() {
        let s = MoiraState::new(VClock::new());
        assert!(s.get_value("dcm_enable").is_some());
        assert!(s.db.table("alias").len() > 10);
    }

    #[test]
    fn values_round_trip() {
        let mut s = MoiraState::new(VClock::new());
        assert_eq!(s.get_value("bogus"), None);
        s.set_value("bogus", 7);
        assert_eq!(s.get_value("bogus"), Some(7));
        s.set_value("bogus", 8);
        assert_eq!(s.get_value("bogus"), Some(8));
    }

    #[test]
    fn caller_identities() {
        assert_eq!(Caller::anonymous("x").who(), "???");
        assert_eq!(Caller::new("babette", "chsh").who(), "babette");
        assert!(Caller::root("dcm").is_privileged());
        assert!(!Caller::new("babette", "chsh").is_privileged());
    }

    #[test]
    fn client_numbers_increment() {
        let mut s = MoiraState::new(VClock::new());
        assert_eq!(s.next_client_number(), 1);
        assert_eq!(s.next_client_number(), 2);
    }
}
