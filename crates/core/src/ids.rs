//! ID allocation from the `values` relation.
//!
//! §6 (VALUES): "These are hints for the next ID number to assign…". Each
//! object class keeps a `<name>` counter; allocation reads the hint, skips
//! over any ids already in use (hints are only hints), assigns, and stores
//! the next hint back.

use moira_common::errors::{MrError, MrResult};
use moira_db::Pred;

use crate::state::MoiraState;

/// Where a given ID space is consumed, for collision checking.
struct IdSpace {
    value_name: &'static str,
    table: &'static str,
    column: &'static str,
    first: i64,
}

const SPACES: &[IdSpace] = &[
    IdSpace {
        value_name: "users_id",
        table: "users",
        column: "users_id",
        first: 1,
    },
    IdSpace {
        value_name: "uid",
        table: "users",
        column: "uid",
        first: 6500,
    },
    IdSpace {
        value_name: "list_id",
        table: "list",
        column: "list_id",
        first: 1,
    },
    IdSpace {
        value_name: "gid",
        table: "list",
        column: "gid",
        first: 10_900,
    },
    IdSpace {
        value_name: "mach_id",
        table: "machine",
        column: "mach_id",
        first: 1,
    },
    IdSpace {
        value_name: "clu_id",
        table: "cluster",
        column: "clu_id",
        first: 1,
    },
    IdSpace {
        value_name: "filsys_id",
        table: "filesys",
        column: "filsys_id",
        first: 1,
    },
    IdSpace {
        value_name: "nfsphys_id",
        table: "nfsphys",
        column: "nfsphys_id",
        first: 1,
    },
    IdSpace {
        value_name: "string_id",
        table: "strings",
        column: "string_id",
        first: 1,
    },
];

/// Allocates the next unused id in the named space (`users_id`, `uid`,
/// `list_id`, `gid`, `mach_id`, `clu_id`, `filsys_id`, `nfsphys_id`,
/// `string_id`).
///
/// Returns `MR_NO_ID` if the space name is unknown or the hint walks too
/// far without finding a free id.
pub fn alloc_id(state: &mut MoiraState, space: &str) -> MrResult<i64> {
    let sp = SPACES
        .iter()
        .find(|s| s.value_name == space)
        .ok_or(MrError::NoId)?;
    let hint = state.get_value(sp.value_name).unwrap_or(sp.first);
    for candidate in hint..hint + 100_000 {
        let in_use = !state
            .db
            .table(sp.table)
            .select(&Pred::Eq(sp.column, candidate.into()))
            .is_empty();
        if !in_use {
            state.set_value(sp.value_name, candidate + 1);
            return Ok(candidate);
        }
    }
    Err(MrError::NoId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moira_common::VClock;

    #[test]
    fn sequential_allocation() {
        let mut s = MoiraState::new(VClock::new());
        let a = alloc_id(&mut s, "mach_id").unwrap();
        let b = alloc_id(&mut s, "mach_id").unwrap();
        assert_eq!(b, a + 1);
    }

    #[test]
    fn skips_occupied_ids() {
        let mut s = MoiraState::new(VClock::new());
        let next = s.get_value("mach_id").unwrap_or(1);
        // Occupy the next two hints directly.
        for (i, n) in [(next, "A"), (next + 1, "B")] {
            s.db.append(
                "machine",
                vec![
                    n.into(),
                    i.into(),
                    "VAX".into(),
                    0.into(),
                    "t".into(),
                    "t".into(),
                ],
            )
            .unwrap();
        }
        let got = alloc_id(&mut s, "mach_id").unwrap();
        assert_eq!(got, next + 2);
    }

    #[test]
    fn unknown_space_is_no_id() {
        let mut s = MoiraState::new(VClock::new());
        assert_eq!(alloc_id(&mut s, "bogus_id"), Err(MrError::NoId));
    }

    #[test]
    fn uid_space_starts_high() {
        let mut s = MoiraState::new(VClock::new());
        assert!(alloc_id(&mut s, "uid").unwrap() >= 6500);
    }
}
