//! The Moira server loop (§5.4).
//!
//! "The Moira server runs as a single UNIX process on the Moira database
//! machine. It listens for TCP/IP connections on a well known service port,
//! and processes remote procedure call requests on each connection it
//! accepts." The loop is non-blocking: each [`MoiraServer::poll_once`] makes
//! progress on every live connection (reading new requests, sending
//! replies), which is what let the original stay a single process while
//! "reading new RPC requests and sending old replies simultaneously".
//!
//! The expensive database backend is initialized **once**, at server
//! construction — the Athenareg lesson: "starting up a backend process is a
//! rather heavyweight operation, the Moira server will do this only once,
//! at the start up time of the daemon" (benchmarked as experiment E5).

use std::io;
use std::net::TcpListener;
use std::sync::Arc;

use moira_common::errors::MrError;
use moira_krb::ticket::{Authenticator, Ticket, Verifier};
use moira_protocol::transport::{Channel, TcpChannel};
use moira_protocol::wire::{check_version, MajorRequest, Reply, Request};
use parking_lot::Mutex;

use crate::access;
use crate::registry::Registry;
use crate::state::{Caller, ClientInfo, MoiraState};

/// The Moira server's registered service port (a period-appropriate pick
/// for the "well known port (T.B.S.)").
pub const MOIRA_PORT: u16 = 775;

struct Connection {
    chan: Box<dyn Channel>,
    caller: Caller,
    client_number: u64,
}

/// The single-process Moira server.
pub struct MoiraServer {
    state: Arc<Mutex<MoiraState>>,
    registry: Arc<Registry>,
    verifier: Option<Verifier>,
    connections: Vec<Connection>,
    listener: Option<TcpListener>,
    /// When set, at most this many requests are dispatched per poll pass;
    /// excess requests are shed with [`MrError::Busy`] instead of queueing
    /// unboundedly behind the single-process loop.
    overload_limit: Option<usize>,
    /// Requests shed with `Busy` over the server's lifetime.
    shed_requests: u64,
}

impl MoiraServer {
    /// Creates a server over shared state and a query registry.
    ///
    /// With `verifier` set, `Authenticate` requests must carry Kerberos
    /// tickets; without one the server runs in trusted mode (in-process
    /// deployments and tests) where the authenticator is a bare principal
    /// name.
    pub fn new(
        state: Arc<Mutex<MoiraState>>,
        registry: Arc<Registry>,
        verifier: Option<Verifier>,
    ) -> MoiraServer {
        MoiraServer {
            state,
            registry,
            verifier,
            connections: Vec::new(),
            listener: None,
            overload_limit: None,
            shed_requests: 0,
        }
    }

    /// The shared state handle.
    pub fn state(&self) -> Arc<Mutex<MoiraState>> {
        self.state.clone()
    }

    /// Bounds in-flight work: at most `limit` requests are dispatched per
    /// poll pass, and the rest receive [`MrError::Busy`] — a distinct,
    /// retryable status well-behaved clients back off from. `None` removes
    /// the bound.
    pub fn set_overload_limit(&mut self, limit: Option<usize>) {
        self.overload_limit = limit;
    }

    /// Requests shed with `Busy` since the server started.
    pub fn shed_requests(&self) -> u64 {
        self.shed_requests
    }

    /// Attaches an already-connected channel (the in-process transport).
    pub fn attach(&mut self, chan: Box<dyn Channel>, host: &str, port: u16) {
        let mut state = self.state.lock();
        let client_number = state.next_client_number();
        let connect_time = state.now();
        state.clients.push(ClientInfo {
            principal: None,
            host: host.to_owned(),
            port,
            connect_time,
            client_number,
        });
        drop(state);
        self.connections.push(Connection {
            chan,
            caller: Caller::anonymous("unknown"),
            client_number,
        });
    }

    /// Starts listening on a TCP address (pass port 0 for an ephemeral
    /// port); returns the bound address.
    pub fn listen_tcp(&mut self, addr: &str) -> io::Result<std::net::SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        self.listener = Some(listener);
        Ok(bound)
    }

    /// Number of live connections.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    fn accept_pending(&mut self) {
        let mut accepted = Vec::new();
        if let Some(listener) = &self.listener {
            loop {
                match listener.accept() {
                    Ok((stream, peer)) => accepted.push((stream, peer)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        for (stream, peer) in accepted {
            if let Ok(chan) = TcpChannel::new(stream) {
                self.attach(Box::new(chan), &peer.ip().to_string(), peer.port());
            }
        }
    }

    /// One pass of the non-blocking loop: accept connections, then make
    /// progress on every live connection. Returns how many requests were
    /// processed.
    pub fn poll_once(&mut self) -> usize {
        self.accept_pending();
        let mut processed = 0;
        let mut dead = Vec::new();
        for i in 0..self.connections.len() {
            loop {
                let frame = match self.connections[i].chan.try_recv() {
                    Ok(Some(frame)) => frame,
                    Ok(None) => {
                        if self.connections[i].chan.is_closed() {
                            dead.push(i);
                        }
                        break;
                    }
                    Err(_) => {
                        dead.push(i);
                        break;
                    }
                };
                processed += 1;
                let replies = if self.overload_limit.is_some_and(|limit| processed > limit) {
                    // Shed rather than queue: the client hears Busy now
                    // instead of timing out later.
                    self.shed_requests += 1;
                    vec![Reply::status(MrError::Busy.code())]
                } else {
                    self.handle_frame(i, frame)
                };
                let conn = &mut self.connections[i];
                let mut broken = false;
                for reply in replies {
                    if conn.chan.send(reply.encode()).is_err() {
                        broken = true;
                        break;
                    }
                }
                if broken {
                    dead.push(i);
                    break;
                }
            }
        }
        for &i in dead.iter().rev() {
            let conn = self.connections.remove(i);
            let mut state = self.state.lock();
            state
                .clients
                .retain(|c| c.client_number != conn.client_number);
        }
        processed
    }

    /// Polls until `idle_rounds` consecutive passes process nothing.
    pub fn run_until_idle(&mut self, idle_rounds: usize) {
        let mut idle = 0;
        while idle < idle_rounds {
            if self.poll_once() == 0 {
                idle += 1;
            } else {
                idle = 0;
            }
        }
    }

    fn handle_frame(&mut self, conn_index: usize, frame: bytes::Bytes) -> Vec<Reply> {
        let request = match Request::decode(frame) {
            Ok(r) => r,
            Err(e) => return vec![Reply::status(e.code())],
        };
        if let Err(e) = check_version(request.version) {
            return vec![Reply::status(e.code())];
        }
        match request.major {
            MajorRequest::Noop => vec![Reply::status(0)],
            MajorRequest::Auth => vec![self.handle_auth(conn_index, &request)],
            MajorRequest::Query => self.handle_query(conn_index, &request),
            MajorRequest::Access => vec![self.handle_access(conn_index, &request)],
            MajorRequest::TriggerDcm => vec![self.handle_trigger_dcm(conn_index)],
        }
    }

    fn handle_auth(&mut self, conn_index: usize, request: &Request) -> Reply {
        let principal = match (&self.verifier, request.args.len()) {
            // Trusted mode: [principal, client_name].
            (None, 2) => match std::str::from_utf8(&request.args[0]) {
                Ok(p) => p.to_owned(),
                Err(_) => return Reply::status(MrError::BadChar.code()),
            },
            // Kerberos mode: [ticket, authenticator, client_name].
            (Some(verifier), 3) => {
                let ticket = Ticket {
                    sealed: request.args[0].to_vec(),
                };
                let auth = Authenticator {
                    sealed: request.args[1].to_vec(),
                };
                match verifier.verify(&ticket, &auth) {
                    Ok(p) => p,
                    Err(moira_krb::realm::KrbError::Replay) => {
                        return Reply::status(MrError::Replay.code())
                    }
                    Err(_) => return Reply::status(MrError::AuthFailure.code()),
                }
            }
            _ => return Reply::status(MrError::Args.code()),
        };
        let client_name = request
            .args
            .last()
            .and_then(|b| std::str::from_utf8(b).ok())
            .unwrap_or("unknown")
            .to_owned();
        let conn = &mut self.connections[conn_index];
        conn.caller = Caller::new(&principal, &client_name);
        let mut state = self.state.lock();
        let number = conn.client_number;
        if let Some(info) = state.clients.iter_mut().find(|c| c.client_number == number) {
            info.principal = Some(principal);
        }
        Reply::status(0)
    }

    fn handle_query(&mut self, conn_index: usize, request: &Request) -> Vec<Reply> {
        let args = match request.string_args() {
            Ok(a) => a,
            Err(e) => return vec![Reply::status(e.code())],
        };
        if args.is_empty() {
            return vec![Reply::status(MrError::Args.code())];
        }
        let caller = self.connections[conn_index].caller.clone();
        let mut state = self.state.lock();
        match self
            .registry
            .execute(&mut state, &caller, &args[0], &args[1..])
        {
            Ok(tuples) => {
                let mut replies: Vec<Reply> = tuples.iter().map(|t| Reply::tuple(t)).collect();
                replies.push(Reply::status(0));
                replies
            }
            Err(e) => vec![Reply::status(e.code())],
        }
    }

    fn handle_access(&mut self, conn_index: usize, request: &Request) -> Reply {
        let args = match request.string_args() {
            Ok(a) => a,
            Err(e) => return Reply::status(e.code()),
        };
        if args.is_empty() {
            return Reply::status(MrError::Args.code());
        }
        let caller = self.connections[conn_index].caller.clone();
        let mut state = self.state.lock();
        match self
            .registry
            .check_access(&mut state, &caller, &args[0], &args[1..])
        {
            Ok(()) => Reply::status(0),
            Err(e) => Reply::status(e.code()),
        }
    }

    fn handle_trigger_dcm(&mut self, conn_index: usize) -> Reply {
        let caller = self.connections[conn_index].caller.clone();
        let mut state = self.state.lock();
        // "Access checking is done by checking permissions for the
        // pseudo-query trigger_dcm (tdcm)."
        if !access::caller_has_capability(&mut state, &caller, "trigger_dcm") {
            return Reply::status(MrError::Perm.code());
        }
        state.dcm_trigger = true;
        Reply::status(0)
    }
}

/// Builds a ready-to-use server: seeded state, standard registry, CAPACLS
/// populated. Returns the server plus handles on its state and registry.
pub fn standard_server(
    clock: moira_common::VClock,
) -> (MoiraServer, Arc<Mutex<MoiraState>>, Arc<Registry>) {
    let registry = Arc::new(Registry::standard());
    let mut state = MoiraState::new(clock);
    crate::seed::seed_capacls(&mut state, &registry);
    let state = Arc::new(Mutex::new(state));
    let server = MoiraServer::new(state.clone(), registry.clone(), None);
    (server, state, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moira_protocol::transport::{pair, recv_blocking};

    fn send_request(chan: &mut dyn Channel, server: &mut MoiraServer, req: Request) -> Vec<Reply> {
        chan.send(req.encode()).unwrap();
        server.run_until_idle(2);
        let mut replies = Vec::new();
        loop {
            let frame = recv_blocking(chan, 100).expect("reply");
            let reply = Reply::decode(frame).unwrap();
            let done = !reply.is_more_data();
            replies.push(reply);
            if done {
                break;
            }
        }
        replies
    }

    fn setup() -> (MoiraServer, moira_protocol::transport::InProcChannel) {
        let (mut server, state, _) = standard_server(moira_common::VClock::new());
        {
            let mut s = state.lock();
            let uid = crate::queries::testutil::add_test_user(&mut s, "ops", 1);
            s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
                .unwrap();
        }
        let (client, server_end) = pair();
        server.attach(Box::new(server_end), "local", 0);
        (server, client)
    }

    #[test]
    fn noop_round_trip() {
        let (mut server, mut client) = setup();
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Noop, &[]),
        );
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].code, 0);
    }

    #[test]
    fn query_streams_tuples() {
        let (mut server, mut client) = setup();
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        for name in ["A", "B", "C"] {
            let replies = send_request(
                &mut client,
                &mut server,
                Request::new(MajorRequest::Query, &["add_machine", name, "VAX"]),
            );
            assert_eq!(replies.last().unwrap().code, 0, "{name}");
        }
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["get_machine", "*"]),
        );
        // Three MR_MORE_DATA tuples plus the final success.
        assert_eq!(replies.len(), 4);
        assert!(replies[0].is_more_data());
        assert_eq!(replies[3].code, 0);
        let names: Vec<String> = replies[..3]
            .iter()
            .map(|r| r.string_fields().unwrap()[0].clone())
            .collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn unauthenticated_mutation_denied() {
        let (mut server, mut client) = setup();
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["add_machine", "X", "VAX"]),
        );
        assert_eq!(replies[0].code, MrError::Perm.code());
    }

    #[test]
    fn access_precheck_matches_execution() {
        let (mut server, mut client) = setup();
        // Denied before auth…
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Access, &["add_machine", "X", "VAX"]),
        );
        assert_eq!(replies[0].code, MrError::Perm.code());
        // …allowed after.
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Access, &["add_machine", "X", "VAX"]),
        );
        assert_eq!(replies[0].code, 0);
        // And the access check did not execute the query.
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["get_machine", "X"]),
        );
        assert_eq!(replies[0].code, MrError::NoMatch.code());
    }

    #[test]
    fn trigger_dcm_requires_capability() {
        let (mut server, mut client) = setup();
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::TriggerDcm, &[]),
        );
        assert_eq!(replies[0].code, MrError::Perm.code());
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::TriggerDcm, &[]),
        );
        assert_eq!(replies[0].code, 0);
        assert!(server.state().lock().dcm_trigger);
    }

    #[test]
    fn overload_sheds_excess_requests_with_busy() {
        let (mut server, mut client) = setup();
        server.set_overload_limit(Some(1));
        // Two requests land before the loop runs: only one is dispatched,
        // the other is shed with a distinct, retryable Busy status.
        let req = Request::new(MajorRequest::Noop, &[]);
        client.send(req.encode()).unwrap();
        client.send(req.encode()).unwrap();
        server.run_until_idle(2);
        let first = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        let second = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        assert_eq!(first.code, 0);
        assert_eq!(second.code, MrError::Busy.code());
        assert_eq!(server.shed_requests(), 1);
        // The resend lands in a calmer pass and succeeds.
        client.send(req.encode()).unwrap();
        server.run_until_idle(2);
        let retried = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        assert_eq!(retried.code, 0);
        // Removing the limit restores unbounded dispatch.
        server.set_overload_limit(None);
        client.send(req.encode()).unwrap();
        client.send(req.encode()).unwrap();
        server.run_until_idle(2);
        for _ in 0..2 {
            let r = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
            assert_eq!(r.code, 0);
        }
        assert_eq!(server.shed_requests(), 1, "no further sheds");
    }

    #[test]
    fn version_skew_rejected() {
        let (mut server, mut client) = setup();
        let mut req = Request::new(MajorRequest::Noop, &[]);
        req.version = 99;
        let replies = send_request(&mut client, &mut server, req);
        assert_eq!(replies[0].code, MrError::VersionHigh.code());
    }

    #[test]
    fn list_users_sees_connections() {
        let (mut server, mut client) = setup();
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["_list_users"]),
        );
        assert_eq!(replies.len(), 2);
        let fields = replies[0].string_fields().unwrap();
        assert_eq!(fields[0], "ops");
    }

    #[test]
    fn disconnect_cleans_up() {
        let (mut server, client) = setup();
        assert_eq!(server.connection_count(), 1);
        drop(client);
        server.run_until_idle(3);
        assert_eq!(server.connection_count(), 0);
        assert!(server.state().lock().clients.is_empty());
    }

    #[test]
    fn tcp_end_to_end() {
        let (mut server, state, _) = standard_server(moira_common::VClock::new());
        {
            let mut s = state.lock();
            let uid = crate::queries::testutil::add_test_user(&mut s, "ops", 1);
            s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
                .unwrap();
        }
        let addr = server.listen_tcp("127.0.0.1:0").unwrap();
        let handle = std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(&addr.to_string()).unwrap();
            chan.send(Request::new(MajorRequest::Auth, &["ops", "tcp-test"]).encode())
                .unwrap();
            let r = Reply::decode(recv_blocking(&mut chan, 2_000_000).unwrap()).unwrap();
            assert_eq!(r.code, 0);
            chan.send(Request::new(MajorRequest::Query, &["add_machine", "TCPBOX", "RT"]).encode())
                .unwrap();
            let r = Reply::decode(recv_blocking(&mut chan, 2_000_000).unwrap()).unwrap();
            assert_eq!(r.code, 0);
        });
        // Drive the server loop until the client thread finishes.
        let start = std::time::Instant::now();
        while !handle.is_finished() {
            server.poll_once();
            assert!(start.elapsed().as_secs() < 10, "server loop stuck");
        }
        handle.join().unwrap();
        let s = state.lock();
        assert!(!s
            .db
            .select("machine", &moira_db::Pred::Eq("name", "TCPBOX".into()))
            .is_empty());
    }

    #[test]
    fn kerberos_auth_mode() {
        use moira_krb::realm::Kdc;
        use moira_krb::ticket::make_authenticator;

        let clock = moira_common::VClock::new();
        let kdc = Kdc::new(clock.clone());
        kdc.register("babette", "pw").unwrap();
        let skey = kdc.register_service("moira").unwrap();
        let verifier = Verifier::new("moira", skey, clock.clone());

        let registry = Arc::new(Registry::standard());
        let mut st = MoiraState::new(clock.clone());
        crate::seed::seed_capacls(&mut st, &registry);
        crate::queries::testutil::add_test_user(&mut st, "babette", 42);
        let state = Arc::new(Mutex::new(st));
        let mut server = MoiraServer::new(state, registry, Some(verifier));

        let (mut client, server_end) = pair();
        server.attach(Box::new(server_end), "local", 0);

        let (ticket, session) = kdc.initial_ticket("babette", "pw", "moira").unwrap();
        let auth = make_authenticator(session, "babette", clock.now(), 1);
        let mut req = Request::new(MajorRequest::Auth, &[]);
        req.args = vec![
            bytes::Bytes::from(ticket.sealed.clone()),
            bytes::Bytes::from(auth.sealed.clone()),
            bytes::Bytes::from_static(b"chsh"),
        ];
        let replies = send_request(&mut client, &mut server, req.clone());
        assert_eq!(replies[0].code, 0);
        // Replaying the same authenticator fails.
        let replies = send_request(&mut client, &mut server, req);
        assert_eq!(replies[0].code, MrError::Replay.code());
        // Trusted-mode auth is refused when a verifier is configured.
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["root", "sneaky"]),
        );
        assert_eq!(replies[0].code, MrError::Args.code());
        // The authenticated identity can use self-access queries.
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(
                MajorRequest::Query,
                &["update_user_shell", "babette", "/bin/sh"],
            ),
        );
        assert_eq!(replies[0].code, 0);
    }
}
