//! The Moira server loop (§5.4), split into read/write dispatch tiers.
//!
//! "The Moira server runs as a single UNIX process on the Moira database
//! machine. It listens for TCP/IP connections on a well known service port,
//! and processes remote procedure call requests on each connection it
//! accepts." The loop is non-blocking: each [`MoiraServer::poll_once`] makes
//! progress on every live connection (reading new requests, sending
//! replies), which is what let the original stay a single process while
//! "reading new RPC requests and sending old replies simultaneously".
//!
//! This reproduction goes one step further than the paper's single process:
//! the state sits behind a reader-writer lock, and each poll pass classifies
//! ready requests before dispatch. Retrieve-class queries (and `Access`
//! pre-checks) run **concurrently** on a small worker pool under shared
//! guards; mutations, `Authenticate`, and `Trigger_DCM` drain **serially**
//! under the exclusive guard. Per connection, FIFO order is preserved: a
//! connection's leading run of reads joins the concurrent tier, and from its
//! first write onward the remainder of its batch executes in order on the
//! serial tier, so a read that follows a write always observes it. Lock
//! acquisition is bounded — a tier that cannot get its guard within the
//! configured patience sheds its requests with [`MrError::Busy`] instead of
//! blocking the loop, mirroring the database `LockManager`'s policy of
//! reporting contention (`MR_BUSY`/`MR_DEADLOCK`) rather than waiting
//! forever.
//!
//! The expensive database backend is initialized **once**, at server
//! construction — the Athenareg lesson: "starting up a backend process is a
//! rather heavyweight operation, the Moira server will do this only once,
//! at the start up time of the daemon" (benchmarked as experiment E5).

use std::collections::HashMap;
use std::io;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use moira_common::errors::MrError;
use moira_krb::ticket::{Authenticator, Ticket, Verifier};
use moira_protocol::transport::{Channel, TcpChannel};
use moira_protocol::wire::{check_version, MajorRequest, Reply, Request};

use crate::access;
use crate::reactor::{Reactor, Waker, LISTENER_KEY};
use crate::registry::Registry;
use crate::state::{shared, Caller, ClientInfo, MoiraState, SharedState};

/// The Moira server's registered service port (a period-appropriate pick
/// for the "well known port (T.B.S.)").
pub const MOIRA_PORT: u16 = 775;

/// Try-lock attempts (with a scheduler yield between each) before a tier
/// gives up on its guard and sheds the batch with `MR_BUSY`.
const DEFAULT_LOCK_PATIENCE: u32 = 512;

/// Wait clamp when some source cannot deliver readiness events — an
/// unregistered fd, a selector-less platform, or a paused connection whose
/// resume condition (the peer draining an in-process queue) produces no
/// event. The loop ticks at this cadence instead of blocking the full
/// timeout, so degraded sources are still served within a millisecond.
const SCAN_TICK: Duration = Duration::from_millis(1);

/// Fallback wait bound for [`MoiraServer::run`]: how stale the `stop` flag
/// check may go when no [`Waker`] fires. Wakers make shutdown immediate;
/// this only caps the worst case.
const RUN_TICK: Duration = Duration::from_millis(25);

struct Connection {
    chan: Box<dyn Channel>,
    caller: Caller,
    client_number: u64,
    /// Stable reactor registration key (connection indexes shift on
    /// removal; keys never do).
    key: usize,
    /// The channel's readiness fd, if it has one.
    fd: Option<polling::RawFd>,
    /// True once `fd` is registered with the reactor; unregistered
    /// connections are scanned every pass instead.
    registered: bool,
    /// Read interest as the reactor currently knows it.
    reg_read: bool,
    /// Write interest as the reactor currently knows it.
    reg_write: bool,
    /// Backpressure engaged: the outbox passed its cap, read interest is
    /// withdrawn until the peer drains below the low-water mark (cap/2).
    /// A paused peer is never disconnected — it just stops being read.
    paused: bool,
}

/// One timed request dispatch, for the throughput experiments.
#[derive(Debug, Clone, Copy)]
pub struct ServiceSample {
    /// True if the request ran on the shared (read) tier.
    pub read_tier: bool,
    /// Handler service time in nanoseconds (lock wait excluded).
    pub nanos: u64,
}

/// One read-tier result: task id, replies, and the handler's service time —
/// `None` when the request was shed with `Busy` instead of executed.
type ReadOutcome = (usize, Vec<Reply>, Option<u64>);

/// How one ready frame is dispatched.
enum Work {
    /// Answered without touching state (noop, decode/version errors, sheds).
    Done(Vec<Reply>),
    /// Shared-tier request: an `Access` pre-check or a retrieve-class query.
    Read { access: bool, args: Vec<String> },
    /// Exclusive-tier request, processed in arrival order.
    Write(Request),
}

/// One classified frame: which connection it came from, its slot in that
/// connection's reply order, and the work to do.
struct TaskSlot {
    conn: usize,
    work: Work,
    /// Caller snapshot taken at classification time. Only the read tier
    /// consumes it — and there it cannot be stale, because an `Auth` frame
    /// forces the rest of that connection's batch onto the serial tier. The
    /// serial tier instead re-resolves the caller from the connection at
    /// dispatch time, so a request pipelined behind an `Auth` in the same
    /// pass executes under the just-authenticated principal.
    caller: Caller,
}

/// The Moira server: one process, two dispatch tiers.
pub struct MoiraServer {
    state: SharedState,
    registry: Arc<Registry>,
    verifier: Option<Verifier>,
    connections: Vec<Connection>,
    listener: Option<TcpListener>,
    /// When set, at most this many requests are dispatched per poll pass;
    /// excess requests are shed with [`MrError::Busy`] instead of queueing
    /// unboundedly behind the loop.
    overload_limit: Option<usize>,
    /// Requests shed with `Busy` over the server's lifetime.
    shed_requests: u64,
    /// Worker threads for the shared tier. `0` selects the legacy
    /// single-lock baseline: every request, reads included, drains serially
    /// under the exclusive guard. `1` keeps the tier split but runs reads
    /// inline. `>1` fans reads out across that many scoped threads.
    read_workers: usize,
    /// Bounded lock-acquisition budget before shedding with `Busy`.
    lock_patience: u32,
    /// Requests executed on the shared tier over the server's lifetime
    /// (requests shed with `Busy` are not counted).
    reads_dispatched: u64,
    /// Requests executed on the exclusive tier over the server's lifetime
    /// (requests shed with `Busy` are not counted).
    writes_dispatched: u64,
    /// When enabled, per-request service times for the bench harness.
    service_trace: Option<Vec<ServiceSample>>,
    /// The state's instrument registry (cached so the dispatch path never
    /// takes the state lock just to record).
    obs: moira_obs::Registry,
    /// Mirror of `reads_dispatched` in the registry.
    obs_reads: moira_obs::Counter,
    /// Mirror of `writes_dispatched` in the registry.
    obs_writes: moira_obs::Counter,
    /// Mirror of `shed_requests` in the registry.
    obs_sheds: moira_obs::Counter,
    /// Shared-tier handler service times.
    obs_read_latency: moira_obs::Histo,
    /// Exclusive-tier handler service times.
    obs_write_latency: moira_obs::Histo,
    /// Readiness event source for the connection tier.
    reactor: Reactor,
    /// Registration key → current index in `connections`.
    key_map: HashMap<usize, usize>,
    /// Next connection registration key.
    next_key: usize,
    /// True once the TCP listener's fd is registered with the reactor.
    listener_registered: bool,
    /// Per-connection outbox cap override applied at attach time.
    write_cap: Option<usize>,
    /// Live connections right now.
    obs_conn_open: moira_obs::Gauge,
    /// Connections accepted over the server's lifetime.
    obs_conn_accepted: moira_obs::Counter,
    /// Connections torn down over the server's lifetime.
    obs_conn_closed: moira_obs::Counter,
    /// Pause transitions: times a connection's outbox crossed its cap and
    /// read interest was withdrawn.
    obs_backpressure: moira_obs::Counter,
    /// Readiness-to-dispatch wait: time from the reactor wait returning to
    /// a request beginning execution on its tier.
    obs_ready_latency: moira_obs::Histo,
}

impl MoiraServer {
    /// Creates a server over shared state and a query registry.
    ///
    /// With `verifier` set, `Authenticate` requests must carry Kerberos
    /// tickets; without one the server runs in trusted mode (in-process
    /// deployments and tests) where the authenticator is a bare principal
    /// name.
    pub fn new(
        state: SharedState,
        registry: Arc<Registry>,
        verifier: Option<Verifier>,
    ) -> MoiraServer {
        let read_workers = std::thread::available_parallelism()
            .map(|n| n.get().min(8))
            .unwrap_or(1);
        let obs = state.read().obs.clone();
        MoiraServer {
            obs_reads: obs.counter("server.reads_dispatched"),
            obs_writes: obs.counter("server.writes_dispatched"),
            obs_sheds: obs.counter("server.shed_requests"),
            obs_read_latency: obs.histogram("server.latency.read"),
            obs_write_latency: obs.histogram("server.latency.write"),
            obs_conn_open: obs.gauge("server.connections.open"),
            obs_conn_accepted: obs.counter("server.connections.accepted"),
            obs_conn_closed: obs.counter("server.connections.closed"),
            obs_backpressure: obs.counter("server.backpressure.engaged"),
            obs_ready_latency: obs.histogram("server.latency.readiness_to_dispatch"),
            obs,
            reactor: Reactor::new(),
            key_map: HashMap::new(),
            next_key: 0,
            listener_registered: false,
            write_cap: None,
            state,
            registry,
            verifier,
            connections: Vec::new(),
            listener: None,
            overload_limit: None,
            shed_requests: 0,
            read_workers,
            lock_patience: DEFAULT_LOCK_PATIENCE,
            reads_dispatched: 0,
            writes_dispatched: 0,
            service_trace: None,
        }
    }

    /// The state's instrument registry (snapshot it for dispatch counters
    /// and per-tier latency histograms).
    pub fn obs(&self) -> moira_obs::Registry {
        self.obs.clone()
    }

    /// The shared state handle.
    pub fn state(&self) -> SharedState {
        self.state.clone()
    }

    /// Bounds in-flight work: at most `limit` requests are dispatched per
    /// poll pass, and the rest receive [`MrError::Busy`] — a distinct,
    /// retryable status well-behaved clients back off from. `None` removes
    /// the bound.
    pub fn set_overload_limit(&mut self, limit: Option<usize>) {
        self.overload_limit = limit;
    }

    /// Requests shed with `Busy` since the server started.
    pub fn shed_requests(&self) -> u64 {
        self.shed_requests
    }

    /// Sets the shared-tier worker count: `0` = single-lock serialized
    /// baseline, `1` = tiered but inline, `n > 1` = reads fan out over `n`
    /// scoped threads per poll pass.
    pub fn set_read_workers(&mut self, workers: usize) {
        self.read_workers = workers;
    }

    /// The configured shared-tier worker count.
    pub fn read_workers(&self) -> usize {
        self.read_workers
    }

    /// Bounds how many try-lock attempts a tier makes before shedding its
    /// batch with `Busy`.
    pub fn set_lock_patience(&mut self, attempts: u32) {
        self.lock_patience = attempts;
    }

    /// Requests executed on the (shared, exclusive) tiers so far. Requests
    /// shed with `Busy` count toward [`MoiraServer::shed_requests`], not
    /// here.
    pub fn dispatch_counts(&self) -> (u64, u64) {
        (self.reads_dispatched, self.writes_dispatched)
    }

    /// Starts recording per-request service times (drains any prior trace).
    ///
    /// Deprecated back-compat shim: new measurement consumers should read
    /// the obs registry instead ([`MoiraServer::obs`] — the
    /// `server.latency.*` histograms carry the same service times with
    /// quantile estimation and no per-request allocation). Kept for the
    /// trace-driven projections in the bench harness.
    pub fn enable_service_trace(&mut self) {
        self.service_trace = Some(Vec::new());
    }

    /// Takes the recorded service samples, leaving tracing enabled.
    ///
    /// Deprecated back-compat shim — see [`MoiraServer::enable_service_trace`].
    pub fn take_service_trace(&mut self) -> Vec<ServiceSample> {
        match self.service_trace.as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Attaches an already-connected channel (the in-process transport),
    /// registering its readiness fd with the reactor when it has one.
    pub fn attach(&mut self, mut chan: Box<dyn Channel>, host: &str, port: u16) {
        let mut state = self.state.write();
        let client_number = state.next_client_number();
        let connect_time = state.now();
        state.clients.push(ClientInfo {
            principal: None,
            host: host.to_owned(),
            port,
            connect_time,
            client_number,
        });
        drop(state);
        if let Some(cap) = self.write_cap {
            chan.set_write_cap(cap);
        }
        let key = self.next_key;
        self.next_key += 1;
        let fd = chan.raw_fd();
        let registered = fd.is_some_and(|fd| self.reactor.register(fd, key, true, false));
        self.key_map.insert(key, self.connections.len());
        self.connections.push(Connection {
            chan,
            caller: Caller::anonymous("unknown"),
            client_number,
            key,
            fd,
            registered,
            reg_read: true,
            reg_write: false,
            paused: false,
        });
        self.obs_conn_accepted.inc();
        self.obs_conn_open.set(self.connections.len() as i64);
    }

    /// Starts listening on a TCP address (pass port 0 for an ephemeral
    /// port); returns the bound address.
    pub fn listen_tcp(&mut self, addr: &str) -> io::Result<std::net::SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let bound = listener.local_addr()?;
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            self.listener_registered =
                self.reactor
                    .register(listener.as_raw_fd(), LISTENER_KEY, true, false);
        }
        self.listener = Some(listener);
        Ok(bound)
    }

    /// Overrides every connection's outbox cap — existing and future. The
    /// backpressure tests and benches use tiny caps to make the pause
    /// observable; production keeps the transport default.
    pub fn set_write_cap(&mut self, cap: usize) {
        self.write_cap = Some(cap);
        for conn in &mut self.connections {
            conn.chan.set_write_cap(cap);
        }
    }

    /// A handle that interrupts a blocked [`MoiraServer::run`] /
    /// [`MoiraServer::poll_with_timeout`] wait from another thread.
    pub fn waker(&self) -> Waker {
        self.reactor.waker()
    }

    /// Number of live connections.
    pub fn connection_count(&self) -> usize {
        self.connections.len()
    }

    /// Outbox depth (bytes queued toward the peer, not yet taken by the
    /// OS or consumed by the peer) per live connection. The benches and
    /// adversarial tests assert bounded growth under never-draining
    /// readers with this.
    pub fn connection_queued_bytes(&self) -> Vec<usize> {
        self.connections
            .iter()
            .map(|c| c.chan.queued_bytes())
            .collect()
    }

    fn accept_pending(&mut self) {
        let mut accepted = Vec::new();
        if let Some(listener) = &self.listener {
            loop {
                match listener.accept() {
                    Ok((stream, peer)) => accepted.push((stream, peer)),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        for (stream, peer) in accepted {
            if let Ok(chan) = TcpChannel::new(stream) {
                self.attach(Box::new(chan), &peer.ip().to_string(), peer.port());
            }
        }
    }

    /// Classifies one ready frame. `tiered` is false in the single-lock
    /// baseline, where everything that touches state takes the serial tier.
    fn classify(&self, conn: usize, frame: bytes::Bytes, tiered: bool) -> TaskSlot {
        let caller = self.connections[conn].caller.clone();
        let work = (|| {
            let request = match Request::decode(frame) {
                Ok(r) => r,
                Err(e) => return Work::Done(vec![Reply::status(e.code())]),
            };
            if let Err(e) = check_version(request.version) {
                return Work::Done(vec![Reply::status(e.code())]);
            }
            match request.major {
                MajorRequest::Noop => Work::Done(vec![Reply::status(0)]),
                MajorRequest::Auth | MajorRequest::TriggerDcm => Work::Write(request),
                MajorRequest::Access | MajorRequest::Query => {
                    if !tiered {
                        return Work::Write(request);
                    }
                    let args = match request.string_args() {
                        Ok(a) => a,
                        Err(e) => return Work::Done(vec![Reply::status(e.code())]),
                    };
                    if args.is_empty() {
                        return Work::Done(vec![Reply::status(MrError::Args.code())]);
                    }
                    let access = request.major == MajorRequest::Access;
                    // Unknown names also take the read tier: answering
                    // `MR_NO_HANDLE` needs no exclusive access.
                    if access
                        || self
                            .registry
                            .get(&args[0])
                            .is_none_or(|h| h.handler.is_read())
                    {
                        Work::Read { access, args }
                    } else {
                        Work::Write(request)
                    }
                }
            }
        })();
        TaskSlot { conn, work, caller }
    }

    /// Executes one shared-tier request against a read guard.
    fn run_read(
        registry: &Registry,
        state: &MoiraState,
        caller: &Caller,
        access: bool,
        args: &[String],
    ) -> Vec<Reply> {
        if access {
            match registry.check_access(state, caller, &args[0], &args[1..]) {
                Ok(()) => vec![Reply::status(0)],
                Err(e) => vec![Reply::status(e.code())],
            }
        } else {
            match registry.execute_read(state, caller, &args[0], &args[1..]) {
                Ok(tuples) => {
                    let mut replies: Vec<Reply> = tuples.iter().map(|t| Reply::tuple(t)).collect();
                    replies.push(Reply::status(0));
                    replies
                }
                Err(e) => vec![Reply::status(e.code())],
            }
        }
    }

    /// Bounded shared-lock acquisition: yields between attempts, gives up
    /// after the configured patience so contention surfaces as `Busy`.
    fn read_or_busy(
        state: &SharedState,
        patience: u32,
    ) -> Option<crate::state::StateReadGuard<'_>> {
        for _ in 0..patience {
            if let Some(guard) = state.try_read() {
                return Some(guard);
            }
            std::thread::yield_now();
        }
        None
    }

    /// Bounded exclusive-lock acquisition.
    fn write_or_busy(
        state: &SharedState,
        patience: u32,
    ) -> Option<crate::state::StateWriteGuard<'_>> {
        for _ in 0..patience {
            if let Some(guard) = state.try_write() {
                return Some(guard);
            }
            std::thread::yield_now();
        }
        None
    }

    /// One non-blocking pass of the loop (a reactor wait with zero
    /// timeout). Returns how many requests were received.
    pub fn poll_once(&mut self) -> usize {
        self.poll_with_timeout(Some(Duration::ZERO))
    }

    /// One pass of the loop, blocking in the reactor wait for up to
    /// `timeout` (`None` = until an event or a [`Waker`]): collect
    /// readiness events, flush writable outboxes, accept connections,
    /// drain and classify ready frames, dispatch the read tier
    /// concurrently and the write tier serially, send replies in
    /// per-connection FIFO order, then re-sync reactor interest
    /// (write interest while output is queued, read interest withdrawn
    /// under backpressure). Returns how many requests were received.
    pub fn poll_with_timeout(&mut self, timeout: Option<Duration>) -> usize {
        // Sources outside the reactor force a clamped wait: connections
        // without (registered) fds must be scanned, a selector-less
        // platform scans everything, and a paused connection whose peer
        // drains silently (in-proc queues) needs a periodic resume check.
        let scan_mode = !self.reactor.has_poller()
            || (self.listener.is_some() && !self.listener_registered)
            || self.connections.iter().any(|c| !c.registered);
        let needs_tick = self.connections.iter().any(|c| c.paused && !c.reg_write);
        let wait_timeout = if !self.reactor.has_poller() {
            Some(Duration::ZERO)
        } else if scan_mode || needs_tick {
            Some(timeout.unwrap_or(SCAN_TICK).min(SCAN_TICK))
        } else {
            timeout
        };
        // The loop's single blocking point. No state guard is held here —
        // moira-lint's reactor-discipline pass enforces that.
        let ready = self.reactor.wait(wait_timeout);
        let ready_at = Instant::now();
        let tiered = self.read_workers > 0;

        let mut dead: Vec<usize> = Vec::new();
        // Connections whose interest must be re-synced after this pass.
        let mut touched: Vec<usize> = Vec::new();

        // Retire queued output first: flushing frees the peer to make
        // progress and can lift backpressure before new frames are read.
        for key in &ready.writable {
            if let Some(&idx) = self.key_map.get(key) {
                touched.push(idx);
                if self.connections[idx].chan.flush().is_err() {
                    dead.push(idx);
                }
            }
        }

        // Accept on listener readiness (every pass in scan mode — the
        // non-blocking accept simply reports WouldBlock when idle).
        let known = self.connections.len();
        if ready.listener || scan_mode {
            self.accept_pending();
        }

        // The readable set: ready keys plus fresh accepts (whose first
        // frames may have arrived before registration), or every
        // connection when scanning. Paused connections are excluded — not
        // reading them *is* the backpressure.
        let mut read_idxs: Vec<usize> = if scan_mode {
            (0..self.connections.len()).collect()
        } else {
            let mut v: Vec<usize> = ready
                .readable
                .iter()
                .filter_map(|k| self.key_map.get(k).copied())
                .collect();
            v.extend(known..self.connections.len());
            v
        };
        read_idxs.sort_unstable();
        read_idxs.dedup();

        // Drain every ready frame, preserving per-connection order.
        let mut tasks: Vec<TaskSlot> = Vec::new();
        let mut received = 0usize;
        for conn in read_idxs {
            if self.connections[conn].paused {
                continue;
            }
            touched.push(conn);
            // A connection's frames join the read tier only up to its first
            // serial request; everything after stays in arrival order on the
            // write tier so later reads observe earlier writes.
            let mut serial_from_here = false;
            loop {
                let frame = match self.connections[conn].chan.try_recv() {
                    Ok(Some(frame)) => frame,
                    Ok(None) => {
                        if self.connections[conn].chan.is_closed() {
                            dead.push(conn);
                        }
                        break;
                    }
                    Err(_) => {
                        dead.push(conn);
                        break;
                    }
                };
                received += 1;
                if self.overload_limit.is_some_and(|limit| received > limit) {
                    // Shed rather than queue: the client hears Busy now
                    // instead of timing out later.
                    self.shed_requests += 1;
                    self.obs_sheds.inc();
                    tasks.push(TaskSlot {
                        conn,
                        work: Work::Done(vec![Reply::status(MrError::Busy.code())]),
                        caller: Caller::anonymous("shed"),
                    });
                    continue;
                }
                let slot = self.classify(conn, frame, tiered && !serial_from_here);
                if matches!(slot.work, Work::Write(_)) {
                    serial_from_here = true;
                }
                tasks.push(slot);
            }
        }

        // Phase A: the shared tier. All `Read` slots run under read guards,
        // concurrently when more than one worker is configured.
        let read_ids: Vec<usize> = tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.work, Work::Read { .. }))
            .map(|(i, _)| i)
            .collect();
        if !read_ids.is_empty() {
            let registry = self.registry.clone();
            let state = self.state.clone();
            let patience = self.lock_patience;
            // Service times are clocked when either consumer wants them:
            // the legacy trace or the obs latency histograms.
            let trace_on = self.service_trace.is_some() || self.obs.enabled();
            // Readiness→dispatch wait for this tier's batch: how long
            // after the OS said "ready" the work actually starts.
            let wait_ns = if trace_on {
                ready_at.elapsed().as_nanos() as u64
            } else {
                0
            };
            let workers = self.read_workers.max(1).min(read_ids.len());
            let mut outcomes: Vec<ReadOutcome> = Vec::with_capacity(read_ids.len());
            if workers <= 1 {
                match Self::read_or_busy(&state, patience) {
                    Some(guard) => {
                        for &id in &read_ids {
                            let TaskSlot { caller, work, .. } = &tasks[id];
                            let Work::Read { access, args } = work else {
                                unreachable!()
                            };
                            let t0 = trace_on.then(Instant::now);
                            let replies = Self::run_read(&registry, &guard, caller, *access, args);
                            let nanos = t0.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0);
                            outcomes.push((id, replies, Some(nanos)));
                        }
                    }
                    None => {
                        for &id in &read_ids {
                            outcomes.push((id, vec![Reply::status(MrError::Busy.code())], None));
                        }
                    }
                }
            } else {
                // Round-robin the read slots over the worker pool; each
                // worker holds one shared guard for its whole chunk.
                let chunks: Vec<Vec<usize>> = (0..workers)
                    .map(|w| read_ids.iter().copied().skip(w).step_by(workers).collect())
                    .collect();
                let tasks_ref = &tasks;
                let results: Vec<Vec<ReadOutcome>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = chunks
                        .into_iter()
                        .map(|chunk| {
                            let registry = registry.clone();
                            let state = state.clone();
                            let ids = chunk.clone();
                            let handle = scope.spawn(move || {
                                let mut out = Vec::with_capacity(chunk.len());
                                let guard = Self::read_or_busy(&state, patience);
                                for id in chunk {
                                    let TaskSlot { caller, work, .. } = &tasks_ref[id];
                                    let Work::Read { access, args } = work else {
                                        unreachable!()
                                    };
                                    match &guard {
                                        Some(g) => {
                                            let t0 = trace_on.then(Instant::now);
                                            let replies =
                                                Self::run_read(&registry, g, caller, *access, args);
                                            let nanos = t0
                                                .map(|t| t.elapsed().as_nanos() as u64)
                                                .unwrap_or(0);
                                            out.push((id, replies, Some(nanos)));
                                        }
                                        None => out.push((
                                            id,
                                            vec![Reply::status(MrError::Busy.code())],
                                            None,
                                        )),
                                    }
                                }
                                out
                            });
                            (ids, handle)
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|(ids, h)| {
                            // A worker that panicked sheds its chunk as
                            // Busy rather than taking the daemon down.
                            h.join().unwrap_or_else(|_| {
                                ids.into_iter()
                                    .map(|id| (id, vec![Reply::status(MrError::Busy.code())], None))
                                    .collect()
                            })
                        })
                        .collect()
                });
                for worker_out in results {
                    outcomes.extend(worker_out);
                }
            }
            for (id, replies, nanos) in outcomes {
                match nanos {
                    Some(nanos) => {
                        // Executed under a shared guard: count it, and trace
                        // it if the bench harness asked for samples. Sheds
                        // are excluded from both so the service-time
                        // distribution only reflects real executions.
                        self.reads_dispatched += 1;
                        self.obs_reads.inc();
                        self.obs_read_latency.record(nanos);
                        self.obs_ready_latency.record(wait_ns);
                        if let Some(trace) = self.service_trace.as_mut() {
                            trace.push(ServiceSample {
                                read_tier: true,
                                nanos,
                            });
                        }
                    }
                    None => {
                        self.shed_requests += 1;
                        self.obs_sheds.inc();
                    }
                }
                tasks[id].work = Work::Done(replies);
            }
        }

        // Phase B: the exclusive tier, in arrival order under one guard.
        let write_ids: Vec<usize> = tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.work, Work::Write(_)))
            .map(|(i, _)| i)
            .collect();
        if !write_ids.is_empty() {
            let state = self.state.clone();
            let guard_opt = Self::write_or_busy(&state, self.lock_patience);
            match guard_opt {
                Some(mut guard) => {
                    self.writes_dispatched += write_ids.len() as u64;
                    self.obs_writes.add(write_ids.len() as u64);
                    let trace_on = self.service_trace.is_some() || self.obs.enabled();
                    let wait_ns = if trace_on {
                        ready_at.elapsed().as_nanos() as u64
                    } else {
                        0
                    };
                    for id in write_ids {
                        let TaskSlot { conn, work, .. } = &tasks[id];
                        let Work::Write(request) = work else {
                            unreachable!()
                        };
                        // Resolve the caller from the connection *now*, not
                        // from the classify-time snapshot: the tier runs in
                        // arrival order, so an `Auth` earlier in this batch
                        // has already installed the new principal by the
                        // time a request pipelined behind it executes.
                        let caller = self.connections[*conn].caller.clone();
                        let t0 = trace_on.then(Instant::now);
                        let replies = match request.major {
                            MajorRequest::Auth => {
                                vec![self.handle_auth(*conn, request, &mut guard)]
                            }
                            MajorRequest::TriggerDcm => {
                                vec![Self::handle_trigger_dcm(&caller, &mut guard)]
                            }
                            MajorRequest::Query => {
                                Self::handle_query(&self.registry, &caller, request, &mut guard)
                            }
                            MajorRequest::Access => {
                                vec![Self::handle_access(
                                    &self.registry,
                                    &caller,
                                    request,
                                    &guard,
                                )]
                            }
                            MajorRequest::Noop => vec![Reply::status(0)],
                        };
                        if let Some(t0) = t0 {
                            let nanos = t0.elapsed().as_nanos() as u64;
                            self.obs_write_latency.record(nanos);
                            self.obs_ready_latency.record(wait_ns);
                            if let Some(trace) = self.service_trace.as_mut() {
                                trace.push(ServiceSample {
                                    read_tier: false,
                                    nanos,
                                });
                            }
                        }
                        tasks[id].work = Work::Done(replies);
                    }
                    // Group commit: one fsync (at most — the flush interval
                    // can defer it) covers every mutation in this batch,
                    // and it happens before any reply below is sent, so an
                    // acknowledged commit is as durable as the configured
                    // policy promises. A failed flush is counted, not
                    // fatal: the WAL append already carried the error to
                    // the owning request if the media is truly dead.
                    let now = guard.db.now();
                    if guard.storage.maybe_flush(now).is_err() {
                        guard.obs.counter("db.wal.flush_errors").inc();
                    }
                }
                None => {
                    self.shed_requests += write_ids.len() as u64;
                    self.obs_sheds.add(write_ids.len() as u64);
                    for id in write_ids {
                        tasks[id].work = Work::Done(vec![Reply::status(MrError::Busy.code())]);
                    }
                }
            }
        }

        // Send replies in per-connection FIFO order (tasks are already in
        // drain order, which is per-connection FIFO). `send` queues into
        // the connection's outbox and flushes opportunistically — a slow
        // peer cannot stall this loop.
        for task in &tasks {
            let Work::Done(replies) = &task.work else {
                unreachable!("all work resolved by the tiers")
            };
            let conn = &mut self.connections[task.conn];
            for reply in replies {
                if conn.chan.send(reply.encode()).is_err() {
                    dead.push(task.conn);
                    break;
                }
            }
        }

        // Re-sync reactor interest for every connection this pass touched:
        // write interest while the OS would not take the whole outbox, and
        // the backpressure pause/resume transitions. Paused connections
        // always get a resume check — their peers may have drained without
        // producing any event (in-process queues, or replies retired by an
        // earlier pass's flush).
        for (idx, c) in self.connections.iter().enumerate() {
            if c.paused {
                touched.push(idx);
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for idx in touched {
            self.resync_interest(idx, &mut dead);
        }

        dead.sort_unstable();
        dead.dedup();
        for &i in dead.iter().rev() {
            let conn = self.connections.remove(i);
            if conn.registered {
                if let Some(fd) = conn.fd {
                    self.reactor.deregister(fd);
                }
            }
            self.obs_conn_closed.inc();
            let mut state = self.state.write();
            state
                .clients
                .retain(|c| c.client_number != conn.client_number);
        }
        if !dead.is_empty() {
            self.key_map = self
                .connections
                .iter()
                .enumerate()
                .map(|(i, c)| (c.key, i))
                .collect();
            self.obs_conn_open.set(self.connections.len() as i64);
        }

        // Selector-less pacing: with no OS wait to block in, an empty scan
        // honors the caller's timeout with a bounded sleep instead of
        // spinning.
        if !self.reactor.has_poller() && received == 0 {
            if let Some(t) = timeout {
                if !t.is_zero() {
                    // No OS wait exists on this degraded path; a bounded
                    // pace beats spinning. lint:allow(reactor-discipline)
                    std::thread::sleep(t.min(SCAN_TICK));
                }
            }
        }
        received
    }

    /// Applies one connection's post-pass interest transitions: engage or
    /// lift backpressure against the outbox cap, keep write interest while
    /// flushing is incomplete, and tell the reactor only when something
    /// changed.
    fn resync_interest(&mut self, idx: usize, dead: &mut Vec<usize>) {
        let conn = &mut self.connections[idx];
        // Opportunistic flush so interest reflects the post-pass outbox.
        let flushed_clean = match conn.chan.flush() {
            Ok(done) => done,
            Err(_) => {
                dead.push(idx);
                return;
            }
        };
        let queued = conn.chan.queued_bytes();
        let cap = conn.chan.write_cap();
        if !conn.paused && queued > cap {
            // Over the high-water mark: stop reading this peer. Its
            // requests wait in its socket (and eventually its own send
            // window) — the kernel's flow control propagates the stall to
            // the client, and our memory stays bounded by the cap plus
            // one in-flight batch.
            conn.paused = true;
            self.obs_backpressure.inc();
        } else if conn.paused && queued <= cap / 2 {
            // Drained below the low-water mark: resume reading.
            conn.paused = false;
        }
        let want_read = !conn.paused;
        let want_write = !flushed_clean;
        if conn.registered && (want_read != conn.reg_read || want_write != conn.reg_write) {
            if let Some(fd) = conn.fd {
                self.reactor.update(fd, conn.key, want_read, want_write);
            }
            conn.reg_read = want_read;
            conn.reg_write = want_write;
        }
    }

    /// Polls until `idle_rounds` consecutive passes process nothing. Idle
    /// passes block in the reactor wait (clamped to [`SCAN_TICK`]) rather
    /// than spinning.
    pub fn run_until_idle(&mut self, idle_rounds: usize) {
        let mut idle = 0;
        while idle < idle_rounds {
            if self.poll_with_timeout(Some(SCAN_TICK)) == 0 {
                idle += 1;
            } else {
                idle = 0;
            }
        }
    }

    /// Runs the loop until `stop` is set. When a pass finds nothing to do
    /// the loop blocks in the reactor wait — zero CPU while idle — bounded
    /// by [`RUN_TICK`] so `stop` is honored even without a [`Waker`]
    /// firing; use [`MoiraServer::waker`] to interrupt the wait
    /// immediately (new work handed to another thread, shutdown).
    pub fn run(&mut self, stop: &std::sync::atomic::AtomicBool) {
        while !stop.load(std::sync::atomic::Ordering::Acquire) {
            self.poll_with_timeout(Some(RUN_TICK));
        }
    }

    fn handle_auth(
        &mut self,
        conn_index: usize,
        request: &Request,
        state: &mut MoiraState,
    ) -> Reply {
        let principal = match (&self.verifier, request.args.len()) {
            // Trusted mode: [principal, client_name].
            (None, 2) => match std::str::from_utf8(&request.args[0]) {
                Ok(p) => p.to_owned(),
                Err(_) => return Reply::status(MrError::BadChar.code()),
            },
            // Kerberos mode: [ticket, authenticator, client_name].
            (Some(verifier), 3) => {
                let ticket = Ticket {
                    sealed: request.args[0].to_vec(),
                };
                let auth = Authenticator {
                    sealed: request.args[1].to_vec(),
                };
                match verifier.verify(&ticket, &auth) {
                    Ok(p) => p,
                    Err(moira_krb::realm::KrbError::Replay) => {
                        return Reply::status(MrError::Replay.code())
                    }
                    Err(_) => return Reply::status(MrError::AuthFailure.code()),
                }
            }
            _ => return Reply::status(MrError::Args.code()),
        };
        let client_name = request
            .args
            .last()
            .and_then(|b| std::str::from_utf8(b).ok())
            .unwrap_or("unknown")
            .to_owned();
        let conn = &mut self.connections[conn_index];
        conn.caller = Caller::new(&principal, &client_name);
        let number = conn.client_number;
        if let Some(info) = state.clients.iter_mut().find(|c| c.client_number == number) {
            info.principal = Some(principal);
        }
        Reply::status(0)
    }

    fn handle_query(
        registry: &Registry,
        caller: &Caller,
        request: &Request,
        state: &mut MoiraState,
    ) -> Vec<Reply> {
        let args = match request.string_args() {
            Ok(a) => a,
            Err(e) => return vec![Reply::status(e.code())],
        };
        if args.is_empty() {
            return vec![Reply::status(MrError::Args.code())];
        }
        match registry.execute(state, caller, &args[0], &args[1..]) {
            Ok(tuples) => {
                let mut replies: Vec<Reply> = tuples.iter().map(|t| Reply::tuple(t)).collect();
                replies.push(Reply::status(0));
                replies
            }
            Err(e) => vec![Reply::status(e.code())],
        }
    }

    fn handle_access(
        registry: &Registry,
        caller: &Caller,
        request: &Request,
        state: &MoiraState,
    ) -> Reply {
        let args = match request.string_args() {
            Ok(a) => a,
            Err(e) => return Reply::status(e.code()),
        };
        if args.is_empty() {
            return Reply::status(MrError::Args.code());
        }
        match registry.check_access(state, caller, &args[0], &args[1..]) {
            Ok(()) => Reply::status(0),
            Err(e) => Reply::status(e.code()),
        }
    }

    fn handle_trigger_dcm(caller: &Caller, state: &mut MoiraState) -> Reply {
        // "Access checking is done by checking permissions for the
        // pseudo-query trigger_dcm (tdcm)."
        if !access::caller_has_capability(state, caller, "trigger_dcm") {
            return Reply::status(MrError::Perm.code());
        }
        state.dcm_trigger = true;
        Reply::status(0)
    }
}

/// Builds a ready-to-use server: seeded state, standard registry, CAPACLS
/// populated. Returns the server plus handles on its state and registry.
pub fn standard_server(clock: moira_common::VClock) -> (MoiraServer, SharedState, Arc<Registry>) {
    let registry = Arc::new(Registry::standard());
    let mut state = MoiraState::new(clock);
    crate::seed::seed_capacls(&mut state, &registry);
    let state = shared(state);
    let server = MoiraServer::new(state.clone(), registry.clone(), None);
    (server, state, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use moira_protocol::transport::{pair, recv_blocking};

    fn send_request(chan: &mut dyn Channel, server: &mut MoiraServer, req: Request) -> Vec<Reply> {
        chan.send(req.encode()).unwrap();
        server.run_until_idle(2);
        let mut replies = Vec::new();
        loop {
            let frame = recv_blocking(chan, 100).expect("reply");
            let reply = Reply::decode(frame).unwrap();
            let done = !reply.is_more_data();
            replies.push(reply);
            if done {
                break;
            }
        }
        replies
    }

    fn setup() -> (MoiraServer, moira_protocol::transport::InProcChannel) {
        let (mut server, state, _) = standard_server(moira_common::VClock::new());
        {
            let mut s = state.write();
            let uid = crate::queries::testutil::add_test_user(&mut s, "ops", 1);
            s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
                .unwrap();
        }
        let (client, server_end) = pair();
        server.attach(Box::new(server_end), "local", 0);
        (server, client)
    }

    #[test]
    fn noop_round_trip() {
        let (mut server, mut client) = setup();
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Noop, &[]),
        );
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].code, 0);
    }

    #[test]
    fn query_streams_tuples() {
        let (mut server, mut client) = setup();
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        for name in ["A", "B", "C"] {
            let replies = send_request(
                &mut client,
                &mut server,
                Request::new(MajorRequest::Query, &["add_machine", name, "VAX"]),
            );
            assert_eq!(replies.last().unwrap().code, 0, "{name}");
        }
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["get_machine", "*"]),
        );
        // Three MR_MORE_DATA tuples plus the final success.
        assert_eq!(replies.len(), 4);
        assert!(replies[0].is_more_data());
        assert_eq!(replies[3].code, 0);
        let names: Vec<String> = replies[..3]
            .iter()
            .map(|r| r.string_fields().unwrap()[0].clone())
            .collect();
        assert_eq!(names, vec!["A", "B", "C"]);
    }

    #[test]
    fn unauthenticated_mutation_denied() {
        let (mut server, mut client) = setup();
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["add_machine", "X", "VAX"]),
        );
        assert_eq!(replies[0].code, MrError::Perm.code());
    }

    #[test]
    fn access_precheck_matches_execution() {
        let (mut server, mut client) = setup();
        // Denied before auth…
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Access, &["add_machine", "X", "VAX"]),
        );
        assert_eq!(replies[0].code, MrError::Perm.code());
        // …allowed after.
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Access, &["add_machine", "X", "VAX"]),
        );
        assert_eq!(replies[0].code, 0);
        // And the access check did not execute the query.
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["get_machine", "X"]),
        );
        assert_eq!(replies[0].code, MrError::NoMatch.code());
    }

    #[test]
    fn trigger_dcm_requires_capability() {
        let (mut server, mut client) = setup();
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::TriggerDcm, &[]),
        );
        assert_eq!(replies[0].code, MrError::Perm.code());
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::TriggerDcm, &[]),
        );
        assert_eq!(replies[0].code, 0);
        assert!(server.state().read().dcm_trigger);
    }

    #[test]
    fn overload_sheds_excess_requests_with_busy() {
        let (mut server, mut client) = setup();
        server.set_overload_limit(Some(1));
        // Two requests land before the loop runs: only one is dispatched,
        // the other is shed with a distinct, retryable Busy status.
        let req = Request::new(MajorRequest::Noop, &[]);
        client.send(req.encode()).unwrap();
        client.send(req.encode()).unwrap();
        server.run_until_idle(2);
        let first = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        let second = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        assert_eq!(first.code, 0);
        assert_eq!(second.code, MrError::Busy.code());
        assert_eq!(server.shed_requests(), 1);
        // The resend lands in a calmer pass and succeeds.
        client.send(req.encode()).unwrap();
        server.run_until_idle(2);
        let retried = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        assert_eq!(retried.code, 0);
        // Removing the limit restores unbounded dispatch.
        server.set_overload_limit(None);
        client.send(req.encode()).unwrap();
        client.send(req.encode()).unwrap();
        server.run_until_idle(2);
        for _ in 0..2 {
            let r = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
            assert_eq!(r.code, 0);
        }
        assert_eq!(server.shed_requests(), 1, "no further sheds");
    }

    #[test]
    fn version_skew_rejected() {
        let (mut server, mut client) = setup();
        let mut req = Request::new(MajorRequest::Noop, &[]);
        req.version = 99;
        let replies = send_request(&mut client, &mut server, req);
        assert_eq!(replies[0].code, MrError::VersionHigh.code());
    }

    #[test]
    fn list_users_sees_connections() {
        let (mut server, mut client) = setup();
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["_list_users"]),
        );
        assert_eq!(replies.len(), 2);
        let fields = replies[0].string_fields().unwrap();
        assert_eq!(fields[0], "ops");
    }

    #[test]
    fn disconnect_cleans_up() {
        let (mut server, client) = setup();
        assert_eq!(server.connection_count(), 1);
        drop(client);
        server.run_until_idle(3);
        assert_eq!(server.connection_count(), 0);
        assert!(server.state().read().clients.is_empty());
    }

    #[test]
    fn tcp_end_to_end() {
        let (mut server, state, _) = standard_server(moira_common::VClock::new());
        {
            let mut s = state.write();
            let uid = crate::queries::testutil::add_test_user(&mut s, "ops", 1);
            s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
                .unwrap();
        }
        let addr = server.listen_tcp("127.0.0.1:0").unwrap();
        let handle = std::thread::spawn(move || {
            let mut chan = TcpChannel::connect(&addr.to_string()).unwrap();
            chan.send(Request::new(MajorRequest::Auth, &["ops", "tcp-test"]).encode())
                .unwrap();
            let r = Reply::decode(recv_blocking(&mut chan, 2_000_000).unwrap()).unwrap();
            assert_eq!(r.code, 0);
            chan.send(Request::new(MajorRequest::Query, &["add_machine", "TCPBOX", "RT"]).encode())
                .unwrap();
            let r = Reply::decode(recv_blocking(&mut chan, 2_000_000).unwrap()).unwrap();
            assert_eq!(r.code, 0);
        });
        // Drive the server loop until the client thread finishes.
        let start = std::time::Instant::now();
        while !handle.is_finished() {
            server.poll_once();
            assert!(start.elapsed().as_secs() < 10, "server loop stuck");
        }
        handle.join().unwrap();
        let s = state.read();
        assert!(!s
            .db
            .select("machine", &moira_db::Pred::Eq("name", "TCPBOX".into()))
            .is_empty());
    }

    #[test]
    fn kerberos_auth_mode() {
        use moira_krb::realm::Kdc;
        use moira_krb::ticket::make_authenticator;

        let clock = moira_common::VClock::new();
        let kdc = Kdc::new(clock.clone());
        kdc.register("babette", "pw").unwrap();
        let skey = kdc.register_service("moira").unwrap();
        let verifier = Verifier::new("moira", skey, clock.clone());

        let registry = Arc::new(Registry::standard());
        let mut st = MoiraState::new(clock.clone());
        crate::seed::seed_capacls(&mut st, &registry);
        crate::queries::testutil::add_test_user(&mut st, "babette", 42);
        let state = shared(st);
        let mut server = MoiraServer::new(state, registry, Some(verifier));

        let (mut client, server_end) = pair();
        server.attach(Box::new(server_end), "local", 0);

        let (ticket, session) = kdc.initial_ticket("babette", "pw", "moira").unwrap();
        let auth = make_authenticator(session, "babette", clock.now(), 1);
        let mut req = Request::new(MajorRequest::Auth, &[]);
        req.args = vec![
            bytes::Bytes::from(ticket.sealed.clone()),
            bytes::Bytes::from(auth.sealed.clone()),
            bytes::Bytes::from_static(b"chsh"),
        ];
        let replies = send_request(&mut client, &mut server, req.clone());
        assert_eq!(replies[0].code, 0);
        // Replaying the same authenticator fails.
        let replies = send_request(&mut client, &mut server, req);
        assert_eq!(replies[0].code, MrError::Replay.code());
        // Trusted-mode auth is refused when a verifier is configured.
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["root", "sneaky"]),
        );
        assert_eq!(replies[0].code, MrError::Args.code());
        // The authenticated identity can use self-access queries.
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(
                MajorRequest::Query,
                &["update_user_shell", "babette", "/bin/sh"],
            ),
        );
        assert_eq!(replies[0].code, 0);
    }

    #[test]
    fn tiers_classify_reads_and_writes() {
        let (mut server, mut client) = setup();
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        let (r0, w0) = server.dispatch_counts();
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["add_machine", "TIER", "VAX"]),
        );
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["get_machine", "TIER"]),
        );
        let (r1, w1) = server.dispatch_counts();
        assert_eq!(r1 - r0, 1, "get_machine runs on the shared tier");
        assert_eq!(w1 - w0, 1, "add_machine runs on the exclusive tier");
    }

    #[test]
    fn read_after_write_same_pass_observes_the_write() {
        // A connection's read that arrives behind its own write must not
        // jump the queue onto the read tier: both land in one poll pass and
        // the read still sees the freshly added machine.
        let (mut server, mut client) = setup();
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        client
            .send(Request::new(MajorRequest::Query, &["add_machine", "FRESH", "VAX"]).encode())
            .unwrap();
        client
            .send(Request::new(MajorRequest::Query, &["get_machine", "FRESH"]).encode())
            .unwrap();
        server.run_until_idle(2);
        let add = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        assert_eq!(add.code, 0);
        let tuple = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        assert!(tuple.is_more_data(), "read-after-write found the row");
        assert_eq!(tuple.string_fields().unwrap()[0], "FRESH");
        let done = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        assert_eq!(done.code, 0);
    }

    #[test]
    fn query_pipelined_behind_auth_uses_new_principal() {
        // Auth and a mutation land in the same poll pass. The mutation was
        // classified while the connection was still anonymous, but it must
        // execute under the just-authenticated principal — the serial tier
        // re-resolves the caller at dispatch time.
        let (mut server, mut client) = setup();
        client
            .send(Request::new(MajorRequest::Auth, &["ops", "test"]).encode())
            .unwrap();
        client
            .send(Request::new(MajorRequest::Query, &["add_machine", "PIPELINED", "VAX"]).encode())
            .unwrap();
        client
            .send(Request::new(MajorRequest::Access, &["add_machine", "Y", "VAX"]).encode())
            .unwrap();
        server.run_until_idle(2);
        let auth = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        assert_eq!(auth.code, 0);
        let add = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        assert_eq!(add.code, 0, "mutation behind auth ran under a stale caller");
        let access = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        assert_eq!(
            access.code, 0,
            "access check behind auth used a stale caller"
        );
    }

    #[test]
    fn reauth_in_same_pass_drops_old_privileges() {
        // The mirror image: a privileged connection re-authenticates as an
        // unprivileged principal with a mutation pipelined behind the Auth.
        // The mutation must run as the new principal, not retain the old
        // one's capabilities through a classify-time snapshot.
        let (mut server, mut client) = setup();
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        client
            .send(Request::new(MajorRequest::Auth, &["nobody", "test"]).encode())
            .unwrap();
        client
            .send(Request::new(MajorRequest::Query, &["add_machine", "SNEAK", "VAX"]).encode())
            .unwrap();
        server.run_until_idle(2);
        let auth = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        assert_eq!(auth.code, 0);
        let add = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        assert_eq!(
            add.code,
            MrError::Perm.code(),
            "mutation retained the pre-re-auth principal's privileges"
        );
    }

    #[test]
    fn serialized_baseline_still_answers_queries() {
        let (mut server, mut client) = setup();
        server.set_read_workers(0);
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["add_machine", "BASE", "VAX"]),
        );
        let replies = send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["get_machine", "BASE"]),
        );
        assert!(replies[0].is_more_data());
        assert_eq!(replies.last().unwrap().code, 0);
        let (reads, _) = server.dispatch_counts();
        assert_eq!(reads, 0, "baseline never uses the shared tier");
    }

    #[test]
    fn concurrent_readers_on_worker_pool() {
        // Four connections each send a retrieve; with a multi-worker read
        // tier all four dispatch in one pass and answer correctly.
        let (mut server, state, _) = standard_server(moira_common::VClock::new());
        {
            let mut s = state.write();
            let uid = crate::queries::testutil::add_test_user(&mut s, "ops", 1);
            s.db.append("members", vec![2.into(), "USER".into(), uid.into()])
                .unwrap();
        }
        server.set_read_workers(4);
        let mut clients = Vec::new();
        for _ in 0..4 {
            let (client, server_end) = pair();
            server.attach(Box::new(server_end), "local", 0);
            clients.push(client);
        }
        for c in clients.iter_mut() {
            c.send(Request::new(MajorRequest::Auth, &["ops", "test"]).encode())
                .unwrap();
        }
        server.run_until_idle(2);
        for c in clients.iter_mut() {
            let r = Reply::decode(recv_blocking(c, 100).unwrap()).unwrap();
            assert_eq!(r.code, 0);
        }
        let obs_before = server.obs().snapshot();
        let before = server.dispatch_counts();
        for c in clients.iter_mut() {
            c.send(Request::new(MajorRequest::Query, &["get_user_by_login", "ops"]).encode())
                .unwrap();
        }
        let processed = server.poll_once();
        assert_eq!(processed, 4);
        let after = server.dispatch_counts();
        assert_eq!((after.0 - before.0, after.1 - before.1), (4, 0));
        for c in clients.iter_mut() {
            let tuple = Reply::decode(recv_blocking(c, 100).unwrap()).unwrap();
            assert!(tuple.is_more_data());
            assert_eq!(tuple.string_fields().unwrap()[0], "ops");
            let done = Reply::decode(recv_blocking(c, 100).unwrap()).unwrap();
            assert_eq!(done.code, 0);
        }
        // The obs snapshot carries what the service trace used to: all four
        // dispatches landed on the read tier and were individually timed.
        let obs_after = server.obs().snapshot();
        assert_eq!(
            obs_after.counter("server.reads_dispatched")
                - obs_before.counter("server.reads_dispatched"),
            4
        );
        let read_lat = obs_after
            .histogram("server.latency.read")
            .expect("read latency recorded");
        let read_lat_before = obs_before
            .histogram("server.latency.read")
            .map(|h| h.count)
            .unwrap_or(0);
        assert_eq!(read_lat.count - read_lat_before, 4);
        let write_lat_count =
            |s: &moira_obs::Snapshot| s.histogram("server.latency.write").map(|h| h.count);
        assert_eq!(
            write_lat_count(&obs_after),
            write_lat_count(&obs_before),
            "no write-tier samples from a pure read pass"
        );
    }

    #[test]
    fn service_trace_shim_back_compat() {
        // The deprecated enable/take shim still yields per-request samples
        // (the bench harness's trace-driven projections depend on it), even
        // with the obs registry disabled.
        let (mut server, mut client) = setup();
        server.obs().set_enabled(false);
        server.enable_service_trace();
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["add_machine", "SHIM", "VAX"]),
        );
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["get_machine", "SHIM"]),
        );
        let trace = server.take_service_trace();
        assert_eq!(trace.len(), 3, "auth + write + read all sampled");
        assert_eq!(trace.iter().filter(|s| s.read_tier).count(), 1);
        // Taking drains but leaves tracing on.
        assert!(server.take_service_trace().is_empty());
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Query, &["get_machine", "SHIM"]),
        );
        assert_eq!(server.take_service_trace().len(), 1);
    }

    #[test]
    fn backpressure_pauses_and_resumes_without_disconnecting() {
        let (mut server, mut client) = setup();
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        server.set_write_cap(64);
        let query = Request::new(MajorRequest::Query, &["get_user_by_login", "ops"]);

        // Wave 1: the replies overrun the tiny cap while the client never
        // drains — backpressure must engage, not disconnect.
        for _ in 0..5 {
            client.send(query.encode()).unwrap();
        }
        server.run_until_idle(2);
        let q1 = server.connection_queued_bytes()[0];
        assert!(q1 > 64, "replies exceed the cap ({q1} bytes queued)");
        let snap = server.obs().snapshot();
        assert!(
            snap.counter("server.backpressure.engaged") >= 1,
            "pause transition counted"
        );
        assert_eq!(
            server.connection_count(),
            1,
            "slow consumer stays connected"
        );

        // Wave 2: a paused connection is not read, so its outbox cannot
        // grow — this is the bounded-memory contract.
        for _ in 0..20 {
            client.send(query.encode()).unwrap();
        }
        server.run_until_idle(2);
        assert_eq!(
            server.connection_queued_bytes()[0],
            q1,
            "paused connection's outbox grew"
        );

        // The client finally drains; the server resumes below the
        // low-water mark and answers the entire backlog (25 queries × 2
        // replies each).
        let mut got = 0usize;
        for _ in 0..200_000 {
            server.poll_once();
            match client.try_recv() {
                Ok(Some(_)) => got += 1,
                Ok(None) => std::thread::yield_now(),
                Err(e) => panic!("client channel died: {e}"),
            }
            if got == 50 {
                break;
            }
        }
        assert_eq!(got, 50, "backlog fully answered after resume");
        assert_eq!(server.connection_queued_bytes()[0], 0);
    }

    #[test]
    fn connection_lifecycle_instruments() {
        let (mut server, _state, _) = standard_server(moira_common::VClock::new());
        let snap = |s: &MoiraServer| {
            let snap = s.obs().snapshot();
            (
                snap.counter("server.connections.accepted"),
                snap.gauge("server.connections.open"),
                snap.counter("server.connections.closed"),
            )
        };
        let (c1, s1) = pair();
        server.attach(Box::new(s1), "local", 0);
        let (_c2, s2) = pair();
        server.attach(Box::new(s2), "local", 0);
        assert_eq!(snap(&server), (2, 2, 0));
        drop(c1);
        server.run_until_idle(3);
        assert_eq!(snap(&server), (2, 1, 1));
        assert_eq!(server.connection_count(), 1);
    }

    #[test]
    fn contended_write_lock_sheds_busy() {
        let (mut server, mut client) = setup();
        send_request(
            &mut client,
            &mut server,
            Request::new(MajorRequest::Auth, &["ops", "test"]),
        );
        server.set_lock_patience(4);
        let obs_before = server.obs().snapshot();
        let dispatched_before = server.dispatch_counts();
        let state = server.state();
        // An outside writer (e.g. a DCM cycle) holds the exclusive lock for
        // the whole pass: the read tier cannot acquire a shared guard and
        // sheds with Busy instead of hanging the loop.
        let guard = state.write();
        client
            .send(Request::new(MajorRequest::Query, &["get_user_by_login", "ops"]).encode())
            .unwrap();
        server.poll_once();
        drop(guard);
        let r = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        assert_eq!(r.code, MrError::Busy.code());
        assert_eq!(server.shed_requests(), 1);
        // Sheds never executed, so they are excluded from the dispatch
        // counters and contribute no zero-time latency samples — the obs
        // snapshot shows one shed, no new dispatches, no new samples.
        assert_eq!(server.dispatch_counts(), dispatched_before);
        let obs_after = server.obs().snapshot();
        assert_eq!(
            obs_after.counter("server.shed_requests") - obs_before.counter("server.shed_requests"),
            1
        );
        assert_eq!(
            obs_after.counter("server.reads_dispatched"),
            obs_before.counter("server.reads_dispatched")
        );
        let read_lat_count =
            |s: &moira_obs::Snapshot| s.histogram("server.latency.read").map(|h| h.count);
        assert_eq!(read_lat_count(&obs_after), read_lat_count(&obs_before));
        // Retry after the writer releases succeeds.
        client
            .send(Request::new(MajorRequest::Query, &["get_user_by_login", "ops"]).encode())
            .unwrap();
        server.run_until_idle(2);
        let r = Reply::decode(recv_blocking(&mut client, 100).unwrap()).unwrap();
        assert!(r.is_more_data());
    }
}
